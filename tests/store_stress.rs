//! Concurrent stress for the versioned graph store: one writer thread
//! streaming seeded updates (with compactions) against reader threads
//! that continuously pull snapshots and verify them.
//!
//! This is the property the whole store design rests on: a reader never
//! blocks on the writer, and every snapshot it pulls is **internally
//! consistent** — `num_edges` matches the iterated edge count, the
//! in/out adjacency directions mirror each other, every list is sorted
//! and deduplicated, and versions never move backwards — no matter how
//! the threads interleave.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use probesim::prelude::*;
use probesim_datasets::SlidingWindowStream;

/// Full internal-consistency audit of one snapshot.
fn assert_snapshot_consistent(snapshot: &GraphSnapshot) {
    let n = snapshot.num_nodes();
    let mut out_edges = 0usize;
    let mut in_edges = 0usize;
    for v in 0..n as NodeId {
        let out = snapshot.out_neighbors(v);
        assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "out({v}) not sorted/deduped: {out:?}"
        );
        let inn = snapshot.in_neighbors(v);
        assert!(
            inn.windows(2).all(|w| w[0] < w[1]),
            "in({v}) not sorted/deduped: {inn:?}"
        );
        out_edges += out.len();
        in_edges += inn.len();
        // Directions mirror each other: every out-edge is someone's
        // in-edge in the same snapshot.
        for &w in out {
            assert!(
                snapshot.in_neighbors(w).binary_search(&v).is_ok(),
                "edge ({v}, {w}) present in out but missing from in"
            );
        }
    }
    assert_eq!(
        out_edges,
        snapshot.num_edges(),
        "num_edges != Σ out-degrees"
    );
    assert_eq!(in_edges, snapshot.num_edges(), "num_edges != Σ in-degrees");
    assert_eq!(snapshot.edges_iter().count(), snapshot.num_edges());
}

#[test]
fn one_writer_four_readers_under_seeded_churn() {
    const N: usize = 64;
    const WINDOW: usize = 160;
    const UPDATES: usize = 1200;
    const READERS: usize = 4;

    // Warm the window so removals happen from the first event.
    let mut warm = DynamicGraph::new(N);
    let mut stream = SlidingWindowStream::new(N, WINDOW, 0xC0DE);
    for update in stream.by_ref().take(WINDOW) {
        warm.apply(update);
    }
    let updates: Vec<GraphUpdate> = stream.take(UPDATES).collect();
    // Aggressive policy: many compactions while readers are live.
    let mut store = GraphStore::from_view(&warm).with_policy(CompactionPolicy {
        max_touched_fraction: 0.05,
        min_touched_lists: 8,
    });
    // Scratch oracle replaying the same stream on the writer thread.
    let mut oracle = warm;

    let engine = ProbeSim::new(ProbeSimConfig::new(0.6, 0.15, 0.01).with_seed(77));
    let slot = Mutex::new(store.snapshot());
    let done = AtomicBool::new(false);

    // The readers loop until `done`; setting it from a drop guard means a
    // panicking writer still releases them, so the scope joins and the
    // panic propagates as a test failure instead of a deadlocked run.
    struct SetOnDrop<'a>(&'a AtomicBool);
    impl Drop for SetOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }
    let (store, oracle) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let _release_readers = SetOnDrop(&done);
            for update in &updates {
                let a = store.apply(*update);
                let b = oracle.apply(*update);
                assert_eq!(a, b, "store and oracle disagreed on {update:?}");
                *slot.lock().unwrap() = store.snapshot();
            }
            (store, oracle)
        });

        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let slot = &slot;
                let done = &done;
                let engine = &engine;
                scope.spawn(move || {
                    let mut last_version = 0u64;
                    let mut pulls = 0usize;
                    let mut query_node: NodeId = r as NodeId;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let snapshot = slot.lock().unwrap().clone();
                        assert!(
                            snapshot.version() >= last_version,
                            "version went backwards: {} after {last_version}",
                            snapshot.version()
                        );
                        last_version = snapshot.version();
                        assert_snapshot_consistent(&snapshot);
                        // And the snapshot is queryable from an owned
                        // session while the writer keeps going.
                        let out = engine
                            .session(snapshot)
                            .run(Query::SingleSource { node: query_node })
                            .expect("snapshot query failed");
                        assert!(out.scores.iter().all(|(_, s)| (0.0..=1.0).contains(&s)));
                        query_node = (query_node + READERS as NodeId) % N as NodeId;
                        pulls += 1;
                        if finished {
                            break;
                        }
                    }
                    pulls
                })
            })
            .collect();

        let (store, oracle) = writer.join().expect("writer panicked");
        for handle in readers {
            let pulls = handle.join().expect("reader panicked");
            assert!(pulls > 0, "a reader never pulled a snapshot");
        }
        (store, oracle)
    });

    assert!(
        store.compactions() > 0,
        "the aggressive policy must have compacted mid-run"
    );
    // Final state: the store, its last snapshot, a scratch CSR rebuilt
    // from the stream oracle, and a compacted fold all agree exactly.
    let rebuilt = CsrGraph::from_edge_iter(N, oracle.edges_iter());
    assert_eq!(store.num_edges(), rebuilt.num_edges());
    assert!(store.edges_iter().eq(rebuilt.edges_iter()));
    let mut store = store;
    store.compact();
    assert_eq!(
        store.base().as_ref(),
        &rebuilt,
        "compacted CSR != scratch rebuild"
    );
    let final_snapshot = store.snapshot();
    assert_snapshot_consistent(&final_snapshot);
    assert_eq!(final_snapshot.to_csr(), rebuilt);
}

/// A retained early snapshot is immune to everything that happens later:
/// heavy churn, compactions, store drop.
#[test]
fn early_snapshot_outlives_the_store() {
    let mut store = GraphStore::from_edges(8, &[(0, 1), (1, 2), (2, 3)]);
    let early = store.snapshot();
    let early_csr = early.to_csr();
    for round in 0..50u32 {
        let u = round % 8;
        let v = (round + 3) % 8;
        if u != v {
            store.insert_edge(u, v);
            store.remove_edge(u, v);
        }
        if round % 10 == 0 {
            store.compact();
        }
    }
    drop(store);
    // The snapshot still answers queries, bit-identical to its frozen
    // edge set, from another thread.
    let engine = ProbeSim::new(ProbeSimConfig::new(0.6, 0.1, 0.01).with_seed(5));
    let handle = std::thread::spawn(move || {
        let mut session = engine.session(early);
        let out = session.run(Query::SingleSource { node: 3 }).unwrap();
        (out.scores, session.graph().to_csr())
    });
    let (scores, csr_from_thread) = handle.join().unwrap();
    assert_eq!(csr_from_thread, early_csr);
    let engine = ProbeSim::new(ProbeSimConfig::new(0.6, 0.1, 0.01).with_seed(5));
    let reference = engine
        .session(&early_csr)
        .run(Query::SingleSource { node: 3 })
        .unwrap();
    assert_eq!(scores, reference.scores);
}
