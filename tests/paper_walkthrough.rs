//! Golden tests reproducing every worked example in the paper end-to-end
//! through the public API: Table 2, the Section 3.2 PROBE walkthrough, the
//! Section 4.1 pruning example, and the Figure 3 batching trie.

use probesim::prelude::*;
use probesim_core::probe::{self, ProbeParams};
use probesim_core::result::QueryStats;
use probesim_core::workspace::ProbeWorkspace;
use probesim_core::WalkTrie;
use probesim_graph::toy::{toy_graph, A, B, C, D, E, F, TABLE2, TOY_DECAY};

/// Table 2: Power Method ground truth on the Figure 1 graph.
#[test]
fn table2_ground_truth() {
    let g = toy_graph();
    let s = PowerMethod::ground_truth(TOY_DECAY).all_pairs(&g);
    for v in 0..8u32 {
        assert!(
            (s.get(A, v) - TABLE2[v as usize]).abs() < 6e-4,
            "s(a,{v}) = {} vs printed {}",
            s.get(A, v),
            TABLE2[v as usize]
        );
    }
}

/// Section 3.2: summing the probe scores of all prefixes of the example
/// walk W(a) = (a, b, a, b) must give the printed per-trial estimates
/// s̃(a,·) (c = 0.2, d = 0.5, …).
#[test]
fn walkthrough_estimates_for_walk_abab() {
    let g = toy_graph();
    let params = ProbeParams {
        sqrt_c: 0.5,
        epsilon_p: 0.0,
    };
    let mut ws = ProbeWorkspace::new(8);
    let mut acc = vec![0.0f64; 8];
    let mut stats = QueryStats::default();
    let walk = [A, B, A, B];
    for i in 2..=walk.len() {
        probe::deterministic(&g, &walk[..i], &params, 1.0, &mut ws, &mut acc, &mut stats).unwrap();
    }
    // Paper: s̃(a,c) = 0.167 + 0.033 = 0.2 and s̃(a,d) = 0.5 exactly.
    assert!((acc[C as usize] - 0.2).abs() < 1e-3);
    assert!((acc[D as usize] - 0.5).abs() < 1e-12);
    // s̃(a,e) = 0.25 + 11/288 ≈ 0.288; paper prints 0.2877.
    assert!((acc[E as usize] - 0.2877).abs() < 1e-3);
    // s̃(a,f) = 0.021 + 0.019 ≈ 0.04.
    assert!((acc[F as usize] - 0.04).abs() < 1e-3);
    // s̃(a,b) = 1/96 ≈ 0.0104 (paper prints the doubly-rounded 0.011).
    assert!((acc[B as usize] - 1.0 / 96.0).abs() < 1e-12);
    // Per-trial estimators are probabilities.
    for &s in &acc {
        assert!((0.0..=1.0).contains(&s));
    }
}

/// Section 4.1: with εt = εp = 0.05, the walk (a,b,a,b,e) is truncated to
/// 4 nodes, and the probe of (a,b,a,b) prunes the c-subtree of H1.
#[test]
fn pruning_example() {
    // Truncation: ℓt = ⌊log 0.05 / log 0.5⌋ = 4 nodes.
    let lt = (0.05f64.ln() / 0.5f64.ln()).floor() as usize;
    assert_eq!(lt, 4);

    // Pruning: c's H1 score 0.167 with two levels to go is capped at
    // 0.167·0.25 ≈ 0.042 ≤ εp = 0.05 → pruned; d (0.125 > 0.05) survives.
    let g = toy_graph();
    let params = ProbeParams {
        sqrt_c: 0.5,
        epsilon_p: 0.05,
    };
    let mut ws = ProbeWorkspace::new(8);
    let mut pruned = vec![0.0f64; 8];
    let mut stats = QueryStats::default();
    probe::deterministic(
        &g,
        &[A, B, A, B],
        &params,
        1.0,
        &mut ws,
        &mut pruned,
        &mut stats,
    )
    .unwrap();
    let mut exact = vec![0.0f64; 8];
    let exact_params = ProbeParams {
        sqrt_c: 0.5,
        epsilon_p: 0.0,
    };
    probe::deterministic(
        &g,
        &[A, B, A, B],
        &exact_params,
        1.0,
        &mut ws,
        &mut exact,
        &mut stats,
    )
    .unwrap();
    for v in 0..8usize {
        let loss = exact[v] - pruned[v];
        assert!(loss >= -1e-15, "pruning must be one-sided at node {v}");
        // (i−1)·εp per node for the 4-node path: the provable per-probe
        // bound (εp per pruned level); the observed loss here is well
        // below even the paper's tighter εp claim.
        assert!(
            loss <= 3.0 * 0.05 + 1e-12,
            "pruning error bound at node {v}"
        );
    }
    assert!(
        pruned.iter().sum::<f64>() < exact.iter().sum::<f64>(),
        "the pruned c-subtree must cost some mass"
    );
}

/// Figure 3: the reverse-reachability tree after inserting walks
/// (a,b,c), (a,c,a) and then (a,b,a); the final estimator combines probes
/// with weights 2,1,1,1,1 over nr = 3 walks.
#[test]
fn figure3_trie_weights() {
    let mut trie = WalkTrie::new(A);
    trie.insert(&[A, B, C]);
    trie.insert(&[A, C, A]);
    trie.insert(&[A, B, A]);
    assert_eq!(trie.total_walks(), 3);
    assert_eq!(trie.len(), 6); // r1..r6 of Figure 3(b)
    let mut weights: Vec<(Vec<NodeId>, u32)> = Vec::new();
    trie.for_each_prefix(|path, w| weights.push((path.to_vec(), w)));
    weights.sort();
    assert_eq!(
        weights,
        vec![
            (vec![A, B], 2),
            (vec![A, B, A], 1),
            (vec![A, B, C], 1),
            (vec![A, C], 1),
            (vec![A, C, A], 1),
        ]
    );
    // Algorithm 3 (Lines 13–14) weights each probe by weight/nr: 2/3 for
    // the shared (a,b) prefix, 1/3 for each depth-2 prefix. (The prose
    // example under Figure 3 prints 1/3 and 1/6 — half of these — which is
    // inconsistent with the algorithm's own pseudo-code and with
    // unbiasedness; our batched driver is verified elsewhere to match the
    // unbatched Algorithm 1 exactly, so we assert the pseudo-code weights.)
    for (path, w) in &weights {
        let coefficient = *w as f64 / 3.0;
        if path == &vec![A, B] {
            assert!((coefficient - 2.0 / 3.0).abs() < 1e-12);
        } else {
            assert!((coefficient - 1.0 / 3.0).abs() < 1e-12);
        }
    }
}

/// End-to-end: ProbeSim's estimates on the toy graph honor the εa bound
/// against Table 2 for every strategy and for batched/unbatched drivers.
#[test]
fn end_to_end_toy_graph_all_configurations() {
    let g = toy_graph();
    let eps = 0.05;
    for strategy in [
        ProbeStrategy::Deterministic,
        ProbeStrategy::Randomized,
        ProbeStrategy::Hybrid,
    ] {
        for batch in [false, true] {
            let mut cfg = ProbeSimConfig::new(TOY_DECAY, eps, 0.01).with_seed(2017);
            cfg.optimizations.strategy = strategy;
            cfg.optimizations.batch_walks = batch;
            let result = ProbeSim::new(cfg).single_source(&g, A);
            for (v, &expected) in TABLE2.iter().enumerate() {
                assert!(
                    (result.scores[v] - expected).abs() <= eps,
                    "{strategy:?} batch={batch} node {v}: {} vs {expected}",
                    result.scores[v],
                );
            }
        }
    }
}
