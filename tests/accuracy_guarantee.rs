//! End-to-end accuracy tests: ProbeSim's Definition 1 / Definition 2
//! guarantees hold against exact SimRank on the CI-scale versions of the
//! paper's small datasets.

use probesim::prelude::*;
use probesim_eval::{metrics, sample_query_nodes};

const DECAY: f64 = 0.6;

fn check_dataset(dataset: Dataset, epsilon: f64, queries: usize) {
    let graph = dataset.generate(Scale::Ci);
    let truth = GroundTruth::compute_with_iterations(&graph, DECAY, 30);
    let engine = ProbeSim::new(ProbeSimConfig::paper(epsilon).with_seed(4242));
    let query_nodes = sample_query_nodes(&graph, queries, 17);
    assert!(
        !query_nodes.is_empty(),
        "{}: no eligible queries",
        dataset.name()
    );
    for &u in &query_nodes {
        let result = engine.single_source(&graph, u);
        let err = metrics::abs_error(truth.single_source(u), &result.scores, u);
        // δ = 0.01 per query; across this many queries a single marginal
        // excursion is possible, so assert with 25% headroom.
        assert!(
            err <= epsilon * 1.25,
            "{} query {u}: abs error {err} > {epsilon}",
            dataset.name()
        );
    }
}

#[test]
fn single_source_error_bound_wiki_vote() {
    check_dataset(Dataset::WikiVote, 0.1, 5);
}

#[test]
fn single_source_error_bound_hepth() {
    check_dataset(Dataset::HepTh, 0.1, 5);
}

#[test]
fn single_source_error_bound_as() {
    check_dataset(Dataset::As, 0.1, 5);
}

#[test]
fn single_source_error_bound_hepph() {
    check_dataset(Dataset::HepPh, 0.1, 5);
}

/// Tightening εa must not worsen accuracy (Figure 4's tradeoff axis).
#[test]
fn error_shrinks_with_epsilon() {
    let graph = Dataset::As.generate(Scale::Ci);
    let truth = GroundTruth::compute_with_iterations(&graph, DECAY, 30);
    let queries = sample_query_nodes(&graph, 4, 5);
    let mut errors = Vec::new();
    for eps in [0.2, 0.1, 0.05] {
        let engine = ProbeSim::new(ProbeSimConfig::paper(eps).with_seed(7));
        let mut worst = 0.0f64;
        for &u in &queries {
            let result = engine.single_source(&graph, u);
            worst = worst.max(metrics::abs_error(
                truth.single_source(u),
                &result.scores,
                u,
            ));
        }
        errors.push(worst);
    }
    assert!(
        errors[2] <= errors[0] + 0.02,
        "eps=0.05 not better than eps=0.2: {errors:?}"
    );
}

/// Definition 2: every returned top-k node's true score is within εa of
/// the true i-th largest.
#[test]
fn top_k_guarantee() {
    let graph = Dataset::HepTh.generate(Scale::Ci);
    let truth = GroundTruth::compute_with_iterations(&graph, DECAY, 30);
    let epsilon = 0.08;
    let k = 20;
    let engine = ProbeSim::new(ProbeSimConfig::paper(epsilon).with_seed(11));
    for &u in &sample_query_nodes(&graph, 4, 23) {
        let returned = engine.top_k(&graph, u, k);
        let ideal = truth.top_k(u, k);
        for (i, &(v, _)) in returned.iter().enumerate() {
            let true_score = truth.score(u, v);
            let ith_best = ideal[i].1;
            assert!(
                true_score >= ith_best - epsilon * 1.25,
                "query {u} rank {i}: returned {v} with true score {true_score}, i-th best {ith_best}"
            );
        }
    }
}

/// The estimator must be unbiased: averaged over many independent seeds,
/// the estimate converges to the truth well inside the single-run bound.
#[test]
fn estimates_are_unbiased_across_seeds() {
    let graph = Dataset::HepTh.generate(Scale::Ci);
    let truth = GroundTruth::compute_with_iterations(&graph, DECAY, 30);
    let u = sample_query_nodes(&graph, 1, 31)[0];
    let n = probesim_graph::GraphView::num_nodes(&graph);
    let runs = 16;
    let mut mean = vec![0.0f64; n];
    for seed in 0..runs {
        let engine = ProbeSim::new(
            ProbeSimConfig::paper(0.2)
                .with_seed(seed)
                .with_num_walks(120),
        );
        let result = engine.single_source(&graph, u);
        for (m, s) in mean.iter_mut().zip(&result.scores) {
            *m += s / runs as f64;
        }
    }
    let err = metrics::abs_error(truth.single_source(u), &mean, u);
    assert!(err < 0.1, "averaged estimate still off by {err}");
}
