//! Cache-soundness tests for the `QueryService` result cache.
//!
//! The contract: after any update/query interleaving, **every cache hit
//! equals a scratch re-execution at the same pinned version**
//! (`to_bits`-compared), and every mutation bumps the version so
//! `Latest` can never be served a stale entry.

use probesim::prelude::*;
use probesim_core::ProbeSim;
use proptest::prelude::*;
use proptest::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn service_config(seed: u64) -> ProbeSimConfig {
    ProbeSimConfig::new(0.6, 0.2, 0.05)
        .with_seed(seed)
        .with_num_walks(40)
}

/// Bit-exact comparison of a served output against a scratch execution
/// of `query` on `oracle` (the edge set of the served version).
fn assert_bit_identical_to_scratch(
    engine: &ProbeSim,
    oracle: &CsrGraph,
    query: Query,
    served: &QueryOutput,
    context: &str,
) -> Result<(), TestCaseError> {
    let scratch = engine
        .session(oracle)
        .run(query)
        .expect("oracle accepts the query");
    let served_dense = served.scores.to_dense();
    let scratch_dense = scratch.scores.to_dense();
    prop_assert_eq!(served_dense.len(), scratch_dense.len(), "{}", context);
    for (v, (a, b)) in served_dense.iter().zip(&scratch_dense).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{}: node {} diverges ({} vs {})",
            context,
            v,
            a,
            b
        );
    }
    prop_assert_eq!(served.stats, scratch.stats, "{}", context);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random update/query interleavings: every response — cache hit or
    /// fresh — equals a scratch re-execution at its reported version,
    /// and `Latest` always answers at the current store version.
    #[test]
    fn cache_hits_equal_scratch_reexecution_at_the_pinned_version(
        seed in any::<u64>(),
        n in 4usize..=16,
        rounds in 4usize..=10,
        capacity in prop::collection::vec(2usize..=32, 1),
    ) {
        let capacity = capacity[0];
        let mut rng = StdRng::seed_from_u64(seed);
        // Seed graph: a ring so every node has in-edges.
        let edges: Vec<(NodeId, NodeId)> =
            (0..n as NodeId).map(|v| (v, (v + 1) % n as NodeId)).collect();
        let mut oracle = DynamicGraph::from_edges(n, &edges);
        let engine = ProbeSim::new(service_config(seed));
        let service = ServiceBuilder::new(service_config(seed))
            .workers(1)
            .cache_capacity(capacity)
            .retained_versions(4)
            .build(GraphStore::from_view(&oracle));
        // version -> edge-set oracle for every version ever published.
        let mut versions: Vec<(u64, CsrGraph)> = vec![(0, oracle.snapshot())];

        let mut hits_checked = 0u64;
        for round in 0..rounds {
            // A few random updates (some no-ops on purpose).
            for _ in 0..rng.gen_range(0..3) {
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if u == v {
                    continue;
                }
                let update = if rng.gen::<f64>() < 0.6 {
                    GraphUpdate::Insert { u, v }
                } else {
                    GraphUpdate::Remove { u, v }
                };
                let effective = service.commit(update).was_effective();
                prop_assert_eq!(effective, oracle.apply(update), "oracle diverged");
                if effective {
                    versions.push((service.version(), oracle.snapshot()));
                }
            }
            // A few queries: repeats (cache pressure) + mixed consistency.
            for _ in 0..rng.gen_range(1..4usize) {
                let node = rng.gen_range(0..n) as NodeId;
                let query = Query::SingleSource { node };
                let (request, expected_version) = if rng.gen::<f64>() < 0.3 {
                    // Pin a random retained version.
                    let newest = service.version();
                    let oldest = service.oldest_retained_version();
                    let pin = oldest + rng.gen_range(0..(newest - oldest + 1));
                    (
                        Request::new(query).with_consistency(Consistency::Pinned(pin)),
                        pin,
                    )
                } else {
                    (Request::new(query), service.version())
                };
                let response = service.call(request).expect("valid request");
                // Latest never serves a stale version: any mutation
                // bumped the version, so the response is pinned to the
                // version current at call time.
                prop_assert_eq!(response.version, expected_version, "round {}", round);
                let oracle_csr = &versions
                    .iter()
                    .rev()
                    .find(|(v, _)| *v == response.version)
                    .expect("every served version was recorded")
                    .1;
                if response.cache_hit {
                    hits_checked += 1;
                }
                let context = format!(
                    "round {round} node {node} version {} hit {}",
                    response.version, response.cache_hit
                );
                assert_bit_identical_to_scratch(
                    &engine,
                    oracle_csr,
                    query,
                    &response.output,
                    &context,
                )?;
            }
        }
        // The interleaving must actually exercise the cache sometimes;
        // across all proptest cases repeats guarantee hits, but a single
        // case may have none — only sanity-check the counters.
        let stats = service.stats();
        prop_assert_eq!(stats.cache_hits >= hits_checked, true);
    }
}

/// The benchmark acceptance shape, pinned as a deterministic in-repo
/// test: a repeated query set against a quiescent service executes each
/// distinct query once — the second pass is all cache hits and adds
/// **zero** `total_work`.
#[test]
fn repeat_pass_is_all_hits_with_zero_work_delta() {
    let g = probesim_graph::toy::toy_graph();
    let service = ServiceBuilder::new(service_config(0xBEEF))
        .workers(2)
        .cache_capacity(64)
        .build(GraphStore::from_view(&g));
    let queries: Vec<Query> = (0..8).map(|v| Query::SingleSource { node: v }).collect();
    for &query in &queries {
        let response = service.call(Request::new(query)).unwrap();
        assert!(!response.cache_hit, "first pass must execute");
    }
    let work_after_first_pass = service.stats().executed_work;
    assert!(work_after_first_pass > 0);
    for &query in &queries {
        let response = service.call(Request::new(query)).unwrap();
        assert!(response.cache_hit, "second pass must hit");
    }
    let stats = service.stats();
    assert_eq!(
        stats.executed_work, work_after_first_pass,
        "cached path must record zero total_work delta"
    );
    assert_eq!(stats.cache_hits, 8);
    assert_eq!(stats.cache_misses, 8);
}

/// Writer-side invalidation bounds the cache: entries whose version
/// leaves the retention window are dropped inside `GraphStore::mutate`
/// (observable through the invalidation counter and entry count).
#[test]
fn writer_side_invalidation_prunes_unreachable_versions() {
    let g = probesim_graph::toy::toy_graph();
    let service = ServiceBuilder::new(service_config(1))
        .workers(1)
        .cache_capacity(64)
        .retained_versions(2)
        .build(GraphStore::from_view(&g));
    // Populate an entry at version 0.
    let first = service
        .call(Request::new(Query::SingleSource { node: 0 }))
        .unwrap();
    assert_eq!(first.version, 0);
    assert_eq!(service.stats().cache_entries, 1);
    // Two effective mutations push version 0 out of the 2-deep window;
    // the observer fires inside mutate and prunes the entry.
    assert!(service
        .commit(GraphUpdate::Remove { u: 1, v: 0 })
        .was_effective());
    assert!(service
        .commit(GraphUpdate::Remove { u: 2, v: 0 })
        .was_effective());
    assert_eq!(service.stats().cache_entries, 0, "stale entry pruned");
    // And the pruned version is indeed unreachable.
    let err = service
        .call(
            Request::new(Query::SingleSource { node: 0 }).with_consistency(Consistency::Pinned(0)),
        )
        .unwrap_err();
    assert!(matches!(err, ServiceError::VersionNotRetained { .. }));
}
