//! Dynamic-graph correctness under churn: after an arbitrary
//! insert/remove stream, a session query on the live [`DynamicGraph`] is
//! **bit-for-bit identical** (same engine seed) to the same query on a
//! [`CsrGraph`] rebuilt from scratch from the surviving edges.
//!
//! This is the index-free contract the paper's dynamic-graph claim rests
//! on: a query depends on nothing but the current graph, so *how* the
//! graph got into its state — incremental mutation vs. fresh build — must
//! be unobservable, down to the last mantissa bit.

use probesim::prelude::*;
use probesim_datasets::SlidingWindowStream;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Applies `ops` random insert/remove events to a fresh `n`-node graph.
fn churned_graph(n: usize, ops: usize, seed: u64) -> DynamicGraph {
    let mut graph = DynamicGraph::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..ops {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        // Bias toward insertion so the graph doesn't stay near-empty.
        if rng.gen_range(0u32..4) < 3 {
            graph.insert_edge(u, v);
        } else {
            graph.remove_edge(u, v);
        }
    }
    graph
}

/// Every touched score must agree to the bit, not within a tolerance.
fn assert_bit_identical(live: &SparseScores, rebuilt: &SparseScores) {
    assert_eq!(live.len(), rebuilt.len(), "touched sets differ");
    for ((lv, ls), (rv, rs)) in live.iter().zip(rebuilt.iter()) {
        assert_eq!(lv, rv, "touched node ids diverged");
        assert_eq!(
            ls.to_bits(),
            rs.to_bits(),
            "score for node {lv} diverged: {ls} vs {rs}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random churn, then every query kind, on the live graph vs. a
    /// from-scratch rebuild.
    #[test]
    fn live_graph_queries_match_rebuilt_csr(
        n in 4usize..=32,
        ops in 1usize..=160,
        graph_seed in any::<u64>(),
        engine_seed in any::<u64>(),
    ) {
        let live = churned_graph(n, ops, graph_seed);
        let rebuilt = CsrGraph::from_edge_iter(n, live.edges_iter());
        let engine = ProbeSim::new(ProbeSimConfig::new(0.6, 0.08, 0.01).with_seed(engine_seed));
        let mut live_session = engine.session(&live);
        let mut rebuilt_session = engine.session(&rebuilt);
        for node in 0..n as NodeId {
            let queries = [
                Query::SingleSource { node },
                Query::TopK { node, k: 5 },
                Query::Threshold { node, tau: 0.05 },
            ];
            for query in queries {
                let a = live_session.run(query).expect("valid query");
                let b = rebuilt_session.run(query).expect("valid query");
                assert_bit_identical(&a.scores, &b.scores);
                prop_assert_eq!(a.stats, b.stats, "work counters diverged");
                prop_assert_eq!(a.ranking(), b.ranking());
            }
        }
    }

    /// The same property driven by the sliding-window stream generator
    /// (the workload the dynamic benchmark scenarios replay).
    #[test]
    fn sliding_window_stream_matches_rebuilt_csr(
        seed in any::<u64>(),
        events in 1usize..=200,
    ) {
        let n = 24;
        let mut live = DynamicGraph::new(n);
        for update in SlidingWindowStream::new(n, 40, seed).take(events) {
            prop_assert!(live.apply(update));
        }
        let rebuilt = CsrGraph::from_edge_iter(n, live.edges_iter());
        let engine = ProbeSim::new(ProbeSimConfig::new(0.6, 0.1, 0.01).with_seed(seed ^ 0xC0FFEE));
        let mut live_session = engine.session(&live);
        let mut rebuilt_session = engine.session(&rebuilt);
        for node in 0..n as NodeId {
            let a = live_session.run(Query::SingleSource { node }).expect("valid");
            let b = rebuilt_session.run(Query::SingleSource { node }).expect("valid");
            assert_bit_identical(&a.scores, &b.scores);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The store path under snapshot isolation: apply a random
    /// `GraphUpdate` stream to a `GraphStore`, retaining a snapshot
    /// every few updates and forcing a compaction partway through. At
    /// the end, every retained snapshot must answer all three query
    /// kinds **bit-for-bit** identically to a `CsrGraph` rebuilt from
    /// the edge set that existed at that snapshot's version — proving
    /// that later updates and the compaction boundary leaked nothing
    /// into earlier versions.
    #[test]
    fn retained_snapshots_answer_like_scratch_rebuilds_across_compaction(
        n in 4usize..=24,
        ops in 8usize..=96,
        graph_seed in any::<u64>(),
        engine_seed in any::<u64>(),
    ) {
        let mut store = GraphStore::new(n);
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let mut retained: Vec<(GraphSnapshot, CsrGraph)> = Vec::new();
        let compact_at = ops / 2;
        for i in 0..ops {
            let u = rng.gen_range(0..n) as NodeId;
            let v = rng.gen_range(0..n) as NodeId;
            if u != v {
                let update = if rng.gen_range(0u32..4) < 3 {
                    GraphUpdate::Insert { u, v }
                } else {
                    GraphUpdate::Remove { u, v }
                };
                store.apply(update);
            }
            if i % 7 == 0 {
                let snapshot = store.snapshot();
                // Record the version's edge set *now*, before any later
                // update can touch it.
                let scratch = snapshot.to_csr();
                retained.push((snapshot, scratch));
            }
            if i == compact_at {
                // Guarantee the overlay is non-empty so the compaction
                // boundary always exists (every edge lives in the overlay
                // until the first fold).
                store.apply(GraphUpdate::Insert { u: 0, v: 1 });
                prop_assert!(store.compact());
            }
        }
        prop_assert!(store.compactions() >= 1);
        retained.push((store.snapshot(), CsrGraph::from_edge_iter(n, store.edges_iter())));

        let engine = ProbeSim::new(ProbeSimConfig::new(0.6, 0.1, 0.01).with_seed(engine_seed));
        for (snapshot, scratch) in retained {
            prop_assert_eq!(snapshot.num_edges(), scratch.num_edges());
            let mut snap_session = engine.session(snapshot);
            let mut scratch_session = engine.session(&scratch);
            for node in 0..n as NodeId {
                let queries = [
                    Query::SingleSource { node },
                    Query::TopK { node, k: 5 },
                    Query::Threshold { node, tau: 0.05 },
                ];
                for query in queries {
                    let a = snap_session.run(query).expect("valid query");
                    let b = scratch_session.run(query).expect("valid query");
                    assert_bit_identical(&a.scores, &b.scores);
                    prop_assert_eq!(a.stats, b.stats, "work counters diverged");
                    prop_assert_eq!(a.ranking(), b.ranking());
                }
            }
        }
    }

    /// The store replaying the sliding-window stream (the workload the
    /// concurrent bench scenarios serve) agrees with a `DynamicGraph`
    /// replaying the same events, and its snapshot with a scratch CSR.
    #[test]
    fn store_and_dynamic_graph_agree_on_the_stream(
        seed in any::<u64>(),
        events in 1usize..=160,
    ) {
        let n = 24;
        let mut dynamic = DynamicGraph::new(n);
        let mut warm = SlidingWindowStream::new(n, 40, seed);
        for update in warm.by_ref().take(40) {
            dynamic.apply(update);
        }
        let mut store = GraphStore::from_view(&dynamic)
            .with_policy(CompactionPolicy { max_touched_fraction: 0.05, min_touched_lists: 8 });
        for update in warm.take(events) {
            prop_assert_eq!(store.apply(update), dynamic.apply(update));
        }
        prop_assert_eq!(store.num_edges(), dynamic.num_edges());
        prop_assert!(store.edges_iter().eq(dynamic.edges_iter()));
        let snapshot = store.snapshot();
        let engine = ProbeSim::new(ProbeSimConfig::new(0.6, 0.1, 0.01).with_seed(seed ^ 0xC0FFEE));
        let mut live_session = engine.session(&dynamic);
        let mut snap_session = engine.session(snapshot);
        for node in 0..n as NodeId {
            let a = live_session.run(Query::SingleSource { node }).expect("valid");
            let b = snap_session.run(Query::SingleSource { node }).expect("valid");
            assert_bit_identical(&a.scores, &b.scores);
        }
    }
}

/// Non-proptest regression: a long stream with interleaved verification
/// points (rebuild + compare after every block of updates), mirroring how
/// the dynamic benchmark scenarios interleave updates and queries.
#[test]
fn interleaved_verification_points_along_a_stream() {
    let n = 40;
    let mut live = DynamicGraph::new(n);
    let mut stream = SlidingWindowStream::new(n, 80, 99);
    let engine = ProbeSim::new(ProbeSimConfig::new(0.6, 0.1, 0.01).with_seed(7));
    for block in 0..6 {
        for update in stream.by_ref().take(50) {
            live.apply(update);
        }
        let rebuilt = CsrGraph::from_edge_iter(n, live.edges_iter());
        let query = Query::SingleSource {
            node: (block * 7 % n) as NodeId,
        };
        let a = engine.session(&live).run(query).expect("valid");
        let b = engine.session(&rebuilt).run(query).expect("valid");
        assert_bit_identical(&a.scores, &b.scores);
        assert_eq!(a.stats, b.stats);
    }
}
