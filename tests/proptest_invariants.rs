//! Property-based tests (proptest) over randomly generated graphs: the
//! structural invariants every component must hold regardless of input.

use probesim::prelude::*;
use probesim_core::probe::{self, ProbeParams};
use probesim_core::result::QueryStats;
use probesim_core::walk::sample_walk;
use probesim_core::workspace::ProbeWorkspace;
use probesim_core::WalkTrie;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random simple directed graph with 2..=24 nodes.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..=24, any::<u64>())
        .prop_flat_map(|(n, seed)| {
            let max_edges = n * (n - 1);
            (Just(n), Just(seed), 1usize..=max_edges.min(80))
        })
        .prop_map(|(n, seed, m)| {
            // Deterministic edge sampling from the seed.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut builder = GraphBuilder::new(n);
            use rand::Rng;
            for _ in 0..m {
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if u != v {
                    builder.push_edge(u, v);
                }
            }
            builder.build_csr()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// √c-walks always start at the query node and follow in-edges.
    #[test]
    fn walks_follow_in_edges(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = (seed % g.num_nodes() as u64) as NodeId;
        let walk = sample_walk(&g, u, 0.8, 32, &mut rng);
        prop_assert_eq!(walk[0], u);
        for pair in walk.windows(2) {
            prop_assert!(g.in_neighbors(pair[0]).contains(&pair[1]));
        }
    }

    /// Deterministic probe scores are per-node probabilities (each is the
    /// first-meeting probability of a *different* walk, so only the
    /// per-node bound holds — their sum across nodes may exceed 1) and the
    /// avoided diagonal nodes never receive score.
    #[test]
    fn probe_scores_are_probabilities(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = (seed % g.num_nodes() as u64) as NodeId;
        let walk = sample_walk(&g, u, 0.9, 8, &mut rng);
        prop_assume!(walk.len() >= 2);
        let n = g.num_nodes();
        let mut ws = ProbeWorkspace::new(n);
        let mut acc = vec![0.0f64; n];
        let mut stats = QueryStats::default();
        let params = ProbeParams { sqrt_c: 0.6f64.sqrt(), epsilon_p: 0.0 };
        probe::deterministic(&g, &walk, &params, 1.0, &mut ws, &mut acc, &mut stats).unwrap();
        for (v, &s) in acc.iter().enumerate() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "score[{v}] = {s}");
        }
        // First-meeting definition: the walk start u1 never receives score.
        prop_assert_eq!(acc[walk[0] as usize], 0.0);
        // Per-node cap: a probe of a path of i nodes can contribute at most
        // (√c)^{i-1} to any single node (the full decayed path mass).
        let cap = 0.6f64.sqrt().powi(walk.len() as i32 - 1);
        for (v, &s) in acc.iter().enumerate() {
            prop_assert!(s <= cap + 1e-12, "score[{v}] = {s} exceeds path cap {cap}");
        }
    }

    /// Pruning is one-sided, and each probe of a path with i nodes loses at
    /// most (i−1)·εp per node — one εp per pruned level. (The paper's
    /// Lemma 7 states εp per probe, but its induction drops the compounding
    /// of freshly pruned mass; proptest found counterexamples slightly
    /// above εp, and the error budget in `config.rs` charges the corrected
    /// coefficient.)
    #[test]
    fn pruning_is_one_sided(g in arb_graph(), seed in any::<u64>(), eps_p in 0.001f64..0.2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = (seed % g.num_nodes() as u64) as NodeId;
        let walk = sample_walk(&g, u, 0.9, 8, &mut rng);
        prop_assume!(walk.len() >= 2);
        let n = g.num_nodes();
        let mut ws = ProbeWorkspace::new(n);
        let mut stats = QueryStats::default();
        let sqrt_c = 0.6f64.sqrt();
        let mut exact = vec![0.0f64; n];
        probe::deterministic(&g, &walk, &ProbeParams { sqrt_c, epsilon_p: 0.0 }, 1.0, &mut ws, &mut exact, &mut stats).unwrap();
        let mut pruned = vec![0.0f64; n];
        probe::deterministic(&g, &walk, &ProbeParams { sqrt_c, epsilon_p: eps_p }, 1.0, &mut ws, &mut pruned, &mut stats).unwrap();
        let per_probe_bound = (walk.len() - 1) as f64 * eps_p;
        for v in 0..n {
            prop_assert!(pruned[v] <= exact[v] + 1e-12);
            prop_assert!(exact[v] - pruned[v] <= per_probe_bound + 1e-9,
                "node {v} lost {} > (i-1)·eps_p = {per_probe_bound}", exact[v] - pruned[v]);
        }
    }

    /// The walk trie preserves the multiset of walks: per-depth weights sum
    /// to the number of walks reaching that depth.
    #[test]
    fn trie_conserves_walk_counts(
        walks in prop::collection::vec(prop::collection::vec(0u32..6, 1..6), 1..30)
    ) {
        let mut trie = WalkTrie::new(0);
        let mut normalized: Vec<Vec<NodeId>> = Vec::new();
        for mut w in walks {
            w[0] = 0; // all walks share the root
            trie.insert(&w);
            normalized.push(w);
        }
        prop_assert_eq!(trie.total_walks() as usize, normalized.len());
        for depth in 2..=6usize {
            let expected: u32 = normalized.iter().filter(|w| w.len() >= depth).count() as u32;
            let mut actual = 0u32;
            trie.for_each_prefix(|path, w| {
                if path.len() == depth {
                    actual += w;
                }
            });
            prop_assert_eq!(actual, expected, "depth {}", depth);
        }
    }

    /// Batched and unbatched drivers produce identical deterministic
    /// estimates for the same seed. Pinned to the legacy per-prefix path:
    /// this is the Algorithm 1 vs Algorithm 3 equivalence, which holds
    /// probe by probe even under pruning. The fused engine makes pruning
    /// decisions on merged weighted frontiers (same guarantee, different
    /// cuts), so its equivalence properties — with pruning disabled —
    /// live in tests/fused_probe.rs.
    #[test]
    fn batching_is_transparent(g in arb_graph(), seed in any::<u64>()) {
        let u = (seed % g.num_nodes() as u64) as NodeId;
        prop_assume!(g.has_in_edges(u));
        let mut cfg = ProbeSimConfig::new(0.6, 0.25, 0.05).with_seed(seed).with_num_walks(60);
        cfg.optimizations.strategy = ProbeStrategy::Deterministic;
        cfg.optimizations.fuse_probes = false;
        cfg.optimizations.batch_walks = false;
        let unbatched = ProbeSim::new(cfg.clone()).single_source(&g, u);
        cfg.optimizations.batch_walks = true;
        let batched = ProbeSim::new(cfg).single_source(&g, u);
        for v in 0..g.num_nodes() {
            prop_assert!((unbatched.scores[v] - batched.scores[v]).abs() < 1e-9,
                "node {v}: {} vs {}", unbatched.scores[v], batched.scores[v]);
        }
    }

    /// SimRank symmetry survives the whole pipeline: power-method scores
    /// are symmetric and in [0, 1], with unit diagonal.
    #[test]
    fn power_method_is_a_valid_similarity(g in arb_graph()) {
        let s = PowerMethod::new(0.6, 12).all_pairs(&g);
        let n = g.num_nodes();
        for u in 0..n as NodeId {
            prop_assert_eq!(s.get(u, u), 1.0);
            for v in 0..n as NodeId {
                let val = s.get(u, v);
                prop_assert!((0.0..=1.0).contains(&val));
                prop_assert!((val - s.get(v, u)).abs() < 1e-12);
            }
        }
    }

    /// CSR round-trips through the binary format.
    #[test]
    fn binary_io_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        probesim_graph::io::write_binary(&mut buf, &g).expect("write");
        let g2 = probesim_graph::io::read_binary(std::io::Cursor::new(buf)).expect("read");
        prop_assert_eq!(g, g2);
    }

    /// DynamicGraph built from the same edges equals the CSR snapshot.
    #[test]
    fn dynamic_snapshot_roundtrip(g in arb_graph()) {
        let d = DynamicGraph::from_edges(g.num_nodes(), &g.edges());
        prop_assert_eq!(d.snapshot(), g);
    }
}
