//! Fused probe engine equivalence and unbiasedness properties.
//!
//! The fused engine (`probesim_core::frontier`) must be indistinguishable
//! from the legacy per-prefix batch driver wherever the math is exact,
//! and unbiased wherever it samples:
//!
//! * **Deterministic** strategy: expansion is linear, so the fused
//!   weight-merged sweep equals the per-prefix sum up to floating-point
//!   association — within 1e-9, on `CsrGraph` and on a live
//!   `DynamicGraph`. (Pruning is disabled for the exact comparisons: the
//!   fused path prunes merged frontiers against a weight-scaled
//!   threshold, which preserves the error guarantee but makes different
//!   cuts than the per-probe rule.)
//! * **Hybrid** strategy with a switch threshold that never trips takes
//!   the deterministic path on both engines — same 1e-9 agreement.
//! * **Randomized** strategy (and hybrid with forced switches): the
//!   weight-proportional draw budget keeps the estimator unbiased — the
//!   mean over independent seeds converges to exact SimRank (Table 2 of
//!   the paper) on the toy graph.
//!
//! Plus the counter plumbing: `frontier_merges`/`levels_expanded` are
//! nonzero exactly on the fused path and survive `run_batch`/`par_batch`
//! stat merging.

use probesim::prelude::*;
use probesim_graph::toy::{toy_edges, toy_graph, A, TABLE2, TOY_DECAY};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: a random simple directed graph with 2..=24 nodes.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..=24, any::<u64>())
        .prop_flat_map(|(n, seed)| {
            let max_edges = n * (n - 1);
            (Just(n), Just(seed), 1usize..=max_edges.min(80))
        })
        .prop_map(|(n, seed, m)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut builder = GraphBuilder::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if u != v {
                    builder.push_edge(u, v);
                }
            }
            builder.build_csr()
        })
}

/// A batched config with pruning disabled (exact-comparison mode) and
/// the given strategy + fuse bit.
fn exact_config(seed: u64, strategy: ProbeStrategy, fuse: bool) -> ProbeSimConfig {
    let mut cfg = ProbeSimConfig::new(0.6, 0.25, 0.05)
        .with_seed(seed)
        .with_num_walks(60);
    cfg.optimizations.strategy = strategy;
    cfg.optimizations.prune_scores = false;
    cfg.optimizations.batch_walks = true;
    cfg.optimizations.fuse_probes = fuse;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fused deterministic == legacy per-prefix deterministic within
    /// 1e-9, on CSR and on a live DynamicGraph (which must itself agree
    /// with CSR bit-for-bit).
    #[test]
    fn fused_deterministic_matches_legacy(g in arb_graph(), seed in any::<u64>()) {
        let u = (seed % g.num_nodes() as u64) as NodeId;
        prop_assume!(g.has_in_edges(u));
        let fused = ProbeSim::new(exact_config(seed, ProbeStrategy::Deterministic, true));
        let legacy = ProbeSim::new(exact_config(seed, ProbeStrategy::Deterministic, false));
        let fused_csr = fused.single_source(&g, u);
        let legacy_csr = legacy.single_source(&g, u);
        for v in 0..g.num_nodes() {
            prop_assert!(
                (fused_csr.scores[v] - legacy_csr.scores[v]).abs() < 1e-9,
                "node {v}: fused {} vs legacy {}",
                fused_csr.scores[v], legacy_csr.scores[v]
            );
        }
        // Same walks either way: the fused flag only changes probing.
        prop_assert_eq!(fused_csr.stats.walks, legacy_csr.stats.walks);
        prop_assert_eq!(fused_csr.stats.walk_nodes, legacy_csr.stats.walk_nodes);
        // Live DynamicGraph: bit-identical to the CSR run of the same engine.
        let live = DynamicGraph::from_edges(g.num_nodes(), &g.edges());
        let fused_live = fused.single_source(&live, u);
        for v in 0..g.num_nodes() {
            prop_assert_eq!(
                fused_live.scores[v].to_bits(), fused_csr.scores[v].to_bits(),
                "node {} differs between graph backends", v
            );
        }
        prop_assert_eq!(fused_live.stats, fused_csr.stats);
    }

    /// Hybrid whose switch threshold never trips is deterministic on both
    /// engines: fused == legacy within 1e-9, and fused hybrid is
    /// bit-identical to fused deterministic.
    #[test]
    fn fused_hybrid_without_switches_is_deterministic(g in arb_graph(), seed in any::<u64>()) {
        let u = (seed % g.num_nodes() as u64) as NodeId;
        prop_assume!(g.has_in_edges(u));
        let mut fused_cfg = exact_config(seed, ProbeStrategy::Hybrid, true);
        fused_cfg.optimizations.hybrid_c0 = 1e12;
        let mut legacy_cfg = exact_config(seed, ProbeStrategy::Hybrid, false);
        legacy_cfg.optimizations.hybrid_c0 = 1e12;
        let fused = ProbeSim::new(fused_cfg).single_source(&g, u);
        let legacy = ProbeSim::new(legacy_cfg).single_source(&g, u);
        prop_assert_eq!(fused.stats.hybrid_switches, 0);
        prop_assert_eq!(legacy.stats.hybrid_switches, 0);
        for v in 0..g.num_nodes() {
            prop_assert!(
                (fused.scores[v] - legacy.scores[v]).abs() < 1e-9,
                "node {v}: fused {} vs legacy {}", fused.scores[v], legacy.scores[v]
            );
        }
        let det = ProbeSim::new(exact_config(seed, ProbeStrategy::Deterministic, true))
            .single_source(&g, u);
        for v in 0..g.num_nodes() {
            prop_assert_eq!(fused.scores[v].to_bits(), det.scores[v].to_bits());
        }
    }

    /// The fused counters are nonzero exactly on the fused path, and the
    /// deterministic work counters never exceed the legacy path's.
    #[test]
    fn fused_counters_and_work(g in arb_graph(), seed in any::<u64>()) {
        let u = (seed % g.num_nodes() as u64) as NodeId;
        prop_assume!(g.has_in_edges(u));
        let fused = ProbeSim::new(exact_config(seed, ProbeStrategy::Deterministic, true))
            .single_source(&g, u);
        let legacy = ProbeSim::new(exact_config(seed, ProbeStrategy::Deterministic, false))
            .single_source(&g, u);
        if fused.stats.trie_prefixes > 0 {
            prop_assert!(fused.stats.levels_expanded > 0);
        }
        prop_assert_eq!(legacy.stats.levels_expanded, 0);
        prop_assert_eq!(legacy.stats.frontier_merges, 0);
        prop_assert_eq!(fused.stats.trie_prefixes, legacy.stats.trie_prefixes);
        prop_assert!(
            fused.stats.edges_expanded <= legacy.stats.edges_expanded,
            "fused expanded more edges ({}) than legacy ({})",
            fused.stats.edges_expanded, legacy.stats.edges_expanded
        );
        prop_assert!(fused.stats.total_work() <= legacy.stats.total_work());
    }
}

/// Mean over independent seeds of a randomized/hybrid fused engine vs the
/// exact Table 2 SimRank scores.
fn mean_abs_error_vs_table2<G: GraphView + Sync>(
    graph: &G,
    strategy: ProbeStrategy,
    c0: f64,
) -> f64 {
    let seeds = 40u64;
    let mut mean = [0.0f64; 8];
    for seed in 0..seeds {
        let mut cfg = ProbeSimConfig::new(TOY_DECAY, 0.1, 0.01).with_seed(1000 + seed);
        cfg.optimizations.strategy = strategy;
        cfg.optimizations.hybrid_c0 = c0;
        debug_assert!(cfg.optimizations.fuse_probes);
        let result = ProbeSim::new(cfg).single_source(graph, A);
        for (avg, &score) in mean.iter_mut().zip(&result.scores) {
            *avg += score / seeds as f64;
        }
    }
    (0..8)
        .filter(|&v| v != A as usize)
        .map(|v| (mean[v] - TABLE2[v]).abs())
        .fold(0.0, f64::max)
}

#[test]
fn fused_randomized_is_unbiased_on_toy_graph() {
    // Weight-proportional randomized probing: the per-seed estimate is
    // noisy, but the mean over seeds must converge on exact SimRank.
    let g = toy_graph();
    let err = mean_abs_error_vs_table2(&g, ProbeStrategy::Randomized, 0.5);
    assert!(err < 0.02, "mean-over-seeds error {err} vs Table 2");
}

#[test]
fn fused_hybrid_with_forced_switches_is_unbiased() {
    // c0 = 0 forces every group expansion onto the randomized path; the
    // estimator must stay unbiased through the mixed sweeps.
    let g = toy_graph();
    let err = mean_abs_error_vs_table2(&g, ProbeStrategy::Hybrid, 0.0);
    assert!(err < 0.02, "mean-over-seeds error {err} vs Table 2");
}

#[test]
fn fused_randomized_is_unbiased_on_dynamic_graph() {
    let g = DynamicGraph::from_edges(8, &toy_edges());
    let err = mean_abs_error_vs_table2(&g, ProbeStrategy::Randomized, 0.5);
    assert!(err < 0.02, "mean-over-seeds error {err} vs Table 2");
}

#[test]
fn fused_counters_flow_through_batch_and_par_batch() {
    // Satellite regression: QueryStats::merge must carry the new frontier
    // counters into run_batch and par_batch aggregates.
    let g = toy_graph();
    let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.08, 0.01).with_seed(7));
    let queries: Vec<Query> = (0..4).map(|node| Query::SingleSource { node }).collect();
    let sequential = engine.session(&g).run_batch(&queries).unwrap();
    let expected_levels: usize = sequential
        .outputs
        .iter()
        .map(|o| o.stats.levels_expanded)
        .sum();
    let expected_merges: usize = sequential
        .outputs
        .iter()
        .map(|o| o.stats.frontier_merges)
        .sum();
    assert!(expected_levels > 0, "fused default must sweep levels");
    assert_eq!(sequential.stats.levels_expanded, expected_levels);
    assert_eq!(sequential.stats.frontier_merges, expected_merges);
    let parallel = engine.par_batch(&g, &queries, 2).unwrap();
    assert_eq!(parallel.stats.levels_expanded, expected_levels);
    assert_eq!(parallel.stats.frontier_merges, expected_merges);
    assert_eq!(parallel.stats, sequential.stats);
}

#[test]
fn fused_pruned_run_stays_within_the_error_budget_of_exact() {
    // With pruning enabled the fused path makes different cuts than the
    // per-prefix rule, but both must stay inside the derived εp loss
    // bound of the *unpruned* deterministic scores (one-sided).
    let g = toy_graph();
    let mut pruned_cfg = ProbeSimConfig::new(TOY_DECAY, 0.1, 0.01).with_seed(99);
    pruned_cfg.optimizations.strategy = ProbeStrategy::Deterministic;
    let budget = pruned_cfg.budget();
    assert!(budget.pruning > 0.0, "pruning must be active");
    let mut exact_cfg = pruned_cfg.clone();
    exact_cfg.optimizations.prune_scores = false;
    let pruned = ProbeSim::new(pruned_cfg).single_source(&g, A);
    let exact = ProbeSim::new(exact_cfg).single_source(&g, A);
    let sqrt_c = TOY_DECAY.sqrt();
    let kappa = sqrt_c / ((1.0 - sqrt_c) * (1.0 - sqrt_c));
    let loss_bound = (1.0 + budget.sampling) * kappa.max(1.0) * budget.pruning;
    for v in 0..8 {
        if v == A as usize {
            continue;
        }
        assert!(
            pruned.scores[v] <= exact.scores[v] + 1e-12,
            "node {v}: pruning must be one-sided"
        );
        assert!(
            exact.scores[v] - pruned.scores[v] <= loss_bound + 1e-12,
            "node {v} lost {} > budgeted {loss_bound}",
            exact.scores[v] - pruned.scores[v]
        );
    }
}
