//! Integration tests for the session-based query API: sparse/dense
//! equivalence (bit-for-bit), error surfacing, session reuse, and batch
//! execution in both sequential and parallel modes.

use probesim::prelude::*;
use probesim_core::ProbeSim;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: a random simple directed graph with 2..=24 nodes.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..=24, any::<u64>())
        .prop_flat_map(|(n, seed)| {
            let max_edges = n * (n - 1);
            (Just(n), Just(seed), 1usize..=max_edges.min(80))
        })
        .prop_map(|(n, seed, m)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut builder = GraphBuilder::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if u != v {
                    builder.push_edge(u, v);
                }
            }
            builder.build_csr()
        })
}

fn config_for(strategy: ProbeStrategy, batch_walks: bool, seed: u64) -> ProbeSimConfig {
    let mut cfg = ProbeSimConfig::new(0.6, 0.2, 0.05)
        .with_seed(seed)
        .with_num_walks(40);
    cfg.optimizations.strategy = strategy;
    cfg.optimizations.batch_walks = batch_walks;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `SparseScores::to_dense` reproduces the legacy dense pipeline
    /// bit-for-bit, for every PROBE strategy and both batch modes.
    #[test]
    fn sparse_to_dense_matches_legacy_dense_path(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let u = (seed % g.num_nodes() as u64) as NodeId;
        for strategy in [
            ProbeStrategy::Deterministic,
            ProbeStrategy::Randomized,
            ProbeStrategy::Hybrid,
        ] {
            for batch_walks in [false, true] {
                let engine = ProbeSim::new(config_for(strategy, batch_walks, seed));
                let sparse = engine
                    .session(&g)
                    .run(Query::SingleSource { node: u })
                    .expect("u is in range");
                let reference = engine.single_source_dense_reference(&g, u);
                let dense = sparse.scores.to_dense();
                prop_assert_eq!(dense.len(), g.num_nodes());
                for (v, &score) in dense.iter().enumerate() {
                    prop_assert_eq!(
                        score.to_bits(),
                        reference.scores[v].to_bits(),
                        "{:?} batch={} node {}: {} vs {}",
                        strategy, batch_walks, v, score, reference.scores[v]
                    );
                }
                prop_assert_eq!(sparse.stats, reference.stats);
                // Sparse length == touched nodes in the dense output.
                let touched = reference
                    .scores
                    .iter()
                    .enumerate()
                    .filter(|&(v, &s)| v as NodeId != u && s != sparse.scores.baseline())
                    .count();
                prop_assert_eq!(sparse.scores.len(), touched);
            }
        }
    }

    /// Session reuse never changes answers: N queries on one session ==
    /// N queries on N fresh engines, including interleaved repeat queries.
    #[test]
    fn session_reuse_is_transparent(g in arb_graph(), seed in any::<u64>()) {
        let engine = ProbeSim::new(config_for(ProbeStrategy::Hybrid, true, seed));
        let n = g.num_nodes() as NodeId;
        let nodes = [0 % n, (n - 1).min(3), n / 2, 0 % n];
        let mut session = engine.session(&g);
        for &u in &nodes {
            let pooled = session
                .run(Query::SingleSource { node: u })
                .expect("in range");
            let fresh = engine.single_source(&g, u);
            prop_assert_eq!(pooled.scores.to_dense(), fresh.scores, "node {}", u);
        }
        prop_assert_eq!(session.queries_run(), nodes.len());
    }

    /// Sequential `run_batch` and parallel `par_batch` return identical
    /// outputs, in input order, with identical merged stats.
    #[test]
    fn batch_modes_agree(g in arb_graph(), seed in any::<u64>()) {
        let engine = ProbeSim::new(config_for(ProbeStrategy::Hybrid, true, seed));
        let n = g.num_nodes() as NodeId;
        let queries: Vec<Query> = (0..n)
            .map(|v| {
                if v % 3 == 0 {
                    Query::TopK { node: v, k: 3 }
                } else {
                    Query::SingleSource { node: v }
                }
            })
            .collect();
        let sequential = engine
            .session(&g)
            .run_batch(&queries)
            .expect("all queries valid");
        let parallel = engine.par_batch(&g, &queries, 4).expect("all queries valid");
        prop_assert_eq!(&sequential.outputs, &parallel.outputs);
        prop_assert_eq!(sequential.stats, parallel.stats);
        for (query, output) in queries.iter().zip(&sequential.outputs) {
            prop_assert_eq!(output.scores.query(), query.node());
        }
    }
}

#[test]
fn every_query_error_variant_is_reachable_through_the_public_api() {
    let g = toy();
    let empty = CsrGraph::from_edges(0, &[]);
    let engine = ProbeSim::new(ProbeSimConfig::paper(0.1));

    assert!(matches!(
        engine.session(&empty).run(Query::SingleSource { node: 0 }),
        Err(QueryError::EmptyGraph)
    ));
    assert!(matches!(
        engine.session(&g).run(Query::SingleSource { node: 100 }),
        Err(QueryError::NodeOutOfRange {
            node: 100,
            num_nodes: 8
        })
    ));
    assert!(matches!(
        engine.session(&g).run(Query::TopK { node: 0, k: 0 }),
        Err(QueryError::InvalidK { k: 0 })
    ));
    assert!(matches!(
        engine.session(&g).run(Query::Threshold {
            node: 0,
            tau: f64::INFINITY
        }),
        Err(QueryError::InvalidThreshold { .. })
    ));
    assert!(matches!(
        engine
            .session(&g)
            .run(Query::Threshold { node: 0, tau: -0.1 }),
        Err(QueryError::InvalidThreshold { .. })
    ));

    // The same errors flow through batch validation...
    assert!(engine
        .par_batch(&g, &[Query::TopK { node: 0, k: 0 }], 2)
        .is_err());
    // ...and through the try_ wrappers.
    assert!(matches!(
        engine.try_single_source(&g, 100),
        Err(QueryError::NodeOutOfRange { .. })
    ));
    // The legacy-shaped wrapper keeps the old k = 0 behavior (empty
    // ranking); only the strict Query surface rejects it.
    assert_eq!(engine.try_top_k(&g, 0, 0), Ok(Vec::new()));
    // QueryError is a real std error.
    let err: Box<dyn std::error::Error> = Box::new(QueryError::EmptyGraph);
    assert!(err.to_string().contains("empty graph"));
}

#[test]
fn threshold_queries_match_dense_filtering() {
    let g = toy();
    let engine = ProbeSim::new(ProbeSimConfig::new(0.25, 0.05, 0.01).with_seed(11));
    let output = engine
        .session(&g)
        .run(Query::Threshold { node: 0, tau: 0.05 })
        .unwrap();
    let dense = engine.single_source(&g, 0);
    let mut expected = dense.above_threshold(0.05);
    expected.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    assert_eq!(output.ranking(), expected);
}

#[test]
fn empty_batch_is_fine_in_both_modes() {
    let g = toy();
    let engine = ProbeSim::new(ProbeSimConfig::paper(0.1));
    let sequential = engine.session(&g).run_batch(&[]).unwrap();
    assert!(sequential.outputs.is_empty());
    assert_eq!(sequential.stats, probesim_core::QueryStats::default());
    let parallel = engine.par_batch(&g, &[], 4).unwrap();
    assert!(parallel.outputs.is_empty());
}

fn toy() -> CsrGraph {
    probesim_graph::toy::toy_graph()
}
