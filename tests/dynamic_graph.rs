//! Integration tests for the dynamic-graph story: index-free queries on a
//! live graph, snapshot equivalence, and TSF index maintenance.

use probesim::prelude::*;
use probesim_datasets::gens;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DECAY: f64 = 0.6;

/// ProbeSim on a DynamicGraph must give exactly the same answer as on an
/// immutable CSR snapshot of the same state (same seed => same walks).
#[test]
fn dynamic_and_snapshot_queries_agree() {
    let base = gens::erdos_renyi(300, 1500, 9);
    let mut dynamic = DynamicGraph::from_edges(300, &base.edges());
    let mut rng = StdRng::seed_from_u64(1);
    // Churn the graph a bit.
    for _ in 0..200 {
        let u = rng.gen_range(0..300u32);
        let v = rng.gen_range(0..300u32);
        if u != v {
            if rng.gen::<bool>() {
                dynamic.insert_edge(u, v);
            } else {
                dynamic.remove_edge(u, v);
            }
        }
    }
    let snapshot = dynamic.snapshot();
    let engine = ProbeSim::new(ProbeSimConfig::paper(0.1).with_seed(5));
    for u in [0u32, 37, 123, 250] {
        let live = engine.single_source(&dynamic, u);
        let snap = engine.single_source(&snapshot, u);
        assert_eq!(live.scores, snap.scores, "query {u} diverged");
    }
}

/// After updates, queries must reflect the new structure: adding a shared
/// in-neighbor raises similarity; removing it lowers it again.
#[test]
fn queries_track_structure_changes() {
    // 1 -> 0 and 2 -> 3 initially: s(0, 3) = 0 (no shared ancestry).
    let mut g = DynamicGraph::from_edges(5, &[(1, 0), (2, 3)]);
    let engine = ProbeSim::new(ProbeSimConfig::new(DECAY, 0.02, 0.01).with_seed(13));
    let before = engine.single_source(&g, 0);
    assert!(before.score(3) < 0.03, "unrelated nodes must score ~0");

    // Node 4 becomes a common in-neighbor of both 0 and 3.
    g.insert_edge(4, 0);
    g.insert_edge(4, 3);
    let during = engine.single_source(&g, 0);
    // s(0,3) = c/4 · (s(1,2) + s(1,4) + s(4,2) + 1) = 0.15 exactly.
    assert!(
        (during.score(3) - DECAY / 4.0).abs() < 0.03,
        "shared parent should give s ≈ 0.15, got {}",
        during.score(3)
    );

    g.remove_edge(4, 0);
    g.remove_edge(4, 3);
    let after = engine.single_source(&g, 0);
    assert!(after.score(3) < 0.03, "similarity must drop after removal");
}

/// TSF's incremental maintenance must stay *distributionally* equivalent
/// to a fresh rebuild: query scores from a maintained index and a rebuilt
/// index agree within Monte Carlo noise.
#[test]
fn tsf_maintenance_tracks_rebuild() {
    let base = gens::chung_lu(400, 2400, 2.3, 33);
    let mut graph = DynamicGraph::from_edges(400, &base.edges());
    let config = TsfConfig {
        decay: DECAY,
        rg: 400,
        rq: 10,
        depth: 8,
        seed: 3,
    };
    let mut maintained = Tsf::build(&graph, config);
    let mut rng = StdRng::seed_from_u64(44);
    for _ in 0..300 {
        let u = rng.gen_range(0..400u32);
        let v = rng.gen_range(0..400u32);
        if u == v {
            continue;
        }
        if rng.gen::<f64>() < 0.7 {
            if graph.insert_edge(u, v) {
                maintained.on_edge_inserted(&graph, u, v, &mut rng);
            }
        } else if graph.remove_edge(u, v) {
            maintained.on_edge_removed(&graph, u, v, &mut rng);
        }
    }
    let rebuilt = Tsf::build(
        &graph,
        TsfConfig {
            seed: 999,
            ..config
        },
    );
    // Compare mean scores over queries: same distribution => close means.
    let mut diff_sum = 0.0f64;
    let mut count = 0usize;
    for u in [5u32, 50, 150, 333] {
        if !graph.has_in_edges(u) {
            continue;
        }
        let a = maintained.single_source(&graph, u);
        let b = rebuilt.single_source(&graph, u);
        for v in 0..400usize {
            diff_sum += (a[v] - b[v]).abs();
            count += 1;
        }
    }
    let mean_diff = diff_sum / count.max(1) as f64;
    assert!(
        mean_diff < 0.01,
        "maintained vs rebuilt TSF diverged: mean |Δ| = {mean_diff}"
    );
}

/// Growing the node set: new nodes are immediately queryable.
#[test]
fn new_nodes_are_queryable() {
    let mut g = DynamicGraph::from_edges(3, &[(0, 1), (2, 1)]);
    let first_new = g.add_nodes(2);
    g.insert_edge(0, first_new);
    g.insert_edge(2, first_new);
    let engine = ProbeSim::new(ProbeSimConfig::new(DECAY, 0.02, 0.01).with_seed(2));
    let result = engine.single_source(&g, first_new);
    // The new node shares both in-neighbors {0, 2} with node 1; the
    // parents themselves are dissimilar (0 and 2 have no in-edges), so
    // s = c/4 · (s(0,0) + 2·s(0,2) + s(2,2)) = c/2 = 0.3 exactly.
    assert!(
        (result.score(1) - DECAY / 2.0).abs() < 0.03,
        "expected ≈{}, got {}",
        DECAY / 2.0,
        result.score(1)
    );
}
