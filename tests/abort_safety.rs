//! Abort-safety property tests for cooperative cancellation.
//!
//! The contract under test: a query killed mid-probe by
//! `DeadlineExceeded` / `WorkBudgetExceeded` leaves the pooled session
//! fully reusable — the next query on the same session is **bit-identical**
//! to one on a fresh session — across both probe engines (fused and
//! legacy per-prefix) and both graph backends (borrowed `CsrGraph` and
//! owned `GraphSnapshot`).

use std::time::Duration;

use probesim::prelude::*;
use probesim_core::ProbeSim;
use proptest::prelude::*;
use proptest::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: a random simple directed graph with 2..=24 nodes.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..=24, any::<u64>())
        .prop_flat_map(|(n, seed)| {
            let max_edges = n * (n - 1);
            (Just(n), Just(seed), 1usize..=max_edges.min(80))
        })
        .prop_map(|(n, seed, m)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut builder = GraphBuilder::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if u != v {
                    builder.push_edge(u, v);
                }
            }
            builder.build_csr()
        })
}

/// The three engine configurations the abort paths must all survive:
/// fused frontiers (tier 3), legacy per-prefix (tier 2), and the
/// unbatched per-walk driver (tier 1).
fn engine_configs(seed: u64) -> Vec<ProbeSimConfig> {
    [(true, true), (true, false), (false, false)]
        .into_iter()
        .map(|(batch_walks, fuse_probes)| {
            let mut cfg = ProbeSimConfig::new(0.6, 0.2, 0.05)
                .with_seed(seed)
                .with_num_walks(40);
            cfg.optimizations.strategy = ProbeStrategy::Hybrid;
            cfg.optimizations.batch_walks = batch_walks;
            cfg.optimizations.fuse_probes = fuse_probes;
            cfg
        })
        .collect()
}

/// Abort the query on `session` with `budget`, then prove the session is
/// as good as new: the follow-up query must equal `reference` (a
/// fresh-session output) bit-for-bit in scores *and* stats.
fn assert_reusable_after_abort<G: GraphView + Sync>(
    session: &mut QuerySession<G>,
    query: Query,
    budget: ProbeBudget,
    reference: &QueryOutput,
    expect_work_abort: bool,
) -> Result<(), TestCaseError> {
    match session.run_with_budget(query, budget) {
        Err(QueryError::WorkBudgetExceeded { partial }) => {
            prop_assert!(expect_work_abort, "work abort without a work cap");
            prop_assert!(
                partial.total_work() <= reference.stats.total_work(),
                "partial work exceeds the full query's work"
            );
        }
        Err(QueryError::DeadlineExceeded { .. }) => {
            prop_assert!(
                !expect_work_abort,
                "deadline abort with only a work cap armed"
            );
        }
        Ok(output) => {
            // A cap at/above the abort granularity can let the query
            // finish; then it must simply be the right answer.
            prop_assert_eq!(&output.scores, &reference.scores);
            prop_assert_eq!(output.stats, reference.stats);
        }
        Err(other) => prop_assert!(false, "unexpected error {:?}", other),
    }
    // The poisoning check: the next query on the aborted session must be
    // bit-identical to the fresh-session reference.
    let after = session.run(query).expect("query stays valid");
    prop_assert_eq!(
        &after.scores,
        &reference.scores,
        "scores diverged after abort"
    );
    prop_assert_eq!(after.stats, reference.stats, "stats diverged after abort");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Work-cap aborts mid-probe leave the session reusable, on every
    /// engine tier and both backends.
    #[test]
    fn work_cap_abort_leaves_session_reusable(
        g in arb_graph(),
        seed in any::<u64>(),
        cap_permille in 10u64..500,
    ) {
        let u = (seed % g.num_nodes() as u64) as NodeId;
        let query = Query::SingleSource { node: u };
        for cfg in engine_configs(seed) {
            let engine = ProbeSim::new(cfg);
            let reference = engine.session(&g).run(query).expect("u in range");
            let total = reference.stats.total_work() as u64;
            // A cap strictly below the full work, scaled into the probe
            // region so most cases abort mid-execution.
            let cap = (total * cap_permille / 1000).min(total.saturating_sub(1));

            // Backend 1: borrowed CsrGraph.
            let mut session = engine.session(&g);
            assert_reusable_after_abort(
                &mut session,
                query,
                ProbeBudget::unlimited().with_work_cap(cap),
                &reference,
                true,
            )?;

            // Backend 2: owned GraphSnapshot (same edge set => the
            // reference stays the oracle; snapshot answers are
            // bit-identical to CSR by the storage-tier invariant).
            let store = GraphStore::from_view(&g);
            let mut owned = engine.session(store.snapshot());
            assert_reusable_after_abort(
                &mut owned,
                query,
                ProbeBudget::unlimited().with_work_cap(cap),
                &reference,
                true,
            )?;
        }
    }

    /// A pre-expired deadline aborts before (or between) expansions and
    /// the session survives, on every engine tier and both backends.
    #[test]
    fn expired_deadline_abort_leaves_session_reusable(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let u = (seed % g.num_nodes() as u64) as NodeId;
        let query = Query::SingleSource { node: u };
        for cfg in engine_configs(seed) {
            let engine = ProbeSim::new(cfg);
            let reference = engine.session(&g).run(query).expect("u in range");

            let mut session = engine.session(&g);
            assert_reusable_after_abort(
                &mut session,
                query,
                ProbeBudget::unlimited().with_deadline(Duration::ZERO),
                &reference,
                false,
            )?;

            let store = GraphStore::from_view(&g);
            let mut owned = engine.session(store.snapshot());
            assert_reusable_after_abort(
                &mut owned,
                query,
                ProbeBudget::unlimited().with_deadline(Duration::ZERO),
                &reference,
                false,
            )?;
        }
    }

    /// Work-cap aborts are deterministic: identical (graph, config,
    /// seed, cap) abort at the identical point with identical partial
    /// counters — the property that makes `WorkBudgetExceeded` a usable
    /// CI/regression signal.
    #[test]
    fn work_cap_aborts_are_deterministic(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let u = (seed % g.num_nodes() as u64) as NodeId;
        let query = Query::SingleSource { node: u };
        let engine = ProbeSim::new(engine_configs(seed).remove(0));
        let total = engine
            .session(&g)
            .run(query)
            .expect("u in range")
            .stats
            .total_work() as u64;
        let cap = (total / 3).min(total.saturating_sub(1));
        let budget = ProbeBudget::unlimited().with_work_cap(cap);
        let a = engine.session(&g).run_with_budget(query, budget);
        let b = engine.session(&g).run_with_budget(query, budget);
        prop_assert_eq!(a, b);
    }

    /// Aborting inside a multi-query stream does not disturb the
    /// stream: interleave budgeted aborts with plain queries and compare
    /// every plain answer against a never-aborted session.
    #[test]
    fn aborts_interleaved_with_queries_are_invisible(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let n = g.num_nodes() as NodeId;
        let engine = ProbeSim::new(engine_configs(seed).remove(0));
        let mut aborted = engine.session(&g);
        let mut clean = engine.session(&g);
        for step in 0..4u32 {
            let u = (seed as NodeId ^ step) % n;
            // Poison attempt: a throttled query that (usually) dies.
            let _ = aborted.run_with_budget(
                Query::SingleSource { node: u },
                ProbeBudget::unlimited().with_work_cap(5),
            );
            let on_aborted = aborted.run(Query::SingleSource { node: u }).expect("valid");
            let on_clean = clean.run(Query::SingleSource { node: u }).expect("valid");
            prop_assert_eq!(&on_aborted.scores, &on_clean.scores, "step {}", step);
            prop_assert_eq!(on_aborted.stats, on_clean.stats);
        }
    }
}

/// The partial stats of a deadline abort reflect real work when the
/// deadline expires mid-query rather than before it.
#[test]
fn mid_query_deadline_abort_reports_partial_progress() {
    // A denser deterministic workload so the clock is consulted at least
    // once mid-execution: large-ish walk count on the toy graph.
    let g = probesim_graph::toy::toy_graph();
    let engine = ProbeSim::new(
        ProbeSimConfig::new(0.36, 0.05, 0.01)
            .with_seed(7)
            .with_num_walks(20_000),
    );
    let mut session = engine.session(&g);
    // Reference for full work.
    let full = session.run(Query::SingleSource { node: 0 }).unwrap();
    // A deadline so short it expires during execution (but not before
    // the first check): spin until we observe a mid-query abort.
    let mut observed_partial = false;
    for _ in 0..50 {
        match session.run_with_budget(
            Query::SingleSource { node: 0 },
            ProbeBudget::unlimited().with_deadline(Duration::from_micros(300)),
        ) {
            Err(QueryError::DeadlineExceeded { partial }) => {
                if partial.total_work() > 0 {
                    assert!(partial.total_work() < full.stats.total_work());
                    observed_partial = true;
                    break;
                }
            }
            Ok(_) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    // Timing-dependent, but 50 attempts at 300 µs on this workload make
    // a mid-query expiry overwhelmingly likely; even if the machine is
    // bizarre, the session must still answer correctly afterwards.
    let after = session.run(Query::SingleSource { node: 0 }).unwrap();
    assert_eq!(after.scores, full.scores);
    assert_eq!(after.stats, full.stats);
    if !observed_partial {
        eprintln!("note: no mid-query deadline abort observed (timing)");
    }
}
