//! End-to-end: the `SimRankAlgorithm` evaluation harness driven against a
//! live `DynamicGraph` — the paper's dynamic-graph story through the same
//! adapter layer the figures use (possible since the trait went generic
//! over `GraphView`).

use probesim::prelude::*;
use probesim_datasets::gens;
use probesim_eval::{metrics, sample_query_nodes, McAlgo, ProbeSimAlgo, TopSimAlgo, TsfAlgo};

const DECAY: f64 = 0.6;

fn roster(seed: u64) -> Vec<Box<dyn SimRankAlgorithm<DynamicGraph>>> {
    vec![
        Box::new(ProbeSimAlgo::new(
            ProbeSimConfig::paper(0.05).with_seed(seed),
        )),
        Box::new(McAlgo::new(MonteCarlo::new(DECAY, 800).with_seed(seed ^ 1))),
        Box::new(TsfAlgo::new(TsfConfig {
            decay: DECAY,
            rg: 300,
            rq: 20,
            depth: 10,
            seed: seed ^ 2,
        })),
        Box::new(TopSimAlgo::new(TopSimConfig::paper(TopSimVariant::Exact))),
    ]
}

/// The full harness loop — prepare, single-source, top-k, metrics —
/// against a DynamicGraph, with accuracy checked against the exact oracle
/// computed on the same live graph.
#[test]
fn harness_runs_end_to_end_on_a_dynamic_graph() {
    let base = gens::chung_lu(400, 2400, 2.3, 21);
    let mut graph = DynamicGraph::from_edges(400, &base.edges());
    // Churn the graph so it is genuinely a mutated dynamic structure, not
    // a CSR in disguise.
    for i in 0..200u32 {
        let u = (i * 7) % 400;
        let v = (i * 13 + 1) % 400;
        if u != v {
            if i % 4 == 0 {
                graph.remove_edge(u, v);
            } else {
                graph.insert_edge(u, v);
            }
        }
    }
    let truth = GroundTruth::compute_with_iterations(&graph, DECAY, 25);
    let queries = sample_query_nodes(&graph, 3, 5);
    assert!(!queries.is_empty());
    for mut algo in roster(9) {
        algo.prepare(&graph);
        for &u in &queries {
            let scores = algo.single_source(&graph, u);
            assert_eq!(scores.len(), 400, "{}", algo.name());
            let err = metrics::abs_error(truth.single_source(u), &scores, u);
            // Generous cap: every engine is at least roughly right on a
            // 400-node graph; ProbeSim's own bound is checked below.
            assert!(err <= 0.5, "{} query {u}: abs error {err}", algo.name());
            let top = algo.top_k(&graph, u, 5);
            assert!(top.len() <= 5);
            assert!(top.windows(2).all(|w| w[0].1 >= w[1].1), "{}", algo.name());
        }
    }
}

/// ProbeSim through the harness honors its error bound on the live graph
/// and matches a CSR snapshot of the same state exactly.
#[test]
fn probesim_adapter_is_snapshot_consistent_on_dynamic_graphs() {
    let base = gens::erdos_renyi(300, 1800, 4);
    let mut dynamic = DynamicGraph::from_edges(300, &base.edges());
    for i in 0..150u32 {
        dynamic.insert_edge((i * 11) % 300, (i * 17 + 2) % 300);
    }
    let snapshot = dynamic.snapshot();
    let truth = GroundTruth::compute_with_iterations(&dynamic, DECAY, 25);
    let mut algo = ProbeSimAlgo::new(ProbeSimConfig::paper(0.05).with_seed(77));
    for &u in &sample_query_nodes(&dynamic, 4, 13) {
        let live: Vec<f64> =
            SimRankAlgorithm::<DynamicGraph>::single_source(&mut algo, &dynamic, u);
        let snap: Vec<f64> = SimRankAlgorithm::<CsrGraph>::single_source(&mut algo, &snapshot, u);
        assert_eq!(live, snap, "query {u} diverged between live and snapshot");
        let err = metrics::abs_error(truth.single_source(u), &live, u);
        assert!(err <= 0.05 * 1.3, "query {u}: abs error {err}");
    }
}
