//! Cross-algorithm consistency: all six engines, driven through the
//! uniform adapter layer, must agree on easy instances and order
//! themselves the way the paper's accuracy results predict.

use probesim::prelude::*;
use probesim_datasets::gens;
use probesim_eval::{metrics, sample_query_nodes, McAlgo, ProbeSimAlgo, TopSimAlgo, TsfAlgo};

const DECAY: f64 = 0.6;

fn roster(seed: u64) -> Vec<Box<dyn SimRankAlgorithm>> {
    vec![
        Box::new(ProbeSimAlgo::new(
            ProbeSimConfig::paper(0.05).with_seed(seed),
        )),
        Box::new(McAlgo::new(MonteCarlo::new(DECAY, 800).with_seed(seed ^ 1))),
        Box::new(TsfAlgo::new(TsfConfig {
            decay: DECAY,
            rg: 300,
            rq: 20,
            depth: 10,
            seed: seed ^ 2,
        })),
        Box::new(TopSimAlgo::new(TopSimConfig::paper(TopSimVariant::Exact))),
        Box::new(TopSimAlgo::new(TopSimConfig::paper(
            TopSimVariant::paper_truncated(),
        ))),
        Box::new(TopSimAlgo::new(TopSimConfig::paper(
            TopSimVariant::paper_priority(),
        ))),
    ]
}

/// On a graph with one unambiguous nearest neighbor, every algorithm must
/// find it.
#[test]
fn all_algorithms_find_the_obvious_twin() {
    // Nodes 10 and 11 share three in-neighbors; nothing else comes close.
    let mut edges = vec![(0u32, 10u32), (1, 10), (2, 10), (0, 11), (1, 11), (2, 11)];
    // Background noise ring with its own parents, plus in-edges for 0..3
    // so walks from the twins can continue.
    for i in 0..10u32 {
        edges.push((10 + (i % 2), i));
        edges.push(((i + 5) % 10, i));
    }
    let g = CsrGraph::from_edges(12, &edges);
    for mut algo in roster(1) {
        algo.prepare(&g);
        let top = algo.top_k(&g, 10, 1);
        assert_eq!(
            top[0].0,
            11,
            "{} failed to identify the structural twin: {top:?}",
            algo.name()
        );
    }
}

/// ProbeSim and exact TopSim-SM (deep T) agree with the Power Method;
/// heuristic variants and TSF may deviate but must stay correlated.
#[test]
fn accuracy_ordering_matches_paper() {
    let g = gens::chung_lu(500, 3000, 2.3, 77);
    let truth = GroundTruth::compute_with_iterations(&g, DECAY, 25);
    let queries = sample_query_nodes(&g, 4, 3);
    let mut worst: Vec<(String, f64)> = Vec::new();
    for mut algo in roster(9) {
        algo.prepare(&g);
        let mut e = 0.0f64;
        for &u in &queries {
            let scores = algo.single_source(&g, u);
            e = e.max(metrics::abs_error(truth.single_source(u), &scores, u));
        }
        worst.push((algo.name(), e));
    }
    let err_of = |needle: &str| {
        worst
            .iter()
            .find(|(n, _)| n.contains(needle))
            .map(|&(_, e)| e)
            .expect("algorithm present")
    };
    // ProbeSim honors its bound.
    assert!(err_of("ProbeSim") <= 0.05 * 1.3, "{worst:?}");
    // The paper's qualitative finding: ProbeSim beats TSF on AbsError.
    assert!(
        err_of("ProbeSim") < err_of("TSF"),
        "expected ProbeSim < TSF: {worst:?}"
    );
    // TopSim-SM is capped by c^3 = 0.216 at T = 3.
    assert!(err_of("TopSim-SM") <= DECAY.powi(3) + 1e-9, "{worst:?}");
}

/// Top-k answers of ProbeSim and the exact oracle overlap heavily on a
/// mid-size graph (precision ≥ 0.8 at the paper's k = 50 scaled down).
#[test]
fn probesim_topk_precision_is_high() {
    let g = gens::preferential_attachment(800, 5, true, 5);
    let truth = GroundTruth::compute_with_iterations(&g, DECAY, 25);
    let engine = ProbeSim::new(ProbeSimConfig::paper(0.025).with_seed(31));
    let k = 20;
    let mut total_precision = 0.0;
    let queries = sample_query_nodes(&g, 5, 41);
    for &u in &queries {
        let returned: Vec<NodeId> = engine.top_k(&g, u, k).iter().map(|&(v, _)| v).collect();
        let ideal: Vec<NodeId> = truth.top_k(u, k).iter().map(|&(v, _)| v).collect();
        total_precision += metrics::precision_at_k(&returned, &ideal, k);
    }
    let avg = total_precision / queries.len() as f64;
    assert!(avg >= 0.8, "avg precision@{k} = {avg}");
}

/// TSF's documented bias: estimates over-count meetings, so its mean
/// signed error against the truth is non-negative on dense graphs.
#[test]
fn tsf_overestimates_on_average() {
    let g = gens::erdos_renyi(300, 3000, 15);
    let truth = GroundTruth::compute_with_iterations(&g, DECAY, 25);
    let tsf = Tsf::build(
        &g,
        TsfConfig {
            decay: DECAY,
            rg: 300,
            rq: 20,
            depth: 10,
            seed: 8,
        },
    );
    let mut signed = 0.0f64;
    let mut count = 0usize;
    for &u in &sample_query_nodes(&g, 4, 51) {
        let est = tsf.single_source(&g, u);
        let exact = truth.single_source(u);
        for v in 0..300usize {
            if v as u32 != u {
                signed += est[v] - exact[v];
                count += 1;
            }
        }
    }
    let bias = signed / count as f64;
    assert!(
        bias > -1e-4,
        "TSF should not underestimate on average: {bias}"
    );
}
