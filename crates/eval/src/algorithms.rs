//! Uniform adapter layer over every SimRank engine in the workspace.
//!
//! The experiment harness (Figures 4–10, Table 4) drives six algorithms
//! through one interface: build (index construction, a no-op for the
//! index-free methods), single-source query, top-k query, and space
//! accounting. The adapters own per-algorithm state (e.g. the TSF index)
//! so a harness loop stays a few lines per figure.
//!
//! [`SimRankAlgorithm`] is generic over the graph representation
//! (`G: GraphView`, default [`CsrGraph`]), so the same roster runs against
//! an immutable CSR snapshot *or* a live
//! [`probesim_graph::DynamicGraph`] — the paper's dynamic-graph story can
//! be driven through the harness end-to-end. Every adapter implements the
//! trait for all `G: GraphView`.

use probesim_baselines::{
    FingerprintConfig, FingerprintIndex, MonteCarlo, TopSim, TopSimConfig, Tsf, TsfConfig,
};
use probesim_core::{ProbeSim, ProbeSimConfig, Query};
use probesim_graph::{CsrGraph, GraphView, NodeId};

/// A SimRank engine the harness can drive uniformly against any graph
/// representation implementing [`GraphView`].
pub trait SimRankAlgorithm<G: GraphView = CsrGraph> {
    /// Display name, matching the paper's figures where applicable.
    fn name(&self) -> String;

    /// One-time preparation against a fixed graph (index construction).
    /// Index-free algorithms do nothing.
    fn prepare(&mut self, _graph: &G) {}

    /// Answers a single-source query: `s̃(u, v)` for all `v`.
    fn single_source(&mut self, graph: &G, u: NodeId) -> Vec<f64>;

    /// Answers a top-k query; default: rank the single-source answer.
    fn top_k(&mut self, graph: &G, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let scores = self.single_source(graph, u);
        probesim_core::top_k_from_scores(&scores, u, k)
    }

    /// Bytes of auxiliary index state held between queries (Table 4's
    /// space-overhead column). Zero for index-free methods.
    fn index_bytes(&self) -> usize {
        0
    }
}

/// ProbeSim adapter, driven through the session API.
pub struct ProbeSimAlgo {
    engine: ProbeSim,
}

impl ProbeSimAlgo {
    /// Wraps a configured engine.
    pub fn new(config: ProbeSimConfig) -> Self {
        ProbeSimAlgo {
            engine: ProbeSim::new(config),
        }
    }

    /// Display name (inherent so callers need no graph-type annotation).
    pub fn name(&self) -> String {
        format!("ProbeSim(eps={})", self.engine.config().epsilon)
    }
}

// `Sync` comes with the session API: the fused sweep may fan a frontier
// out across scoped threads sharing the graph borrow.
impl<G: GraphView + Sync> SimRankAlgorithm<G> for ProbeSimAlgo {
    fn name(&self) -> String {
        ProbeSimAlgo::name(self)
    }

    fn single_source(&mut self, graph: &G, u: NodeId) -> Vec<f64> {
        self.engine
            .session(graph)
            .run(Query::SingleSource { node: u })
            .unwrap_or_else(|e| panic!("harness query invalid: {e}"))
            .scores
            .to_dense()
    }

    fn top_k(&mut self, graph: &G, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        self.engine
            .session(graph)
            .run(Query::TopK { node: u, k })
            .unwrap_or_else(|e| panic!("harness query invalid: {e}"))
            .ranking()
    }
}

/// Monte Carlo adapter.
pub struct McAlgo {
    mc: MonteCarlo,
}

impl McAlgo {
    /// Wraps a configured estimator.
    pub fn new(mc: MonteCarlo) -> Self {
        McAlgo { mc }
    }

    /// Display name (inherent so callers need no graph-type annotation).
    pub fn name(&self) -> String {
        format!("MC(r={})", self.mc.num_walks)
    }
}

impl<G: GraphView> SimRankAlgorithm<G> for McAlgo {
    fn name(&self) -> String {
        McAlgo::name(self)
    }

    fn single_source(&mut self, graph: &G, u: NodeId) -> Vec<f64> {
        self.mc.single_source(graph, u)
    }
}

/// TSF adapter; owns the one-way-graph index.
pub struct TsfAlgo {
    config: TsfConfig,
    index: Option<Tsf>,
}

impl TsfAlgo {
    /// An adapter that will build its index on [`SimRankAlgorithm::prepare`].
    pub fn new(config: TsfConfig) -> Self {
        TsfAlgo {
            config,
            index: None,
        }
    }

    /// Display name (inherent so callers need no graph-type annotation).
    pub fn name(&self) -> String {
        format!("TSF(Rg={},Rq={})", self.config.rg, self.config.rq)
    }

    /// Index footprint in bytes (0 before the index is built).
    pub fn index_bytes(&self) -> usize {
        self.index.as_ref().map_or(0, Tsf::index_bytes)
    }
}

impl<G: GraphView> SimRankAlgorithm<G> for TsfAlgo {
    fn name(&self) -> String {
        TsfAlgo::name(self)
    }

    fn prepare(&mut self, graph: &G) {
        self.index = Some(Tsf::build(graph, self.config));
    }

    fn single_source(&mut self, graph: &G, u: NodeId) -> Vec<f64> {
        if self.index.is_none() {
            SimRankAlgorithm::<G>::prepare(self, graph);
        }
        self.index
            .as_ref()
            .expect("invariant: index built above")
            .single_source(graph, u)
    }

    fn index_bytes(&self) -> usize {
        TsfAlgo::index_bytes(self)
    }
}

/// Fingerprint-index adapter (Fogaras–Rácz precomputed walks); owns the
/// stored-walk index.
pub struct FingerprintAlgo {
    config: FingerprintConfig,
    index: Option<FingerprintIndex>,
}

impl FingerprintAlgo {
    /// An adapter that builds its index on [`SimRankAlgorithm::prepare`].
    pub fn new(config: FingerprintConfig) -> Self {
        FingerprintAlgo {
            config,
            index: None,
        }
    }

    /// Display name (inherent so callers need no graph-type annotation).
    pub fn name(&self) -> String {
        format!("Fingerprint(r={})", self.config.num_walks)
    }

    /// Index footprint in bytes (0 before the index is built).
    pub fn index_bytes(&self) -> usize {
        self.index.as_ref().map_or(0, FingerprintIndex::index_bytes)
    }
}

impl<G: GraphView> SimRankAlgorithm<G> for FingerprintAlgo {
    fn name(&self) -> String {
        FingerprintAlgo::name(self)
    }

    fn prepare(&mut self, graph: &G) {
        self.index = Some(FingerprintIndex::build(graph, self.config));
    }

    fn single_source(&mut self, graph: &G, u: NodeId) -> Vec<f64> {
        if self.index.is_none() {
            SimRankAlgorithm::<G>::prepare(self, graph);
        }
        self.index
            .as_ref()
            .expect("invariant: index built above")
            .single_source(u)
    }

    fn index_bytes(&self) -> usize {
        FingerprintAlgo::index_bytes(self)
    }
}

/// TopSim-family adapter.
pub struct TopSimAlgo {
    engine: TopSim,
}

impl TopSimAlgo {
    /// Wraps a configured engine.
    pub fn new(config: TopSimConfig) -> Self {
        TopSimAlgo {
            engine: TopSim::new(config),
        }
    }

    /// Display name (inherent so callers need no graph-type annotation).
    pub fn name(&self) -> String {
        self.engine.config().variant.name().to_string()
    }
}

impl<G: GraphView> SimRankAlgorithm<G> for TopSimAlgo {
    fn name(&self) -> String {
        TopSimAlgo::name(self)
    }

    fn single_source(&mut self, graph: &G, u: NodeId) -> Vec<f64> {
        self.engine.single_source(graph, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_baselines::TopSimVariant;
    use probesim_graph::toy::{toy_edges, toy_graph, A, D, TOY_DECAY};
    use probesim_graph::DynamicGraph;

    fn all_toy_algorithms<G: GraphView + Sync>() -> Vec<Box<dyn SimRankAlgorithm<G>>> {
        vec![
            Box::new(ProbeSimAlgo::new(
                ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(1),
            )),
            Box::new(McAlgo::new(MonteCarlo::new(TOY_DECAY, 4000).with_seed(2))),
            Box::new(TsfAlgo::new(TsfConfig {
                decay: TOY_DECAY,
                rg: 200,
                rq: 10,
                depth: 8,
                seed: 3,
            })),
            Box::new(TopSimAlgo::new(TopSimConfig {
                decay: TOY_DECAY,
                depth: 4,
                variant: TopSimVariant::Exact,
            })),
            Box::new(TopSimAlgo::new(TopSimConfig {
                decay: TOY_DECAY,
                depth: 4,
                variant: TopSimVariant::paper_truncated(),
            })),
            Box::new(TopSimAlgo::new(TopSimConfig {
                decay: TOY_DECAY,
                depth: 4,
                variant: TopSimVariant::paper_priority(),
            })),
            Box::new(FingerprintAlgo::new(FingerprintConfig {
                decay: TOY_DECAY,
                num_walks: 4000,
                max_walk_nodes: 64,
                seed: 5,
            })),
        ]
    }

    #[test]
    fn every_algorithm_ranks_d_first_on_toy_graph() {
        let g = toy_graph();
        for mut algo in all_toy_algorithms() {
            algo.prepare(&g);
            let top = algo.top_k(&g, A, 1);
            assert_eq!(top[0].0, D, "{} ranked {:?} first", algo.name(), top[0]);
        }
    }

    #[test]
    fn every_algorithm_runs_on_a_dynamic_graph() {
        // The same roster, driven against a live DynamicGraph instead of a
        // CSR snapshot — the trait's graph-generality in one test.
        let g = DynamicGraph::from_edges(8, &toy_edges());
        for mut algo in all_toy_algorithms::<DynamicGraph>() {
            algo.prepare(&g);
            let top = algo.top_k(&g, A, 1);
            assert_eq!(top[0].0, D, "{} on DynamicGraph: {:?}", algo.name(), top[0]);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = all_toy_algorithms::<CsrGraph>()
            .iter()
            .map(|a| a.name())
            .collect();
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "{names:?}");
    }

    #[test]
    fn only_indexed_methods_report_index_space() {
        let g = toy_graph();
        for mut algo in all_toy_algorithms() {
            algo.prepare(&g);
            let bytes = algo.index_bytes();
            let indexed = algo.name().starts_with("TSF") || algo.name().starts_with("Fingerprint");
            if indexed {
                assert!(bytes > 0, "{} must report index space", algo.name());
            } else {
                assert_eq!(bytes, 0, "{} should be index-free", algo.name());
            }
        }
    }

    #[test]
    fn tsf_lazily_builds_when_prepare_was_skipped() {
        let g = toy_graph();
        let mut tsf = TsfAlgo::new(TsfConfig {
            decay: TOY_DECAY,
            rg: 10,
            rq: 2,
            depth: 5,
            seed: 4,
        });
        let scores = tsf.single_source(&g, A);
        assert_eq!(scores.len(), 8);
        assert!(tsf.index_bytes() > 0);
    }
}
