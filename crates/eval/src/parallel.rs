//! Parallel query execution for experiment sweeps.
//!
//! A figure regeneration runs hundreds of independent `(algorithm, query)`
//! cells; [`run_queries`] fans the per-query work of one algorithm out
//! over a small pool of scoped threads (`std::thread::scope` — no
//! `'static` bounds needed, so the graph is borrowed, not cloned) and
//! returns the per-query results in input order.
//!
//! Per-query wall-clock numbers remain meaningful because each query is
//! timed inside its worker; only the *sweep* is parallel, never one query.
//!
//! The claim-counter pool itself lives in [`probesim_core::par`] — the
//! same primitive backs `ProbeSim::par_batch`, which additionally reuses
//! a per-thread `QuerySession` so worker-local scratch memory is
//! allocated once per thread instead of once per query.

use probesim_graph::{GraphView, NodeId};

/// Runs `f(query)` for every query node on `threads` worker threads,
/// returning results in the order of `queries`.
///
/// `f` must be `Sync` (it is shared across workers) — engines with
/// interior mutability should wrap state accordingly; the stateless
/// ProbeSim/TopSim engines qualify as-is. Thin wrapper over
/// [`probesim_core::par::ordered_map_with`], the workspace's one
/// work-stealing fan-out primitive.
pub fn run_queries<T, F>(queries: &[NodeId], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(NodeId) -> T + Sync,
{
    probesim_core::par::ordered_map_with(queries.len(), threads, || (), |_, i| f(queries[i]))
}

/// [`run_queries`] in **owned-handle** mode: each worker thread receives
/// its own clone of `graph` and passes it to `f` alongside the query
/// node.
///
/// The intended graph type is `probesim_graph::GraphSnapshot`, whose
/// clone is one `Arc` bump — every worker then reads a version-pinned,
/// immutable view, so an experiment sweep stays consistent even when the
/// `GraphStore` that published the snapshot keeps taking updates on
/// another thread. Any `GraphView + Clone` works (a `CsrGraph` clone is
/// a deep copy; prefer the borrowed [`run_queries`] there).
pub fn run_queries_owned<G, T, F>(graph: &G, queries: &[NodeId], threads: usize, f: F) -> Vec<T>
where
    G: GraphView + Clone + Send + Sync,
    T: Send,
    F: Fn(&G, NodeId) -> T + Sync,
{
    probesim_core::par::ordered_map_with(
        queries.len(),
        threads,
        || graph.clone(),
        |g, i| f(g, queries[i]),
    )
}

/// A suggested worker count: the machine's parallelism, capped at 8 (the
/// experiment binaries are memory-bandwidth-bound well before that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroundTruth;
    use probesim_core::{ProbeSim, ProbeSimConfig};
    use probesim_graph::toy::{toy_graph, TOY_DECAY};

    #[test]
    fn preserves_input_order() {
        let queries: Vec<NodeId> = (0..50).collect();
        let out = run_queries(&queries, 4, |u| u * 2);
        assert_eq!(out, queries.iter().map(|&u| u * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path_matches_parallel() {
        let queries: Vec<NodeId> = (0..20).collect();
        let serial = run_queries(&queries, 1, |u| u + 1);
        let parallel = run_queries(&queries, 4, |u| u + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_queries_is_fine() {
        let out: Vec<u32> = run_queries(&[], 4, |u| u);
        assert!(out.is_empty());
    }

    #[test]
    fn probesim_results_identical_serial_and_parallel() {
        // The engine derives per-query RNG seeds, so execution order must
        // not change any estimate.
        let g = toy_graph();
        let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.1, 0.01).with_seed(3));
        let queries: Vec<NodeId> = (0..8).collect();
        let serial = run_queries(&queries, 1, |u| engine.single_source(&g, u).scores);
        let parallel = run_queries(&queries, 4, |u| engine.single_source(&g, u).scores);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_ground_truth_comparison_works() {
        // End-to-end sanity: parallel sweep + shared oracle borrow.
        let g = toy_graph();
        let truth = GroundTruth::compute(&g, TOY_DECAY);
        let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.1, 0.01).with_seed(5));
        let queries: Vec<NodeId> = (0..8).collect();
        let errors = run_queries(&queries, 2, |u| {
            let est = engine.single_source(&g, u);
            crate::metrics::abs_error(truth.single_source(u), &est.scores, u)
        });
        assert!(errors.iter().all(|&e| e <= 0.1 * 1.3));
    }

    #[test]
    fn owned_snapshot_sweep_matches_borrowed_csr_sweep() {
        use probesim_core::Query;
        use probesim_graph::GraphStore;
        // The runner accepts snapshots: every worker owns a version-pinned
        // clone, and the sweep is bit-identical to the borrowed-CSR path.
        let g = toy_graph();
        let store = GraphStore::from_view(&g);
        let snapshot = store.snapshot();
        let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.1, 0.01).with_seed(9));
        let queries: Vec<NodeId> = (0..8).collect();
        let borrowed = run_queries(&queries, 4, |u| {
            engine
                .session(&g)
                .run(Query::SingleSource { node: u })
                .unwrap()
                .scores
        });
        let owned = run_queries_owned(&snapshot, &queries, 4, |snap, u| {
            engine
                .session(snap.clone())
                .run(Query::SingleSource { node: u })
                .unwrap()
                .scores
        });
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn default_threads_is_positive() {
        let t = default_threads();
        assert!((1..=8).contains(&t));
    }
}
