#![warn(missing_docs)]
//! # probesim-eval
//!
//! The evaluation harness for the ProbeSim reproduction: everything
//! Section 6 of the paper needs that is not itself a SimRank algorithm.
//!
//! * [`metrics`] — AbsError, Precision@k, NDCG@k, Kendall τk, using the
//!   paper's exact formulas.
//! * [`groundtruth`] — exact SimRank oracle (Power Method) for the
//!   small-graph experiments.
//! * [`pooling`] — IR-style pooling with a Monte Carlo "expert" for the
//!   large-graph experiments.
//! * [`queries`] — query-node sampling (uniform over nonzero in-degree).
//! * [`algorithms`] — one trait, [`algorithms::SimRankAlgorithm`], adapting
//!   ProbeSim, MC, TSF and the TopSim family so a harness loop can sweep
//!   them uniformly.
//! * [`parallel`] — scoped-thread fan-out for query sweeps.
//! * [`runner`] — timing, aggregation and table-formatting helpers.

pub mod algorithms;
pub mod groundtruth;
pub mod metrics;
pub mod parallel;
pub mod pooling;
pub mod queries;
pub mod runner;

pub use algorithms::{
    FingerprintAlgo, McAlgo, ProbeSimAlgo, SimRankAlgorithm, TopSimAlgo, TsfAlgo,
};
pub use groundtruth::GroundTruth;
pub use parallel::{run_queries, run_queries_owned};
pub use pooling::Pool;
pub use queries::{sample_query_nodes, ZipfRanks};
pub use runner::{human_bytes, human_secs, timed, Aggregate};
