//! Query-workload generation.
//!
//! The paper's protocol: "we select 100 nodes uniformly at random from
//! those with nonzero in-degrees" (20 on the large graphs). Nodes with no
//! in-edges have `s(u, v) = 0` for every `v`, so querying them is
//! uninteresting; the nonzero-in-degree restriction is what makes the
//! accuracy numbers meaningful.

use probesim_graph::{GraphView, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `count` distinct query nodes uniformly from the nodes with
/// nonzero in-degree. Returns fewer when the graph has fewer eligible
/// nodes. Deterministic in `seed`.
pub fn sample_query_nodes<G: GraphView>(graph: &G, count: usize, seed: u64) -> Vec<NodeId> {
    let eligible: Vec<NodeId> = graph.nodes().filter(|&v| graph.has_in_edges(v)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    if eligible.len() <= count {
        return eligible;
    }
    // Partial Fisher–Yates over an index vector.
    let mut pool = eligible;
    for i in 0..count {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::CsrGraph;

    fn fringe_graph() -> CsrGraph {
        // Nodes 0..5 form a cycle (in-degree 1); nodes 5..20 have no
        // in-edges.
        let mut edges: Vec<(u32, u32)> = (0..5u32).map(|i| (i, (i + 1) % 5)).collect();
        edges.extend((5..20u32).map(|i| (i, i % 5)));
        CsrGraph::from_edges(20, &edges)
    }

    #[test]
    fn only_nonzero_in_degree_nodes_are_sampled() {
        let g = fringe_graph();
        let qs = sample_query_nodes(&g, 100, 1);
        assert!(!qs.is_empty());
        for &q in &qs {
            assert!(g.has_in_edges(q), "node {q} has no in-edges");
        }
    }

    #[test]
    fn requesting_more_than_eligible_returns_all() {
        let g = fringe_graph();
        let qs = sample_query_nodes(&g, 1000, 2);
        assert_eq!(qs.len(), 5);
    }

    #[test]
    fn samples_are_distinct_and_deterministic() {
        let g = fringe_graph();
        let a = sample_query_nodes(&g, 3, 42);
        let b = sample_query_nodes(&g, 3, 42);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "duplicates in sample");
    }

    #[test]
    fn different_seeds_vary() {
        let g = fringe_graph();
        let draws: std::collections::HashSet<Vec<u32>> =
            (0..20).map(|s| sample_query_nodes(&g, 3, s)).collect();
        assert!(draws.len() > 1);
    }
}
