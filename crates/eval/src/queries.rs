//! Query-workload generation.
//!
//! The paper's protocol: "we select 100 nodes uniformly at random from
//! those with nonzero in-degrees" (20 on the large graphs). Nodes with no
//! in-edges have `s(u, v) = 0` for every `v`, so querying them is
//! uninteresting; the nonzero-in-degree restriction is what makes the
//! accuracy numbers meaningful.

use probesim_graph::{GraphView, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `count` distinct query nodes uniformly from the nodes with
/// nonzero in-degree. Returns fewer when the graph has fewer eligible
/// nodes. Deterministic in `seed`.
pub fn sample_query_nodes<G: GraphView>(graph: &G, count: usize, seed: u64) -> Vec<NodeId> {
    // Eligibility is a storage-space check, but the sample is drawn in
    // external-id order: a degree-relabeled graph yields exactly the
    // node list its plainly-labeled twin would.
    let eligible: Vec<NodeId> = match graph.node_remap() {
        Some(remap) => (0..graph.num_nodes() as NodeId)
            .filter(|&e| graph.has_in_edges(remap.internal(e)))
            .collect(),
        None => graph.nodes().filter(|&v| graph.has_in_edges(v)).collect(),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    if eligible.len() <= count {
        return eligible;
    }
    // Partial Fisher–Yates over an index vector.
    let mut pool = eligible;
    for i in 0..count {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

/// A Zipf-ish rank sampler over `0..distinct`: rank `r` is drawn with
/// probability proportional to `1/(r+1)` by inverse CDF over the
/// harmonic weights.
///
/// Repeat-heavy query streams (result-cache benchmarks, the
/// `serve-bench` CLI) share this so the skew definition cannot drift
/// between call sites. The draw source is a plain uniform `f64` in
/// `[0, 1)`, so callers bring their own RNG — the seeded `StdRng` shim
/// or a dependency-free bit mixer alike.
#[derive(Debug, Clone)]
pub struct ZipfRanks {
    /// Cumulative (unnormalized) harmonic weights; the last entry is the
    /// total mass.
    cumulative: Vec<f64>,
}

impl ZipfRanks {
    /// A sampler over ranks `0..distinct` (`distinct` is clamped to at
    /// least 1).
    pub fn new(distinct: usize) -> ZipfRanks {
        let mut acc = 0.0;
        let cumulative = (0..distinct.max(1))
            .map(|r| {
                acc += 1.0 / (r + 1) as f64;
                acc
            })
            .collect();
        ZipfRanks { cumulative }
    }

    /// Number of ranks.
    pub fn distinct(&self) -> usize {
        self.cumulative.len()
    }

    /// Maps a uniform draw `unit ∈ [0, 1)` to a rank.
    pub fn rank(&self, unit: f64) -> usize {
        let total = *self
            .cumulative
            .last()
            .expect("invariant: the table holds at least one rank");
        let draw = unit * total;
        self.cumulative.iter().position(|&c| draw <= c).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::CsrGraph;

    fn fringe_graph() -> CsrGraph {
        // Nodes 0..5 form a cycle (in-degree 1); nodes 5..20 have no
        // in-edges.
        let mut edges: Vec<(u32, u32)> = (0..5u32).map(|i| (i, (i + 1) % 5)).collect();
        edges.extend((5..20u32).map(|i| (i, i % 5)));
        CsrGraph::from_edges(20, &edges)
    }

    #[test]
    fn only_nonzero_in_degree_nodes_are_sampled() {
        let g = fringe_graph();
        let qs = sample_query_nodes(&g, 100, 1);
        assert!(!qs.is_empty());
        for &q in &qs {
            assert!(g.has_in_edges(q), "node {q} has no in-edges");
        }
    }

    #[test]
    fn requesting_more_than_eligible_returns_all() {
        let g = fringe_graph();
        let qs = sample_query_nodes(&g, 1000, 2);
        assert_eq!(qs.len(), 5);
    }

    #[test]
    fn samples_are_distinct_and_deterministic() {
        let g = fringe_graph();
        let a = sample_query_nodes(&g, 3, 42);
        let b = sample_query_nodes(&g, 3, 42);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "duplicates in sample");
    }

    #[test]
    fn different_seeds_vary() {
        let g = fringe_graph();
        let draws: std::collections::HashSet<Vec<u32>> =
            (0..20).map(|s| sample_query_nodes(&g, 3, s)).collect();
        assert!(draws.len() > 1);
    }

    #[test]
    fn zipf_ranks_follow_the_harmonic_skew() {
        let zipf = ZipfRanks::new(4);
        assert_eq!(zipf.distinct(), 4);
        // Harmonic CDF over 1, 1/2, 1/3, 1/4 (total 25/12): unit just
        // below each boundary maps to that rank.
        let total = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
        assert_eq!(zipf.rank(0.0), 0);
        assert_eq!(zipf.rank(0.9 / total), 0);
        assert_eq!(zipf.rank(1.1 / total), 1);
        assert_eq!(zipf.rank(1.6 / total), 2);
        assert_eq!(zipf.rank(1.9 / total), 3);
        // Empirically, rank 0 dominates a uniform sweep.
        let counts =
            (0..1000)
                .map(|i| zipf.rank(i as f64 / 1000.0))
                .fold([0usize; 4], |mut acc, r| {
                    acc[r] += 1;
                    acc
                });
        assert!(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]);
        // Degenerate sizes stay usable.
        assert_eq!(ZipfRanks::new(0).distinct(), 1);
        assert_eq!(ZipfRanks::new(1).rank(0.999), 0);
    }
}
