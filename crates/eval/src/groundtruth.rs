//! Ground-truth oracles for the small-graph experiments.
//!
//! On the four small datasets the paper computes exact SimRank with the
//! Power Method (55 iterations) and evaluates every algorithm against it;
//! this module wraps that oracle with the query-side helpers the metric
//! code needs (true top-k lists, score maps).

use probesim_baselines::power::{PowerMethod, SimMatrix};
use probesim_graph::hash::FxHashMap;
use probesim_graph::{GraphView, NodeId};

/// Exact SimRank for a whole graph plus ranking helpers.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    matrix: SimMatrix,
    decay: f64,
}

impl GroundTruth {
    /// Computes ground truth with the paper's 55-iteration Power Method.
    pub fn compute<G: GraphView>(graph: &G, decay: f64) -> Self {
        Self::compute_with_iterations(graph, decay, 55)
    }

    /// Computes ground truth with a custom iteration count (error bound
    /// `c^iterations`).
    pub fn compute_with_iterations<G: GraphView>(graph: &G, decay: f64, iterations: usize) -> Self {
        GroundTruth {
            matrix: PowerMethod::new(decay, iterations).all_pairs(graph),
            decay,
        }
    }

    /// The decay factor the oracle was computed with.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Exact `s(u, v)`.
    pub fn score(&self, u: NodeId, v: NodeId) -> f64 {
        self.matrix.get(u, v)
    }

    /// The exact single-source row `s(u, ·)`.
    pub fn single_source(&self, u: NodeId) -> &[f64] {
        self.matrix.row(u)
    }

    /// The exact top-k list for `u` (descending score, id tie-break).
    pub fn top_k(&self, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        probesim_core::top_k_from_scores(self.matrix.row(u), u, k)
    }

    /// Score lookup map over *all* nodes for query `u`, for the ranking
    /// metrics.
    pub fn score_map(&self, u: NodeId) -> FxHashMap<NodeId, f64> {
        self.matrix
            .row(u)
            .iter()
            .enumerate()
            .map(|(v, &s)| (v as NodeId, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::toy::{toy_graph, A, D, TABLE2, TOY_DECAY};

    #[test]
    fn oracle_matches_table2() {
        let g = toy_graph();
        let gt = GroundTruth::compute(&g, TOY_DECAY);
        for v in 0..8u32 {
            assert!((gt.score(A, v) - TABLE2[v as usize]).abs() < 6e-4);
        }
    }

    #[test]
    fn top_k_is_sorted_and_excludes_query() {
        let g = toy_graph();
        let gt = GroundTruth::compute(&g, TOY_DECAY);
        let top = gt.top_k(A, 3);
        assert_eq!(top[0].0, D);
        assert!(top.iter().all(|&(v, _)| v != A));
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    fn score_map_covers_all_nodes() {
        let g = toy_graph();
        let gt = GroundTruth::compute(&g, TOY_DECAY);
        let map = gt.score_map(A);
        assert_eq!(map.len(), 8);
        assert_eq!(map[&A], 1.0);
    }
}
