//! Pooling-based evaluation for graphs too large for exact ground truth
//! (Section 6.2 of the paper — "the first empirical study that evaluates
//! the effectiveness of SimRank algorithms on graphs with billion edges").
//!
//! Exact SimRank on a large graph is unobtainable, so the paper borrows
//! *pooling* from IR evaluation: merge the top-k answers of all competing
//! algorithms into a candidate pool, have a high-precision "expert" (the
//! single-pair Monte Carlo estimator with error ≤ 1e-4 at 99.999%
//! confidence) score every pooled node, and use the expert's top-k as the
//! ground truth for Precision@k / NDCG@k / τk. The pooled truth is the
//! best answer any of the participating algorithms could have produced.

use probesim_baselines::MonteCarlo;
use probesim_graph::hash::FxHashMap;
use probesim_graph::{CsrGraph, NodeId};

/// The pooled ground truth for one query node.
#[derive(Debug, Clone)]
pub struct Pool {
    /// The query node.
    pub query: NodeId,
    /// Expert scores for every pooled candidate.
    pub expert_scores: FxHashMap<NodeId, f64>,
    /// The expert's top-k over the pool (descending, id tie-break).
    pub truth_top_k: Vec<(NodeId, f64)>,
}

impl Pool {
    /// Builds a pool for `query` from the top-k lists returned by the
    /// participating algorithms, scoring candidates with `expert`.
    pub fn build(
        graph: &CsrGraph,
        query: NodeId,
        candidate_lists: &[Vec<(NodeId, f64)>],
        expert: &MonteCarlo,
        k: usize,
    ) -> Pool {
        let mut pool_nodes: Vec<NodeId> = candidate_lists
            .iter()
            .flat_map(|list| list.iter().map(|&(v, _)| v))
            .filter(|&v| v != query)
            .collect();
        pool_nodes.sort_unstable();
        pool_nodes.dedup();
        // The expert is the dominant cost of pooling (a high-precision MC
        // estimate per candidate); fan it out over the machine's cores.
        let scores =
            crate::parallel::run_queries(&pool_nodes, crate::parallel::default_threads(), |v| {
                expert.pair(graph, query, v)
            });
        let expert_scores: FxHashMap<NodeId, f64> =
            pool_nodes.iter().copied().zip(scores).collect();
        let mut ranked: Vec<(NodeId, f64)> = expert_scores.iter().map(|(&v, &s)| (v, s)).collect();
        ranked.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("invariant: expert scores are never NaN")
                .then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        Pool {
            query,
            expert_scores,
            truth_top_k: ranked,
        }
    }

    /// The truth list as bare node ids (for Precision@k).
    pub fn truth_ids(&self) -> Vec<NodeId> {
        self.truth_top_k.iter().map(|&(v, _)| v).collect()
    }

    /// Number of distinct pooled candidates.
    pub fn pool_size(&self) -> usize {
        self.expert_scores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::toy::{toy_graph, A, D, TABLE2, TOY_DECAY};

    fn expert() -> MonteCarlo {
        MonteCarlo::new(TOY_DECAY, 30_000).with_seed(99)
    }

    #[test]
    fn pool_merges_and_dedups_candidates() {
        let g = toy_graph();
        let lists = vec![vec![(3u32, 0.2), (4, 0.1)], vec![(3u32, 0.15), (5, 0.05)]];
        let pool = Pool::build(&g, A, &lists, &expert(), 3);
        assert_eq!(pool.pool_size(), 3); // {3, 4, 5}
        assert_eq!(pool.truth_top_k.len(), 3);
    }

    #[test]
    fn expert_ranking_matches_ground_truth_on_toy_graph() {
        // Pool everything; the expert's order must match Table 2's order.
        let g = toy_graph();
        let all: Vec<(NodeId, f64)> = (1..8u32).map(|v| (v, 0.0)).collect();
        let pool = Pool::build(&g, A, &[all], &expert(), 3);
        assert_eq!(pool.truth_top_k[0].0, D, "d is the true top-1");
        for &(v, s) in &pool.truth_top_k {
            assert!(
                (s - TABLE2[v as usize]).abs() < 0.01,
                "expert score for {v}: {s} vs {}",
                TABLE2[v as usize]
            );
        }
    }

    #[test]
    fn query_node_is_excluded_from_pool() {
        let g = toy_graph();
        let lists = vec![vec![(A, 1.0), (3u32, 0.2)]];
        let pool = Pool::build(&g, A, &lists, &expert(), 5);
        assert!(!pool.expert_scores.contains_key(&A));
    }

    #[test]
    fn truth_is_sorted_descending() {
        let g = toy_graph();
        let all: Vec<(NodeId, f64)> = (1..8u32).map(|v| (v, 0.0)).collect();
        let pool = Pool::build(&g, A, &[all], &expert(), 7);
        for w in pool.truth_top_k.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
