//! Experiment execution helpers: timing, aggregation, and per-query
//! records the harness binaries serialize into tables.

use std::time::Instant;

/// Times a closure, returning its value and the elapsed seconds.
pub fn timed<T, F: FnOnce() -> T>(f: F) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// Streaming mean/min/max aggregate.
#[derive(Debug, Clone, Copy, Default)]
pub struct Aggregate {
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
}

impl Aggregate {
    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
    }

    /// Observation count.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl FromIterator<f64> for Aggregate {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut agg = Aggregate::default();
        for x in iter {
            agg.push(x);
        }
        agg
    }
}

/// Formats a byte count with binary-prefix units for table output.
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

/// Formats seconds adaptively (µs/ms/s) for table output.
pub fn human_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_value_and_positive_duration() {
        let (v, secs) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(secs >= 0.0);
    }

    #[test]
    fn aggregate_tracks_mean_min_max() {
        let agg = Aggregate::from_iter([2.0, 4.0, 6.0]);
        assert_eq!(agg.count(), 3);
        assert!((agg.mean() - 4.0).abs() < 1e-12);
        assert_eq!(agg.min(), 2.0);
        assert_eq!(agg.max(), 6.0);
    }

    #[test]
    fn empty_aggregate_is_zeroes() {
        let agg = Aggregate::default();
        assert_eq!(agg.mean(), 0.0);
        assert_eq!(agg.min(), 0.0);
        assert_eq!(agg.max(), 0.0);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MiB");
    }

    #[test]
    fn human_secs_units() {
        assert_eq!(human_secs(0.0000005), "0.5 µs");
        assert_eq!(human_secs(0.25), "250.00 ms");
        assert_eq!(human_secs(3.5), "3.50 s");
    }
}
