//! Accuracy metrics, exactly as defined in Section 6.1 of the paper.
//!
//! * **AbsError** — `max_{v ≠ u} |s(u,v) − s̃(u,v)|` for a single-source
//!   answer (Figure 4).
//! * **Precision@k** — `|Vk ∩ V'k| / k`, overlap between the returned
//!   top-k and the true top-k (Figure 5).
//! * **NDCG@k** — `(1/Zk) Σ_i (2^{s(u,v_i)} − 1)/log₂(i+1)` with `Zk` the
//!   DCG of the true top-k (Figure 6).
//! * **Kendall τk** — `(#concordant − #discordant) / (k(k−1)/2)` over the
//!   returned list's pairwise order versus the true scores (Figure 7).

use probesim_graph::hash::FxHashMap;
use probesim_graph::NodeId;

/// Maximum absolute estimation error over all nodes except the query.
pub fn abs_error(truth: &[f64], estimate: &[f64], query: NodeId) -> f64 {
    assert_eq!(truth.len(), estimate.len());
    truth
        .iter()
        .zip(estimate)
        .enumerate()
        .filter(|&(v, _)| v as NodeId != query)
        .map(|(_, (&t, &e))| (t - e).abs())
        .fold(0.0, f64::max)
}

/// Mean absolute estimation error over all nodes except the query
/// (diagnostic; the paper reports the max).
pub fn mean_abs_error(truth: &[f64], estimate: &[f64], query: NodeId) -> f64 {
    assert_eq!(truth.len(), estimate.len());
    let n = truth.len();
    if n <= 1 {
        return 0.0;
    }
    let sum: f64 = truth
        .iter()
        .zip(estimate)
        .enumerate()
        .filter(|&(v, _)| v as NodeId != query)
        .map(|(_, (&t, &e))| (t - e).abs())
        .sum();
    sum / (n - 1) as f64
}

/// `Precision@k = |returned ∩ truth| / k`.
///
/// `k` is taken as the *intended* answer size: when both lists are shorter
/// than `k` (tiny graphs), the divisor shrinks to their common length so a
/// perfect short answer still scores 1.0.
pub fn precision_at_k(returned: &[NodeId], truth: &[NodeId], k: usize) -> f64 {
    assert!(k > 0, "precision@0 is undefined");
    let k_eff = k.min(truth.len().max(1));
    let truth_set: std::collections::HashSet<&NodeId> = truth.iter().take(k_eff).collect();
    let hits = returned
        .iter()
        .take(k)
        .filter(|v| truth_set.contains(v))
        .count();
    hits as f64 / k_eff as f64
}

/// `NDCG@k` with exponential gains `2^s − 1` (the paper's formula), where
/// the relevance of each returned node is its *true* SimRank score looked
/// up in `true_scores`, and the normalizer `Zk` is the DCG of the true
/// top-k list.
///
/// Returns 1.0 when the ideal DCG is zero (no node has positive
/// similarity — every ranking is equally good).
pub fn ndcg_at_k(
    returned: &[(NodeId, f64)],
    truth_top_k: &[(NodeId, f64)],
    true_scores: &FxHashMap<NodeId, f64>,
    k: usize,
) -> f64 {
    let dcg: f64 = returned
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &(v, _))| {
            let rel = true_scores.get(&v).copied().unwrap_or(0.0);
            (2f64.powf(rel) - 1.0) / ((i + 2) as f64).log2()
        })
        .sum();
    let ideal: f64 = truth_top_k
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &(_, s))| (2f64.powf(s) - 1.0) / ((i + 2) as f64).log2())
        .sum();
    if ideal <= 0.0 {
        1.0
    } else {
        (dcg / ideal).min(1.0)
    }
}

/// Kendall tau over the returned ranking: for every pair `(i, j)` with
/// `i < j`, concordant when the true score of position `i` exceeds that of
/// position `j`, discordant when it is lower; ties contribute nothing.
/// Normalized by `k(k−1)/2`. Returns 1.0 for lists shorter than 2.
pub fn kendall_tau(returned: &[NodeId], true_scores: &FxHashMap<NodeId, f64>, k: usize) -> f64 {
    let list: Vec<f64> = returned
        .iter()
        .take(k)
        .map(|v| true_scores.get(v).copied().unwrap_or(0.0))
        .collect();
    let k_eff = list.len();
    if k_eff < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..k_eff {
        for j in (i + 1)..k_eff {
            if list[i] > list[j] {
                concordant += 1;
            } else if list[i] < list[j] {
                discordant += 1;
            }
        }
    }
    let pairs = (k_eff * (k_eff - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Builds the score-lookup map the ranking metrics consume from a list of
/// `(node, true score)` pairs.
pub fn score_map(entries: &[(NodeId, f64)]) -> FxHashMap<NodeId, f64> {
    entries.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_error_ignores_query_node() {
        let truth = vec![1.0, 0.5, 0.2];
        let est = vec![0.0, 0.45, 0.3]; // query slot wildly off, ignored
        assert!((abs_error(&truth, &est, 0) - 0.1).abs() < 1e-12);
        assert!((mean_abs_error(&truth, &est, 0) - 0.075).abs() < 1e-12);
    }

    #[test]
    fn precision_counts_overlap() {
        let returned = vec![1, 2, 3, 4];
        let truth = vec![2, 4, 5, 6];
        assert!((precision_at_k(&returned, &truth, 4) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at_k(&returned, &returned, 4), 1.0);
        assert_eq!(precision_at_k(&returned, &[9, 10], 4), 0.0);
    }

    #[test]
    fn precision_clamps_to_short_truth() {
        // Graph with only 2 candidates: perfect answer scores 1.0 at k=5.
        assert_eq!(precision_at_k(&[1, 2], &[2, 1], 5), 1.0);
    }

    #[test]
    fn ndcg_is_one_for_perfect_ranking() {
        let truth = vec![(1u32, 0.9), (2, 0.5), (3, 0.1)];
        let map = score_map(&truth);
        assert!((ndcg_at_k(&truth, &truth, &map, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalizes_swapped_top() {
        let truth = vec![(1u32, 0.9), (2, 0.5), (3, 0.1)];
        let map = score_map(&truth);
        let swapped = vec![(3u32, 0.9), (2, 0.5), (1, 0.1)];
        let score = ndcg_at_k(&swapped, &truth, &map, 3);
        assert!(score < 1.0 && score > 0.0, "got {score}");
    }

    #[test]
    fn ndcg_degenerate_zero_truth_is_one() {
        let truth = vec![(1u32, 0.0), (2, 0.0)];
        let map = score_map(&truth);
        assert_eq!(ndcg_at_k(&truth, &truth, &map, 2), 1.0);
    }

    #[test]
    fn kendall_tau_extremes() {
        let map = score_map(&[(1u32, 0.9), (2, 0.6), (3, 0.3), (4, 0.1)]);
        assert!((kendall_tau(&[1, 2, 3, 4], &map, 4) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&[4, 3, 2, 1], &map, 4) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_partial_disorder() {
        let map = score_map(&[(1u32, 0.9), (2, 0.6), (3, 0.3)]);
        // (2,1,3): pairs (2,1) discordant, (2,3) concordant, (1,3) concordant.
        let tau = kendall_tau(&[2, 1, 3], &map, 3);
        assert!((tau - (2.0 - 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_ties_are_neutral() {
        let map = score_map(&[(1u32, 0.5), (2, 0.5), (3, 0.1)]);
        let tau = kendall_tau(&[1, 2, 3], &map, 3);
        // (1,2) tie; the other two pairs concordant: (2−0)/3.
        assert!((tau - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_short_lists() {
        let map = score_map(&[(1u32, 0.5)]);
        assert_eq!(kendall_tau(&[1], &map, 5), 1.0);
        assert_eq!(kendall_tau(&[], &map, 5), 1.0);
    }
}
