//! Property tests for the evaluation metrics: range, extremal and
//! invariance laws that must hold for any inputs the harness can produce.

use probesim_eval::metrics::{abs_error, kendall_tau, ndcg_at_k, precision_at_k, score_map};
use probesim_graph::NodeId;
use proptest::prelude::*;

/// A ranked list of (node, score) with distinct nodes.
fn arb_ranking(max_len: usize) -> impl Strategy<Value = Vec<(NodeId, f64)>> {
    prop::collection::vec(0.0f64..1.0, 1..max_len).prop_map(|scores| {
        let mut list: Vec<(NodeId, f64)> = scores
            .into_iter()
            .enumerate()
            .map(|(i, s)| (i as NodeId, s))
            .collect();
        list.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        list
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All four metrics stay in their documented ranges for arbitrary
    /// returned lists vs. arbitrary truths.
    #[test]
    fn metrics_are_in_range(
        truth in arb_ranking(30),
        perm_seed in any::<u64>(),
        k in 1usize..25,
    ) {
        // A deterministic shuffle of the truth as the "returned" list.
        let mut returned = truth.clone();
        let len = returned.len();
        let mut state = perm_seed | 1;
        for i in (1..len).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            returned.swap(i, j);
        }
        let truth_ids: Vec<NodeId> = truth.iter().map(|&(v, _)| v).collect();
        let returned_ids: Vec<NodeId> = returned.iter().map(|&(v, _)| v).collect();
        let map = score_map(&truth);

        let p = precision_at_k(&returned_ids, &truth_ids, k);
        prop_assert!((0.0..=1.0).contains(&p), "precision {p}");
        let n = ndcg_at_k(&returned, &truth, &map, k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&n), "ndcg {n}");
        let t = kendall_tau(&returned_ids, &map, k);
        prop_assert!((-1.0..=1.0).contains(&t), "tau {t}");
    }

    /// The identity ranking achieves the maximum of every metric.
    #[test]
    fn perfect_ranking_maximizes_everything(truth in arb_ranking(25), k in 1usize..20) {
        let ids: Vec<NodeId> = truth.iter().map(|&(v, _)| v).collect();
        let map = score_map(&truth);
        prop_assert_eq!(precision_at_k(&ids, &ids, k), 1.0);
        prop_assert!(ndcg_at_k(&truth, &truth, &map, k) >= 1.0 - 1e-12);
        // Tau is 1 unless there are ties, which only reduce the numerator.
        prop_assert!(kendall_tau(&ids, &map, k) >= 0.0);
    }

    /// AbsError is a max over per-node errors: zero iff vectors agree off
    /// the query slot, and never below any individual error.
    #[test]
    fn abs_error_is_a_max(
        truth in prop::collection::vec(0.0f64..1.0, 2..40),
        noise in prop::collection::vec(-0.2f64..0.2, 2..40),
    ) {
        let len = truth.len().min(noise.len());
        let truth = &truth[..len];
        let estimate: Vec<f64> = truth.iter().zip(&noise[..len]).map(|(t, e)| t + e).collect();
        let query = 0 as NodeId;
        let err = abs_error(truth, &estimate, query);
        for v in 1..len {
            prop_assert!(err + 1e-15 >= (truth[v] - estimate[v]).abs());
        }
        let exact = abs_error(truth, truth, query);
        prop_assert_eq!(exact, 0.0);
    }

    /// Precision is symmetric in its two lists when both have length k.
    #[test]
    fn precision_is_symmetric(
        a in prop::collection::vec(0u32..50, 5..20),
        b in prop::collection::vec(0u32..50, 5..20),
    ) {
        let mut a = a; a.sort_unstable(); a.dedup();
        let mut b = b; b.sort_unstable(); b.dedup();
        let k = a.len().min(b.len());
        prop_assume!(k >= 1);
        let a = &a[..k];
        let b = &b[..k];
        let pab = precision_at_k(a, b, k);
        let pba = precision_at_k(b, a, k);
        prop_assert!((pab - pba).abs() < 1e-12);
    }

    /// Reversing a strictly-decreasing ranking flips tau's sign exactly.
    #[test]
    fn tau_antisymmetric_under_reversal(len in 2usize..30) {
        let truth: Vec<(NodeId, f64)> = (0..len)
            .map(|i| (i as NodeId, 1.0 - i as f64 / len as f64))
            .collect();
        let map = score_map(&truth);
        let forward: Vec<NodeId> = truth.iter().map(|&(v, _)| v).collect();
        let backward: Vec<NodeId> = forward.iter().rev().copied().collect();
        let tf = kendall_tau(&forward, &map, len);
        let tb = kendall_tau(&backward, &map, len);
        prop_assert!((tf - 1.0).abs() < 1e-12);
        prop_assert!((tb + 1.0).abs() < 1e-12);
    }
}
