//! Criterion benchmark: full single-source queries — ProbeSim at several
//! error levels against the baselines, on a small power-law graph. The
//! relative ordering (ProbeSim fast at moderate εa, MC slow, TopSim-SM
//! slowest-but-deterministic) is the paper's headline efficiency result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probesim_baselines::{MonteCarlo, TopSim, TopSimConfig, TopSimVariant, Tsf, TsfConfig};
use probesim_core::{ProbeSim, ProbeSimConfig};
use probesim_datasets::gens;
use probesim_eval::sample_query_nodes;
use std::hint::black_box;

fn bench_single_source(c: &mut Criterion) {
    let graph = gens::chung_lu(5_000, 40_000, 2.3, 42);
    let queries = sample_query_nodes(&graph, 4, 1);
    let mut group = c.benchmark_group("single_source");
    group.sample_size(10);

    for eps in [0.1, 0.05] {
        let engine = ProbeSim::new(ProbeSimConfig::paper(eps).with_seed(3));
        group.bench_with_input(
            BenchmarkId::new("probesim", format!("eps{eps}")),
            &engine,
            |b, engine| {
                b.iter(|| {
                    for &u in &queries {
                        black_box(engine.single_source(&graph, u));
                    }
                });
            },
        );
    }

    let mc = MonteCarlo::new(0.6, 100).with_seed(4);
    group.bench_function("mc_r100", |b| {
        b.iter(|| {
            for &u in &queries {
                black_box(mc.single_source(&graph, u));
            }
        });
    });

    let tsf = Tsf::build(
        &graph,
        TsfConfig {
            decay: 0.6,
            rg: 100,
            rq: 20,
            depth: 10,
            seed: 5,
        },
    );
    group.bench_function("tsf_rg100", |b| {
        b.iter(|| {
            for &u in &queries {
                black_box(tsf.single_source(&graph, u));
            }
        });
    });

    let topsim = TopSim::new(TopSimConfig::paper(TopSimVariant::paper_priority()));
    group.bench_function("prio_topsim", |b| {
        b.iter(|| {
            for &u in &queries {
                black_box(topsim.single_source(&graph, u));
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_single_source);
criterion_main!(benches);
