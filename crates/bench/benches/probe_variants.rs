//! Criterion micro-benchmark: the three PROBE variants on a mid-size
//! power-law graph — the core cost driver of every ProbeSim query.
//!
//! Expected shape (matches Sections 3.3 / 4.3 of the paper): deterministic
//! probe cost grows with the reachable frontier (up to O(m)); randomized is
//! capped near O(n); hybrid tracks deterministic on cheap paths and caps
//! like randomized on expensive ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probesim_core::probe::{self, ProbeParams};
use probesim_core::result::QueryStats;
use probesim_core::walk::sample_walk;
use probesim_core::workspace::ProbeWorkspace;
use probesim_datasets::gens;
use probesim_graph::GraphView;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_probes(c: &mut Criterion) {
    let graph = gens::chung_lu(20_000, 160_000, 2.3, 42);
    let sqrt_c = 0.6f64.sqrt();
    let mut rng = StdRng::seed_from_u64(7);
    // A fixed bundle of representative walks (length >= 3 preferred).
    let mut walks: Vec<Vec<u32>> = Vec::new();
    let queries: Vec<u32> = graph
        .nodes()
        .filter(|&v| graph.has_in_edges(v))
        .take(64)
        .collect();
    for &u in &queries {
        let w = sample_walk(&graph, u, sqrt_c, 8, &mut rng);
        if w.len() >= 3 {
            walks.push(w);
        }
        if walks.len() == 16 {
            break;
        }
    }
    assert!(!walks.is_empty());
    let n = graph.num_nodes();
    let params_pruned = ProbeParams {
        sqrt_c,
        epsilon_p: 0.002,
    };
    let params_exact = ProbeParams {
        sqrt_c,
        epsilon_p: 0.0,
    };

    let mut group = c.benchmark_group("probe");
    group.sample_size(20);
    for (label, params) in [("exact", params_exact), ("pruned", params_pruned)] {
        group.bench_with_input(
            BenchmarkId::new("deterministic", label),
            &params,
            |b, params| {
                let mut ws = ProbeWorkspace::new(n);
                let mut acc = vec![0.0f64; n];
                let mut stats = QueryStats::default();
                b.iter(|| {
                    for w in &walks {
                        probe::deterministic(
                            &graph,
                            black_box(w),
                            params,
                            1.0,
                            &mut ws,
                            &mut acc,
                            &mut stats,
                        )
                        .unwrap();
                    }
                });
            },
        );
    }
    group.bench_function("randomized", |b| {
        let mut ws = ProbeWorkspace::new(n);
        let mut acc = vec![0.0f64; n];
        let mut stats = QueryStats::default();
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| {
            for w in &walks {
                probe::randomized(
                    &graph,
                    black_box(w),
                    &params_exact,
                    1.0,
                    &mut ws,
                    &mut acc,
                    &mut stats,
                    &mut rng,
                )
                .unwrap();
            }
        });
    });
    group.bench_function("hybrid", |b| {
        let mut ws = ProbeWorkspace::new(n);
        let mut acc = vec![0.0f64; n];
        let mut stats = QueryStats::default();
        let mut rng = StdRng::seed_from_u64(13);
        b.iter(|| {
            for w in &walks {
                probe::hybrid(
                    &graph,
                    black_box(w),
                    &params_pruned,
                    1.0,
                    1,
                    0.5,
                    &mut ws,
                    &mut acc,
                    &mut stats,
                    &mut rng,
                )
                .unwrap();
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_probes);
criterion_main!(benches);
