//! Criterion benchmark: √c-walk sampling throughput and the
//! reverse-reachability trie (Algorithm 3's batching structure).
//!
//! The interesting number is the trie's compression ratio: how many
//! distinct prefixes `nr` walks collapse into — that ratio is exactly the
//! probe-count saving of the batch algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use probesim_core::walk::sample_walk;
use probesim_core::WalkTrie;
use probesim_datasets::gens;
use probesim_eval::sample_query_nodes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_walks_and_trie(c: &mut Criterion) {
    let graph = gens::preferential_attachment(10_000, 8, true, 21);
    let sqrt_c = 0.6f64.sqrt();
    let u = sample_query_nodes(&graph, 1, 2)[0];

    let mut group = c.benchmark_group("walks");
    group.sample_size(20);
    group.bench_function("sample_1000_walks", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            for _ in 0..1000 {
                black_box(sample_walk(&graph, u, sqrt_c, 16, &mut rng));
            }
        });
    });

    group.bench_function("trie_insert_1000_walks", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let walks: Vec<Vec<u32>> = (0..1000)
            .map(|_| sample_walk(&graph, u, sqrt_c, 16, &mut rng))
            .collect();
        b.iter(|| {
            let mut trie = WalkTrie::new(u);
            for w in &walks {
                trie.insert(black_box(w));
            }
            black_box(trie.len())
        });
    });

    group.bench_function("trie_traverse", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut trie = WalkTrie::new(u);
        for _ in 0..1000 {
            trie.insert(&sample_walk(&graph, u, sqrt_c, 16, &mut rng));
        }
        b.iter(|| {
            let mut count = 0usize;
            trie.for_each_prefix(|path, w| {
                count += path.len() + w as usize;
            });
            black_box(count)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_walks_and_trie);
criterion_main!(benches);
