//! Criterion benchmark: the cost of keeping each method consistent with a
//! dynamic graph — the paper's central motivation.
//!
//! Measured per engine:
//!
//! * **ProbeSim** — nothing to maintain; the "update cost" is exactly the
//!   graph mutation itself.
//! * **TSF** — index build, plus the incremental one-way-graph
//!   maintenance for a batch of edge insertions.
//! * **Fingerprint** — index build (no incremental story exists: stored
//!   walks through a changed region are invalidated wholesale, which is
//!   why the paper calls precomputed-walk indexes unfit for dynamic
//!   graphs; we bench the rebuild).

use criterion::{criterion_group, criterion_main, Criterion};
use probesim_baselines::{FingerprintConfig, FingerprintIndex, Tsf, TsfConfig};
use probesim_datasets::gens;
use probesim_graph::{DynamicGraph, GraphView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_index_maintenance(c: &mut Criterion) {
    let base = gens::chung_lu(10_000, 80_000, 2.3, 42);
    let tsf_config = TsfConfig {
        decay: 0.6,
        rg: 100,
        rq: 20,
        depth: 10,
        seed: 7,
    };
    let fp_config = FingerprintConfig {
        decay: 0.6,
        num_walks: 50,
        max_walk_nodes: 32,
        seed: 7,
    };

    let mut group = c.benchmark_group("index_maintenance");
    group.sample_size(10);

    group.bench_function("tsf_build", |b| {
        b.iter(|| black_box(Tsf::build(&base, tsf_config)));
    });

    group.bench_function("fingerprint_build", |b| {
        b.iter(|| black_box(FingerprintIndex::build(&base, fp_config)));
    });

    // 1000 edge insertions: graph mutation only (= ProbeSim's total
    // update cost) vs. graph mutation + TSF index maintenance.
    let updates: Vec<(u32, u32)> = {
        let mut rng = StdRng::seed_from_u64(11);
        (0..1000)
            .map(|_| {
                let u = rng.gen_range(0..base.num_nodes() as u32);
                let v = rng.gen_range(0..base.num_nodes() as u32);
                (u, v)
            })
            .filter(|&(u, v)| u != v)
            .collect()
    };

    group.bench_function("probesim_1000_updates", |b| {
        b.iter(|| {
            let mut g = DynamicGraph::from_edges(base.num_nodes(), &base.edges());
            for &(u, v) in &updates {
                g.insert_edge(u, v);
            }
            black_box(g.num_edges())
        });
    });

    group.bench_function("tsf_1000_updates", |b| {
        b.iter(|| {
            let mut g = DynamicGraph::from_edges(base.num_nodes(), &base.edges());
            let mut tsf = Tsf::build(&g, tsf_config);
            let mut rng = StdRng::seed_from_u64(13);
            for &(u, v) in &updates {
                if g.insert_edge(u, v) {
                    tsf.on_edge_inserted(&g, u, v, &mut rng);
                }
            }
            black_box(tsf.index_bytes())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_index_maintenance);
criterion_main!(benches);
