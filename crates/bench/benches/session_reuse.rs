//! Criterion benchmark for the session API's two headline claims:
//!
//! 1. **Pooled scratch beats per-query allocation.** A reused
//!    `QuerySession` answers a query stream without reallocating its
//!    `O(n)` workspace; the dense reference path re-allocates workspace +
//!    accumulator on every call. Measured at n ∈ {10k, 100k}; the gap
//!    widens with n because the allocation + page-touch cost is O(n)
//!    while the query itself is output-sensitive.
//! 2. **`par_batch` scales.** The same query batch on a power-law graph,
//!    sequential session vs. parallel per-thread sessions.
//!
//! ```text
//! cargo bench -p probesim-bench --bench session_reuse
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probesim_core::{ProbeSim, ProbeSimConfig, Query};
use probesim_datasets::gens;
use probesim_eval::sample_query_nodes;
use std::hint::black_box;

/// Paper configuration at εa = 0.1 with a fixed walk budget so the two
/// arms do identical algorithmic work and differ only in memory strategy.
/// `walks = 16` is the allocation-bound service regime the session API
/// targets (few walks, small touched set, huge graph); `walks = 200` is
/// a moderate-accuracy regime where the traversal itself dominates.
fn engine(seed: u64, walks: usize) -> ProbeSim {
    ProbeSim::new(
        ProbeSimConfig::paper(0.1)
            .with_seed(seed)
            .with_num_walks(walks),
    )
}

fn bench_session_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_reuse");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let graph = gens::chung_lu(n, n * 8, 2.3, 42);
        let queries = sample_query_nodes(&graph, 8, 1);
        for &walks in &[16usize, 200] {
            let engine = engine(3, walks);

            group.bench_with_input(
                BenchmarkId::new(format!("pooled_session_w{walks}"), n),
                &graph,
                |b, graph| {
                    // One session for the whole stream: scratch allocated
                    // once, reset in O(touched) between queries.
                    let mut session = engine.session(graph);
                    b.iter(|| {
                        for &u in &queries {
                            black_box(
                                session
                                    .run(Query::SingleSource { node: u })
                                    .expect("sampled queries are valid"),
                            );
                        }
                    });
                },
            );

            group.bench_with_input(
                BenchmarkId::new(format!("fresh_alloc_per_query_w{walks}"), n),
                &graph,
                |b, graph| {
                    b.iter(|| {
                        for &u in &queries {
                            // The legacy path: fresh O(n) workspace +
                            // dense accumulator per call.
                            black_box(engine.single_source_dense_reference(graph, u));
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_par_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_batch");
    group.sample_size(10);
    let n = 50_000;
    let graph = gens::chung_lu(n, n * 8, 2.3, 7);
    let engine = engine(5, 200);
    let queries: Vec<Query> = sample_query_nodes(&graph, 32, 2)
        .into_iter()
        .map(|node| Query::SingleSource { node })
        .collect();
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        engine
                            .par_batch(&graph, &queries, threads)
                            .expect("sampled queries are valid"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_session_reuse, bench_par_batch);
criterion_main!(benches);
