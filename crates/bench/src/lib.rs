#![warn(missing_docs)]
//! # probesim-bench
//!
//! Benchmark harness: the workload **scenario engine** behind the
//! `probesim-bench` runner, plus one experiment-regeneration binary per
//! table and figure of the paper's evaluation (Section 6) and Criterion
//! micro-benchmarks.
//!
//! ## The scenario engine
//!
//! * [`scenario`] — named, seeded, self-describing workloads covering
//!   static queries, batch execution, session reuse, update-interleaved
//!   and concurrent streams on the versioned `GraphStore`, and the
//!   `QueryService` serving facade (mixed-priority deadline mix, result
//!   cache repeats); shared timing primitives ([`scenario::Latencies`],
//!   [`scenario::time_per_item`]) used by every binary in this crate.
//! * [`report`] — dependency-free JSON serialization of scenario results
//!   (`BENCH_<scenario>.json`), baseline files, and the regression
//!   comparator the CI `perf-smoke` job gates on.
//! * [`cli`] — the `probesim-bench` driver (`--list`, `--out`,
//!   `--compare`, `--write-baseline`).
//!
//! ## Paper-reproduction binaries
//!
//! | Paper artifact | Binary | What it prints |
//! |---|---|---|
//! | Table 2 | `table2_toy` | exact + estimated `s(a, ·)` on the Figure 1 toy graph |
//! | Figure 4 | `fig4_abs_error` | AbsError vs. avg query time, 4 small graphs × 6+ algorithm points |
//! | Figures 5–7 | `fig5_7_topk_small` | Precision@k / NDCG@k / τk vs. query time on the small graphs |
//! | Table 4 | `table4_large` | avg query time and index space on the large graphs |
//! | Figures 8–10 | `fig8_10_pooling` | pooled Precision@k / NDCG@k / τk on the large graphs |
//! | (ours) | `ablation_opts` | effect of each Section 4 optimization |
//!
//! All binaries accept:
//!
//! ```text
//! --scale ci|laptop       dataset scale (default: ci for a fast run)
//! --queries N             query nodes per dataset
//! --k N                   top-k size (default 50, the paper's setting)
//! --seed N                RNG seed
//! --datasets a,b,c        restrict to named datasets (paper names)
//! ```

pub mod cli;
pub mod report;
pub mod scenario;

pub use report::{compare, CompareThresholds, Json, ScenarioReport, Verdict};
pub use scenario::{catalog, run_scenario, time_per_item, Latencies, ScenarioSpec};

use probesim_datasets::{Dataset, Scale};
use probesim_eval::runner::timed;
use probesim_graph::{CsrGraph, DegreeStats, GraphView};

/// Parsed command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dataset scale.
    pub scale: Scale,
    /// Query nodes per dataset.
    pub queries: usize,
    /// Top-k size.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
    /// Datasets to run (None = the binary's default set).
    pub datasets: Option<Vec<Dataset>>,
    /// Memory budget for index-based methods; indexes whose estimated
    /// footprint exceeds it are reported as `N/A`, mirroring the paper's
    /// out-of-memory entries.
    pub mem_budget_bytes: usize,
}

impl HarnessArgs {
    /// Parses `std::env::args`, with a binary-specific default query count.
    pub fn parse(default_queries: usize) -> Self {
        let mut args = HarnessArgs {
            scale: Scale::Ci,
            queries: default_queries,
            k: 50,
            seed: 2017,
            datasets: None,
            mem_budget_bytes: 8 << 30,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            let flag = argv[i].as_str();
            let value = argv.get(i + 1);
            match flag {
                "--scale" => {
                    args.scale = match value.map(String::as_str) {
                        Some("ci") => Scale::Ci,
                        Some("laptop") => Scale::Laptop,
                        Some("paper") => Scale::Paper,
                        other => panic!("--scale expects ci|laptop|paper, got {other:?}"),
                    };
                    i += 2;
                }
                "--queries" => {
                    args.queries = value
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--queries expects a number"));
                    i += 2;
                }
                "--k" => {
                    args.k = value
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--k expects a number"));
                    i += 2;
                }
                "--seed" => {
                    args.seed = value
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed expects a number"));
                    i += 2;
                }
                "--datasets" => {
                    let list = value.unwrap_or_else(|| panic!("--datasets expects names"));
                    args.datasets = Some(
                        list.split(',')
                            .map(|name| {
                                Dataset::parse(name)
                                    .unwrap_or_else(|| panic!("unknown dataset {name:?}"))
                            })
                            .collect(),
                    );
                    i += 2;
                }
                "--mem-budget-gb" => {
                    let gb: usize = value
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--mem-budget-gb expects a number"));
                    args.mem_budget_bytes = gb << 30;
                    i += 2;
                }
                other => panic!("unknown flag {other:?} (see crate docs for usage)"),
            }
        }
        args
    }

    /// The dataset list to run: the explicit `--datasets` selection or the
    /// given default.
    pub fn datasets_or(&self, default: &[Dataset]) -> Vec<Dataset> {
        self.datasets.clone().unwrap_or_else(|| default.to_vec())
    }

    /// Scale name for table headers.
    pub fn scale_name(&self) -> &'static str {
        match self.scale {
            Scale::Ci => "ci",
            Scale::Laptop => "laptop",
            Scale::Paper => "paper",
        }
    }
}

/// Generates a dataset, printing its vitals (Table 3-style line).
// Progress line from dataset generation; every caller is a CLI target.
#[allow(clippy::print_stdout)]
pub fn load_dataset(dataset: Dataset, scale: Scale) -> CsrGraph {
    let (graph, secs) = timed(|| dataset.generate(scale));
    let stats = DegreeStats::compute(&graph);
    println!(
        "## dataset {}: n={} m={} mean_deg={:.1} max_in={} zero_in={:.0}% gini={:.2} (generated in {:.1}s)",
        dataset.name(),
        graph.num_nodes(),
        graph.num_edges(),
        stats.mean_degree,
        stats.max_in_degree,
        100.0 * stats.zero_in_degree as f64 / graph.num_nodes().max(1) as f64,
        stats.in_degree_gini,
        secs
    );
    graph
}

/// Prints a table row with fixed-width columns.
// Table rendering for the bench binaries; stdout is the report medium.
#[allow(clippy::print_stdout)]
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, &w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:<w$}  "));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_or_prefers_explicit_selection() {
        let mut args = HarnessArgs {
            scale: Scale::Ci,
            queries: 5,
            k: 50,
            seed: 1,
            datasets: None,
            mem_budget_bytes: 1 << 30,
        };
        assert_eq!(args.datasets_or(&Dataset::SMALL), Dataset::SMALL.to_vec());
        args.datasets = Some(vec![Dataset::As]);
        assert_eq!(args.datasets_or(&Dataset::SMALL), vec![Dataset::As]);
    }

    #[test]
    fn load_dataset_produces_nonempty_graph() {
        let g = load_dataset(Dataset::HepTh, Scale::Ci);
        assert!(g.num_nodes() > 0 && g.num_edges() > 0);
    }
}
