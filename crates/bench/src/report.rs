//! Machine-readable benchmark reports and the regression comparator.
//!
//! The scenario engine ([`crate::scenario`]) measures; this module
//! serializes. Each scenario run becomes a [`ScenarioReport`] written to
//! `BENCH_<scenario>.json`, and a set of runs becomes a combined baseline
//! file (`bench/baseline.json` in the repo) that `probesim-bench
//! --compare` diffs against. The comparator is what the CI `perf-smoke`
//! job gates on.
//!
//! Everything here is dependency-free: [`Json`] is a small ordered JSON
//! value type with a `Display` writer and a recursive-descent parser —
//! enough for the fixed report schema, not a general-purpose JSON crate.
//!
//! ## Report schema (`schema_version` 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "scenario": "dynamic_churn_balanced",
//!   "description": "...",
//!   "kind": "dynamic",
//!   "seed": 2017,
//!   "scale": "ci",
//!   "graph": {"dataset": "...", "nodes": 123, "edges": 456},
//!   "config": {"epsilon": 0.1, "delta": 0.01, "decay": 0.6},
//!   "workload": {"queries": 32, "updates": 320, "work_deterministic": true},
//!   "query_latency_secs": {"count": 32, "median": ..., "p95": ..., "mean": ..., "min": ..., "max": ...},
//!   "update_latency_secs": {...},            // dynamic scenarios only
//!   "query_stats": {"walks": ..., ...},      // QueryStats::fields()
//!   "total_work": 123456
//! }
//! ```
//!
//! ## Regression verdicts
//!
//! Three signals, compared per scenario by name:
//!
//! * **median query latency** — gated with a *generous* threshold
//!   (default 1.0 = fail beyond 2× the baseline), because wall-clock
//!   medians move across runner generations;
//! * **median update latency** (dynamic scenarios) — same threshold,
//!   plus a 2 µs noise floor: sub-microsecond update medians sit at
//!   timer resolution, so only regressions into measurable territory
//!   fail the gate (a real `insert_edge` slowdown clears the floor by
//!   orders of magnitude);
//! * **total work** ([`probesim_core::QueryStats::total_work`]) — gated
//!   tightly (default 0.10), because the counter is deterministic given
//!   seed + scenario and only moves when the algorithm does more work.
//!   Skipped when either side reports `work_deterministic: false` (the
//!   concurrent store scenarios, whose per-query work depends on which
//!   snapshot version a racing reader happens to see).

use std::fmt;

use crate::scenario::{Latencies, ScenarioResult};

/// An ordered JSON value: the writer preserves insertion order so report
/// files are schema-stable and diff-friendly.
///
/// Numbers come in two flavors: [`Json::UInt`] for exact unsigned
/// integers (counters, seeds — a `u64` seed must survive serialization
/// bit-exactly, which `f64` cannot guarantee past 2^53) and [`Json::Num`]
/// for everything else. Equality treats them as one numeric domain, the
/// way JSON itself does.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An exact unsigned integer (the parser produces this for any
    /// unsigned digits-only literal that fits `u64`).
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::UInt(a), Json::UInt(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            // Mixed numeric forms compare numerically: `7` == `7.0`.
            (Json::UInt(a), Json::Num(b)) | (Json::Num(b), Json::UInt(a)) => *a as f64 == *b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Exact-integer constructor for `usize` counters.
    pub fn uint(value: usize) -> Json {
        Json::UInt(value as u64)
    }

    /// Member lookup on an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The numeric value, if this is a number (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(x) => Some(x),
            Json::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The exact unsigned-integer value: [`Json::UInt`] directly, or a
    /// [`Json::Num`] that is a non-negative integer small enough
    /// (≤ 2^53) to be exact.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Num(x) if x >= 0.0 && x.fract() == 0.0 && x <= 9_007_199_254_740_992.0 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document. Errors carry the byte offset of the
    /// problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Num(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    // JSON has no Infinity/NaN; reports never produce them,
                    // but a writer must not emit invalid documents.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_json_string(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_json_string(f, key)?;
                    write!(f, ": {value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A JSON parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {literal:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_literal("null").map(|()| Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Reports only escape control characters (BMP,
                            // non-surrogate); reject surrogate pairs rather
                            // than mis-decode them.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("surrogate \\u escape unsupported"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Continue a UTF-8 sequence: find its end and push the
                    // whole char.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("invariant: number lexemes are ASCII");
        // Unsigned digits-only literals stay exact (u64); everything else
        // goes through f64.
        if text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Version stamp written into every report; bump when the schema changes
/// shape incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// One scenario run, serialized. Built by
/// [`ScenarioReport::from_result`], written with
/// [`ScenarioReport::to_json`], and re-read (for `--compare`) with
/// [`ScenarioReport::from_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (the comparator's join key).
    pub scenario: String,
    /// Human-readable description of the workload.
    pub description: String,
    /// "static", "dynamic", "concurrent", "service" or "fleet" (see
    /// `ScenarioSpec::kind_name`).
    pub kind: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// Dataset scale name ("ci" / "laptop" / "paper").
    pub scale: String,
    /// Dataset or generator name.
    pub dataset: String,
    /// Node count of the benchmarked graph.
    pub nodes: usize,
    /// Edge count of the benchmarked graph (at scenario start for dynamic
    /// workloads).
    pub edges: usize,
    /// Deterministic hash of the final edge list (dynamic scenarios
    /// only): baseline and current runs with the same seed must agree,
    /// or they did not replay the same workload.
    pub final_state_hash: Option<u64>,
    /// Engine accuracy parameter εa.
    pub epsilon: f64,
    /// Queries executed.
    pub queries: usize,
    /// Updates applied (0 for static scenarios).
    pub updates: usize,
    /// Per-query wall-clock latencies.
    pub query_latency: LatencySummary,
    /// Per-update wall-clock latencies (dynamic scenarios only).
    pub update_latency: Option<LatencySummary>,
    /// Merged `QueryStats` counters as `(name, value)` pairs.
    pub query_stats: Vec<(&'static str, usize)>,
    /// [`probesim_core::QueryStats::total_work`] over the whole run — the
    /// deterministic regression signal.
    pub total_work: usize,
    /// Whether `total_work` is a pure function of `(scenario, scale,
    /// seed)`. False for concurrent store scenarios (which snapshot
    /// version a reader sees is timing-dependent), where the comparator
    /// gates latency and workload identity but not work.
    pub work_deterministic: bool,
    /// Distinct snapshot versions served to readers (concurrent store
    /// scenarios only).
    pub versions_observed: Option<u64>,
    /// Responses served from the result cache (service scenarios only;
    /// informational).
    pub cache_hits: Option<u64>,
    /// Cache hit rate over the stream. Present only when deterministic
    /// given the seed (the sequential cache-repeat scenario) — the
    /// comparator then gates it tightly: a current rate below the
    /// baseline fails.
    pub cache_hit_rate: Option<f64>,
    /// Requests aborted by their deadline (service scenarios only;
    /// informational — wall-clock dependent).
    pub deadline_exceeded: Option<u64>,
    /// Supervisor recoveries — checkpoint + genesis respawns (chaos
    /// fleet scenario only; informational).
    pub recoveries: Option<u64>,
    /// Replica respawns recorded by the registry (chaos fleet scenario
    /// only; informational).
    pub restarts: Option<u64>,
    /// Router failovers off a dying or regressed endpoint (chaos fleet
    /// scenario only; informational).
    pub failovers: Option<u64>,
    /// Hash of the per-query replay/build-through decisions the
    /// contribution-index engine made (index scenarios only).
    /// Seed-deterministic, so the comparator gates it exactly: a planner
    /// that starts deciding differently on the same workload fails even
    /// when the work totals cancel out.
    pub planner_fingerprint: Option<u64>,
}

/// The five-number latency summary serialized per scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub count: usize,
    /// Median seconds.
    pub median: f64,
    /// 95th-percentile seconds.
    pub p95: f64,
    /// Mean seconds.
    pub mean: f64,
    /// Fastest sample.
    pub min: f64,
    /// Slowest sample.
    pub max: f64,
}

impl LatencySummary {
    /// Summarizes a latency recording.
    pub fn from_latencies(lat: &Latencies) -> LatencySummary {
        LatencySummary {
            count: lat.count(),
            median: lat.quantile(0.5),
            p95: lat.quantile(0.95),
            mean: lat.mean(),
            min: lat.min(),
            max: lat.max(),
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("count", Json::uint(self.count)),
            ("median", Json::Num(self.median)),
            ("p95", Json::Num(self.p95)),
            ("mean", Json::Num(self.mean)),
            ("min", Json::Num(self.min)),
            ("max", Json::Num(self.max)),
        ])
    }

    fn from_json(value: &Json) -> Result<LatencySummary, String> {
        let field = |name: &str| -> Result<f64, String> {
            value
                .get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("latency summary missing numeric field {name:?}"))
        };
        Ok(LatencySummary {
            count: field("count")? as usize,
            median: field("median")?,
            p95: field("p95")?,
            mean: field("mean")?,
            min: field("min")?,
            max: field("max")?,
        })
    }
}

impl ScenarioReport {
    /// Builds the serializable report for one scenario result.
    pub fn from_result(result: &ScenarioResult) -> ScenarioReport {
        ScenarioReport {
            scenario: result.spec.name.to_string(),
            description: result.spec.description.to_string(),
            kind: result.spec.kind_name().to_string(),
            seed: result.seed,
            scale: result.scale_name.to_string(),
            dataset: result.dataset.clone(),
            nodes: result.nodes,
            edges: result.edges,
            final_state_hash: result.final_state_hash,
            epsilon: result.epsilon,
            queries: result.queries_executed,
            updates: result.update_latency.as_ref().map_or(0, |lat| lat.count()),
            query_latency: LatencySummary::from_latencies(&result.query_latency),
            update_latency: result
                .update_latency
                .as_ref()
                .map(LatencySummary::from_latencies),
            query_stats: result.query_stats.fields().collect(),
            total_work: result.query_stats.total_work(),
            work_deterministic: result.work_deterministic,
            versions_observed: result.versions_observed,
            cache_hits: result.cache_hits,
            cache_hit_rate: result.cache_hit_rate,
            deadline_exceeded: result.deadline_exceeded,
            recoveries: result.recoveries,
            restarts: result.restarts,
            failovers: result.failovers,
            planner_fingerprint: result.planner_fingerprint,
        }
    }

    /// Serializes in the fixed `schema_version` 1 shape.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("scenario", Json::Str(self.scenario.clone())),
            ("description", Json::Str(self.description.clone())),
            ("kind", Json::Str(self.kind.clone())),
            ("seed", Json::UInt(self.seed)),
            ("scale", Json::Str(self.scale.clone())),
            ("graph", {
                let mut graph = vec![
                    ("dataset", Json::Str(self.dataset.clone())),
                    ("nodes", Json::uint(self.nodes)),
                    ("edges", Json::uint(self.edges)),
                ];
                if let Some(hash) = self.final_state_hash {
                    graph.push(("final_state_hash", Json::UInt(hash)));
                }
                Json::obj(graph)
            }),
            (
                "config",
                Json::obj(vec![("epsilon", Json::Num(self.epsilon))]),
            ),
            ("workload", {
                let mut workload = vec![
                    ("queries", Json::uint(self.queries)),
                    ("updates", Json::uint(self.updates)),
                    ("work_deterministic", Json::Bool(self.work_deterministic)),
                ];
                if let Some(versions) = self.versions_observed {
                    workload.push(("versions_observed", Json::UInt(versions)));
                }
                if let Some(hits) = self.cache_hits {
                    workload.push(("cache_hits", Json::UInt(hits)));
                }
                if let Some(rate) = self.cache_hit_rate {
                    workload.push(("cache_hit_rate", Json::Num(rate)));
                }
                if let Some(missed) = self.deadline_exceeded {
                    workload.push(("deadline_exceeded", Json::UInt(missed)));
                }
                if let Some(recoveries) = self.recoveries {
                    workload.push(("recoveries", Json::UInt(recoveries)));
                }
                if let Some(restarts) = self.restarts {
                    workload.push(("restarts", Json::UInt(restarts)));
                }
                if let Some(failovers) = self.failovers {
                    workload.push(("failovers", Json::UInt(failovers)));
                }
                if let Some(fingerprint) = self.planner_fingerprint {
                    workload.push(("planner_fingerprint", Json::UInt(fingerprint)));
                }
                Json::obj(workload)
            }),
            ("query_latency_secs", self.query_latency.to_json()),
        ];
        if let Some(update) = self.update_latency {
            fields.push(("update_latency_secs", update.to_json()));
        }
        fields.push((
            "query_stats",
            Json::Obj(
                self.query_stats
                    .iter()
                    .map(|&(name, value)| (name.to_string(), Json::uint(value)))
                    .collect(),
            ),
        ));
        fields.push(("total_work", Json::uint(self.total_work)));
        Json::obj(fields)
    }

    /// Deserializes a report (used by `--compare` on baseline files).
    /// Unknown fields are ignored; `query_stats` keys are matched against
    /// the current [`probesim_core::QueryStats::FIELD_NAMES`], so old
    /// baselines survive counter additions.
    pub fn from_json(value: &Json) -> Result<ScenarioReport, String> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("report missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this binary reads {SCHEMA_VERSION})"
            ));
        }
        let str_field = |name: &str| -> Result<String, String> {
            value
                .get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("report missing string field {name:?}"))
        };
        let num_field = |obj: &Json, name: &str| -> Result<f64, String> {
            obj.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("report missing numeric field {name:?}"))
        };
        let graph = value.get("graph").ok_or("report missing graph object")?;
        let workload = value
            .get("workload")
            .ok_or("report missing workload object")?;
        let stats_obj = value
            .get("query_stats")
            .ok_or("report missing query_stats object")?;
        let query_stats: Vec<(&'static str, usize)> = probesim_core::QueryStats::FIELD_NAMES
            .into_iter()
            .map(|name| {
                let counter = stats_obj.get(name).and_then(Json::as_f64).unwrap_or(0.0);
                (name, counter as usize)
            })
            .collect();
        Ok(ScenarioReport {
            scenario: str_field("scenario")?,
            description: str_field("description")?,
            kind: str_field("kind")?,
            seed: value
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("report missing integer field \"seed\"")?,
            scale: str_field("scale")?,
            dataset: graph
                .get("dataset")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            nodes: num_field(graph, "nodes")? as usize,
            edges: num_field(graph, "edges")? as usize,
            final_state_hash: graph.get("final_state_hash").and_then(Json::as_u64),
            epsilon: value
                .get("config")
                .map(|c| num_field(c, "epsilon"))
                .transpose()?
                .unwrap_or(f64::NAN),
            queries: num_field(workload, "queries")? as usize,
            updates: num_field(workload, "updates")? as usize,
            query_latency: LatencySummary::from_json(
                value
                    .get("query_latency_secs")
                    .ok_or("report missing query_latency_secs")?,
            )?,
            update_latency: value
                .get("update_latency_secs")
                .map(LatencySummary::from_json)
                .transpose()?,
            query_stats,
            total_work: num_field(value, "total_work")? as usize,
            // Absent in pre-store baselines: those scenarios were all
            // deterministic-work.
            work_deterministic: workload
                .get("work_deterministic")
                .and_then(Json::as_bool)
                .unwrap_or(true),
            versions_observed: workload.get("versions_observed").and_then(Json::as_u64),
            cache_hits: workload.get("cache_hits").and_then(Json::as_u64),
            cache_hit_rate: workload.get("cache_hit_rate").and_then(Json::as_f64),
            deadline_exceeded: workload.get("deadline_exceeded").and_then(Json::as_u64),
            recoveries: workload.get("recoveries").and_then(Json::as_u64),
            restarts: workload.get("restarts").and_then(Json::as_u64),
            failovers: workload.get("failovers").and_then(Json::as_u64),
            planner_fingerprint: workload.get("planner_fingerprint").and_then(Json::as_u64),
        })
    }

    /// The counter value for `name` (0 when absent).
    pub fn stat(&self, name: &str) -> usize {
        self.query_stats
            .iter()
            .find(|&&(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }
}

/// Serializes a set of reports as a combined baseline document
/// (`{"schema_version": 1, "scenarios": [...]}`).
pub fn baseline_json(reports: &[ScenarioReport]) -> Json {
    Json::obj(vec![
        ("schema_version", Json::UInt(SCHEMA_VERSION)),
        (
            "scenarios",
            Json::Arr(reports.iter().map(ScenarioReport::to_json).collect()),
        ),
    ])
}

/// Parses a baseline document: either the combined form produced by
/// [`baseline_json`] / `--write-baseline`, or a single `BENCH_*.json`
/// report.
pub fn parse_baseline(text: &str) -> Result<Vec<ScenarioReport>, String> {
    let value = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    match value.get("scenarios") {
        Some(list) => list
            .as_arr()
            .ok_or("baseline \"scenarios\" is not an array")?
            .iter()
            .map(ScenarioReport::from_json)
            .collect(),
        None => Ok(vec![ScenarioReport::from_json(&value)?]),
    }
}

/// Comparator thresholds (fractional slowdowns that trigger a failure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareThresholds {
    /// Allowed fractional increase of median query latency before the
    /// gate fails (1.0 = up to 2× the baseline passes).
    pub latency: f64,
    /// Allowed fractional increase of deterministic total work
    /// (0.10 = up to 10% more walk/probe work passes).
    pub work: f64,
}

/// Tightened work threshold applied to `*_fused` scenarios: the fused
/// engine's whole reason to exist is its work reduction, so its
/// scenarios may not give back more than 5% of it without failing the
/// gate (the global `work` threshold still applies everywhere else,
/// and whichever is smaller wins on fused scenarios).
pub const FUSED_WORK_THRESHOLD: f64 = 0.05;

impl Default for CompareThresholds {
    fn default() -> Self {
        CompareThresholds {
            latency: 1.0,
            work: 0.10,
        }
    }
}

/// One comparator finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Current ≤ baseline × (1 + threshold) on both signals.
    Pass {
        /// Scenario name.
        scenario: String,
    },
    /// A signal regressed beyond its threshold.
    Regression {
        /// Scenario name.
        scenario: String,
        /// Which signal regressed ("median query latency" or
        /// "total work").
        signal: &'static str,
        /// Baseline value.
        baseline: f64,
        /// Current value.
        current: f64,
        /// The fractional threshold that was exceeded.
        threshold: f64,
    },
    /// The deterministic workload fingerprint (`final_state_hash`)
    /// differs: baseline and current did not replay the same update
    /// stream, so their counters compare different workloads. Always
    /// fails the gate; the fix is regenerating the baseline.
    FingerprintMismatch {
        /// Scenario name.
        scenario: String,
        /// Baseline fingerprint.
        baseline: u64,
        /// Current fingerprint; `None` when the current run stopped
        /// emitting one (itself a regression of the identity check).
        current: Option<u64>,
    },
    /// The current run stopped claiming deterministic work against a
    /// baseline that gates on it: the tight `total_work` check would be
    /// silently disarmed, so — like a vanished fingerprint — this fails
    /// loudly. (The intended path for a genuinely newly-nondeterministic
    /// scenario is regenerating the baseline.)
    WorkGateDisarmed {
        /// Scenario name.
        scenario: String,
    },
    /// The result-cache hit rate fell below the committed baseline (or
    /// the current run stopped reporting it against a gating baseline).
    /// The rate is deterministic given the seed on the scenarios that
    /// report it, so any decrease is a real caching regression — gated
    /// exactly, no threshold.
    CacheHitRate {
        /// Scenario name.
        scenario: String,
        /// Baseline hit rate.
        baseline: f64,
        /// Current hit rate; `None` when the current run stopped
        /// emitting one (itself a regression of the cache gate).
        current: Option<f64>,
    },
    /// The per-query planner decisions of an index scenario diverged
    /// from the baseline (or the current run stopped emitting the
    /// fingerprint against a gating baseline). The decisions are
    /// seed-deterministic, so any drift is a real planner behavior
    /// change — gated exactly, like the workload fingerprint.
    PlannerDrift {
        /// Scenario name.
        scenario: String,
        /// Baseline decision fingerprint.
        baseline: u64,
        /// Current decision fingerprint; `None` when the current run
        /// stopped emitting one.
        current: Option<u64>,
    },
    /// The scenario exists on only one side; informational, never fails
    /// the gate (new scenarios must be able to land before their baseline
    /// does).
    Missing {
        /// Scenario name.
        scenario: String,
        /// Which side lacks it ("baseline" or "current run").
        side: &'static str,
    },
}

impl Verdict {
    /// True for the gate-failing verdicts ([`Verdict::Regression`] and
    /// [`Verdict::FingerprintMismatch`]).
    pub fn is_regression(&self) -> bool {
        matches!(
            self,
            Verdict::Regression { .. }
                | Verdict::FingerprintMismatch { .. }
                | Verdict::WorkGateDisarmed { .. }
                | Verdict::CacheHitRate { .. }
                | Verdict::PlannerDrift { .. }
        )
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pass { scenario } => write!(f, "PASS       {scenario}"),
            Verdict::Regression {
                scenario,
                signal,
                baseline,
                current,
                threshold,
            } => write!(
                f,
                "REGRESSION {scenario}: {signal} {current:.6} vs baseline {baseline:.6} \
                 ({:+.1}% > allowed +{:.0}%)",
                100.0 * (current / baseline - 1.0),
                100.0 * threshold
            ),
            Verdict::FingerprintMismatch {
                scenario,
                baseline,
                current,
            } => match current {
                Some(current) => write!(
                    f,
                    "REGRESSION {scenario}: workload fingerprint {current:#018x} vs baseline \
                     {baseline:#018x} — not the same workload, regenerate the baseline"
                ),
                None => write!(
                    f,
                    "REGRESSION {scenario}: workload fingerprint missing from the current run \
                     (baseline has {baseline:#018x}) — the identity check stopped being emitted"
                ),
            },
            Verdict::WorkGateDisarmed { scenario } => write!(
                f,
                "REGRESSION {scenario}: current run no longer reports deterministic work \
                 against a baseline that gates on it — the total-work check would be \
                 silently disarmed; regenerate the baseline if this is intentional"
            ),
            Verdict::CacheHitRate {
                scenario,
                baseline,
                current,
            } => match current {
                Some(current) => write!(
                    f,
                    "REGRESSION {scenario}: cache hit rate {current:.4} below baseline \
                     {baseline:.4} — the rate is seed-deterministic, so this is a real \
                     caching regression"
                ),
                None => write!(
                    f,
                    "REGRESSION {scenario}: cache hit rate missing from the current run \
                     (baseline has {baseline:.4}) — the cache gate stopped being emitted"
                ),
            },
            Verdict::PlannerDrift {
                scenario,
                baseline,
                current,
            } => match current {
                Some(current) => write!(
                    f,
                    "REGRESSION {scenario}: planner decision fingerprint {current:#018x} vs \
                     baseline {baseline:#018x} — the index engine decided differently on the \
                     same seeded workload"
                ),
                None => write!(
                    f,
                    "REGRESSION {scenario}: planner decision fingerprint missing from the \
                     current run (baseline has {baseline:#018x}) — the planner gate stopped \
                     being emitted"
                ),
            },
            Verdict::Missing { scenario, side } => {
                write!(f, "SKIP       {scenario}: not present in {side}")
            }
        }
    }
}

/// Compares a current run against a baseline, scenario by scenario.
///
/// The gate fails (the binary exits nonzero) when any verdict
/// [`Verdict::is_regression`]. Scenarios present on one side only are
/// reported as [`Verdict::Missing`] and do not fail the gate.
pub fn compare(
    baseline: &[ScenarioReport],
    current: &[ScenarioReport],
    thresholds: CompareThresholds,
) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.scenario == cur.scenario) else {
            verdicts.push(Verdict::Missing {
                scenario: cur.scenario.clone(),
                side: "baseline",
            });
            continue;
        };
        let mut regressed = false;
        let lat_base = base.query_latency.median;
        let lat_cur = cur.query_latency.median;
        // A zero baseline median (timer resolution on a trivial scenario)
        // cannot be meaningfully ratioed; only the work signal gates then.
        if lat_base > 0.0 && lat_cur > lat_base * (1.0 + thresholds.latency) {
            regressed = true;
            verdicts.push(Verdict::Regression {
                scenario: cur.scenario.clone(),
                signal: "median query latency",
                baseline: lat_base,
                current: lat_cur,
                threshold: thresholds.latency,
            });
        }
        // Dynamic scenarios also gate the update path: a DynamicGraph
        // insert/remove slowdown leaves query latency and work counters
        // untouched, so without this signal it would sail through. The
        // noise floor keeps sub-microsecond medians (timer resolution)
        // from flapping the gate.
        const UPDATE_NOISE_FLOOR_SECS: f64 = 2e-6;
        if let (Some(base_up), Some(cur_up)) = (base.update_latency, cur.update_latency) {
            if base_up.median > 0.0
                && cur_up.median > UPDATE_NOISE_FLOOR_SECS
                && cur_up.median
                    > base_up.median.max(UPDATE_NOISE_FLOOR_SECS) * (1.0 + thresholds.latency)
            {
                regressed = true;
                verdicts.push(Verdict::Regression {
                    scenario: cur.scenario.clone(),
                    signal: "median update latency",
                    baseline: base_up.median,
                    current: cur_up.median,
                    threshold: thresholds.latency,
                });
            }
        }
        // Workload identity: the final-state hash is a pure function of
        // (scenario, scale, seed). A mismatch means the update stream or
        // graph generator changed — the work numbers are then comparing
        // different workloads, which must fail loudly, not drift quietly.
        // Asymmetric on purpose: a baseline *without* a hash predates the
        // field and passes, but a current run that stopped emitting one
        // against a hash-carrying baseline has lost the identity check —
        // exactly the quiet drift this gate exists to catch.
        if let Some(base_hash) = base.final_state_hash {
            if cur.final_state_hash != Some(base_hash) {
                regressed = true;
                verdicts.push(Verdict::FingerprintMismatch {
                    scenario: cur.scenario.clone(),
                    baseline: base_hash,
                    current: cur.final_state_hash,
                });
            }
        }
        let work_base = base.total_work as f64;
        let work_cur = cur.total_work as f64;
        // Fused scenarios gate their work budget tighter: the reduction
        // they were introduced for is not allowed to erode silently.
        let work_threshold = if cur.scenario.ends_with("_fused") {
            thresholds.work.min(FUSED_WORK_THRESHOLD)
        } else {
            thresholds.work
        };
        // Scheduling-dependent work (concurrent store scenarios) is not
        // a regression signal: a reader racing a writer legitimately
        // sees different snapshot versions run to run. Latency and the
        // workload fingerprint above still gate those scenarios.
        // Asymmetric like the fingerprint check: a current run that
        // *stops* claiming deterministic work against a gating baseline
        // has disarmed the tightest signal and must fail loudly, not
        // quietly widen its own budget.
        if base.work_deterministic && !cur.work_deterministic {
            regressed = true;
            verdicts.push(Verdict::WorkGateDisarmed {
                scenario: cur.scenario.clone(),
            });
        }
        let work_gated = base.work_deterministic && cur.work_deterministic;
        if work_gated && work_base > 0.0 && work_cur > work_base * (1.0 + work_threshold) {
            regressed = true;
            verdicts.push(Verdict::Regression {
                scenario: cur.scenario.clone(),
                signal: "total work",
                baseline: work_base,
                current: work_cur,
                threshold: work_threshold,
            });
        }
        // Cache hit rate: reported only where deterministic, so it is
        // gated exactly — any decrease (or the field vanishing against a
        // gating baseline, mirroring the fingerprint/work asymmetry) is
        // a real caching regression. A small epsilon absorbs f64
        // round-trip noise through the JSON writer, nothing more.
        if let Some(base_rate) = base.cache_hit_rate {
            let failing = match cur.cache_hit_rate {
                Some(cur_rate) => cur_rate + 1e-9 < base_rate,
                None => true,
            };
            if failing {
                regressed = true;
                verdicts.push(Verdict::CacheHitRate {
                    scenario: cur.scenario.clone(),
                    baseline: base_rate,
                    current: cur.cache_hit_rate,
                });
            }
        }
        // Planner decisions: seed-deterministic on the scenarios that
        // report them, so gated exactly and with the same asymmetry as
        // the workload fingerprint — a vanished fingerprint against a
        // gating baseline fails loudly.
        if let Some(base_fp) = base.planner_fingerprint {
            if cur.planner_fingerprint != Some(base_fp) {
                regressed = true;
                verdicts.push(Verdict::PlannerDrift {
                    scenario: cur.scenario.clone(),
                    baseline: base_fp,
                    current: cur.planner_fingerprint,
                });
            }
        }
        if !regressed {
            verdicts.push(Verdict::Pass {
                scenario: cur.scenario.clone(),
            });
        }
    }
    for base in baseline {
        if !current.iter().any(|c| c.scenario == base.scenario) {
            verdicts.push(Verdict::Missing {
                scenario: base.scenario.clone(),
                side: "current run",
            });
        }
    }
    verdicts
}

/// One candidate-vs-yardstick scenario pairing: either a
/// `<base>_fused` / `<base>_legacy` suffix pair, or an explicit
/// cross-engine row from [`CROSS_ENGINE_CONTRASTS`]. The `fused_*`
/// fields hold the candidate (fused engine, or the contribution-index
/// engine), the `legacy_*` fields the index-free yardstick — the field
/// names keep the original suffix-pair vocabulary so the emitted
/// contrast JSON schema stays stable.
#[derive(Debug, Clone, PartialEq)]
pub struct ContrastPair {
    /// Pair label: the shared scenario-name prefix for suffix pairs
    /// (e.g. `probe_static`), the candidate scenario name for
    /// cross-engine pairs (e.g. `index_static_contrast`).
    pub base: String,
    /// `total_work` of the candidate run.
    pub fused_total_work: usize,
    /// `total_work` of the yardstick run.
    pub legacy_total_work: usize,
    /// `edges_expanded` of the candidate run.
    pub fused_edges_expanded: usize,
    /// `edges_expanded` of the yardstick run.
    pub legacy_edges_expanded: usize,
    /// Per-pair minimum work-reduction floor (percent). `None` leaves
    /// the gate at the CLI-wide `--contrast-min`; `Some(f)` raises it to
    /// at least `f` for this pair (whichever is larger wins).
    pub floor_pct: Option<f64>,
}

/// Explicit cross-engine contrast pairings the suffix convention cannot
/// express: `(candidate scenario, yardstick scenario, per-pair minimum
/// work-reduction floor in percent)`. The index engine's static revisit
/// stream must beat the fused index-free engine by at least 30% — the
/// reduction the second engine exists to deliver — while the churn pair
/// gates at the CLI-wide floor (repairs and build-throughs legitimately
/// eat into the replay savings under write pressure).
pub const CROSS_ENGINE_CONTRASTS: [(&str, &str, Option<f64>); 2] = [
    ("index_static_contrast", "probe_static_fused", Some(30.0)),
    ("index_dynamic_churn", "dynamic_churn_balanced", None),
];

impl ContrastPair {
    /// Percentage of deterministic total work the fused engine saved
    /// (positive = fused did less work).
    pub fn work_reduction_pct(&self) -> f64 {
        reduction_pct(self.legacy_total_work, self.fused_total_work)
    }

    /// Percentage of deterministic edge expansions the fused engine
    /// saved.
    pub fn edges_reduction_pct(&self) -> f64 {
        reduction_pct(self.legacy_edges_expanded, self.fused_edges_expanded)
    }
}

fn reduction_pct(legacy: usize, fused: usize) -> f64 {
    if legacy == 0 {
        return 0.0;
    }
    100.0 * (legacy as f64 - fused as f64) / legacy as f64
}

/// Pairs `<base>_fused` / `<base>_legacy` reports from one run, then
/// appends the explicit [`CROSS_ENGINE_CONTRASTS`] rows whose scenarios
/// are both present. Reports without a counterpart are skipped (the
/// contrast gate then simply has nothing to say about them).
pub fn contrast_pairs(reports: &[ScenarioReport]) -> Vec<ContrastPair> {
    let mut pairs = Vec::new();
    for fused in reports {
        let Some(base) = fused.scenario.strip_suffix("_fused") else {
            continue;
        };
        let legacy_name = format!("{base}_legacy");
        let Some(legacy) = reports.iter().find(|r| r.scenario == legacy_name) else {
            continue;
        };
        pairs.push(ContrastPair {
            base: base.to_string(),
            fused_total_work: fused.total_work,
            legacy_total_work: legacy.total_work,
            fused_edges_expanded: fused.stat("edges_expanded"),
            legacy_edges_expanded: legacy.stat("edges_expanded"),
            floor_pct: None,
        });
    }
    for &(candidate_name, yardstick_name, floor_pct) in &CROSS_ENGINE_CONTRASTS {
        let candidate = reports.iter().find(|r| r.scenario == candidate_name);
        let yardstick = reports.iter().find(|r| r.scenario == yardstick_name);
        let (Some(candidate), Some(yardstick)) = (candidate, yardstick) else {
            continue;
        };
        pairs.push(ContrastPair {
            base: candidate_name.to_string(),
            fused_total_work: candidate.total_work,
            legacy_total_work: yardstick.total_work,
            fused_edges_expanded: candidate.stat("edges_expanded"),
            legacy_edges_expanded: yardstick.stat("edges_expanded"),
            floor_pct,
        });
    }
    pairs
}

/// Serializes contrast pairs as the one-line JSON summary CI uploads:
/// `{"schema_version": 1, "contrast": [{"scenario": "probe_static",
/// "work_reduction_pct": …, …}, …]}`.
pub fn contrast_json(pairs: &[ContrastPair]) -> Json {
    Json::obj(vec![
        ("schema_version", Json::UInt(SCHEMA_VERSION)),
        (
            "contrast",
            Json::Arr(
                pairs
                    .iter()
                    .map(|p| {
                        let mut fields = vec![
                            ("scenario", Json::Str(p.base.clone())),
                            ("fused_total_work", Json::uint(p.fused_total_work)),
                            ("legacy_total_work", Json::uint(p.legacy_total_work)),
                            ("work_reduction_pct", Json::Num(p.work_reduction_pct())),
                            ("fused_edges_expanded", Json::uint(p.fused_edges_expanded)),
                            ("legacy_edges_expanded", Json::uint(p.legacy_edges_expanded)),
                            ("edges_reduction_pct", Json::Num(p.edges_reduction_pct())),
                        ];
                        if let Some(floor) = p.floor_pct {
                            fields.push(("floor_pct", Json::Num(floor)));
                        }
                        Json::obj(fields)
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(median: f64) -> LatencySummary {
        LatencySummary {
            count: 10,
            median,
            p95: median * 2.0,
            mean: median * 1.1,
            min: median * 0.5,
            max: median * 3.0,
        }
    }

    fn report(name: &str, median: f64, work: usize) -> ScenarioReport {
        ScenarioReport {
            scenario: name.to_string(),
            description: "test".to_string(),
            kind: "static".to_string(),
            seed: 1,
            scale: "ci".to_string(),
            dataset: "toy".to_string(),
            nodes: 8,
            edges: 12,
            final_state_hash: None,
            epsilon: 0.1,
            queries: 10,
            updates: 0,
            query_latency: summary(median),
            update_latency: None,
            query_stats: vec![("walks", 5), ("walk_nodes", work)],
            total_work: work,
            work_deterministic: true,
            versions_observed: None,
            cache_hits: None,
            cache_hit_rate: None,
            deadline_exceeded: None,
            recoveries: None,
            restarts: None,
            failovers: None,
            planner_fingerprint: None,
        }
    }

    #[test]
    fn json_round_trips() {
        let value = Json::obj(vec![
            ("s", Json::Str("he said \"hi\"\n\ttab".to_string())),
            ("n", Json::Num(-1.25e-7)),
            ("i", Json::Num(1234567.0)),
            ("b", Json::Bool(true)),
            ("z", Json::Null),
            (
                "a",
                Json::Arr(vec![Json::Num(1.0), Json::Str("x".to_string())]),
            ),
            ("o", Json::obj(vec![("k", Json::Num(2.0))])),
            ("unicode", Json::Str("προβ→sim".to_string())),
        ]);
        let text = value.to_string();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]x",
            "{\"a\": }",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "nul",
            "{'single': 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_whitespace_and_nesting() {
        let value = Json::parse("  { \"a\" : [ 1 , { \"b\" : null } ] }\n").unwrap();
        assert_eq!(
            value.get("a").unwrap().as_arr().unwrap()[1].get("b"),
            Some(&Json::Null)
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut original = report("static_top_k", 0.0015, 42_000);
        original.update_latency = Some(summary(0.0001));
        original.updates = 100;
        original.kind = "dynamic".to_string();
        // from_json normalizes stats onto the full FIELD_NAMES schema.
        original.query_stats = probesim_core::QueryStats::FIELD_NAMES
            .into_iter()
            .map(|n| (n, if n == "walks" { 5 } else { 0 }))
            .collect();
        let text = original.to_json().to_string();
        let parsed = ScenarioReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn baseline_round_trips_and_single_report_is_accepted() {
        let reports = vec![report("a", 0.001, 100), report("b", 0.002, 200)];
        let text = baseline_json(&reports).to_string();
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].scenario, "a");
        // A bare BENCH_<scenario>.json also parses as a 1-element baseline.
        let single = parse_baseline(&reports[1].to_json().to_string()).unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].scenario, "b");
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let mut text = report("a", 0.001, 100).to_json().to_string();
        text = text.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(parse_baseline(&text)
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn compare_passes_within_thresholds() {
        let baseline = vec![report("a", 0.001, 1000)];
        let current = vec![report("a", 0.0015, 1050)];
        let verdicts = compare(&baseline, &current, CompareThresholds::default());
        assert!(verdicts.iter().all(|v| !v.is_regression()), "{verdicts:?}");
    }

    #[test]
    fn compare_flags_latency_regression() {
        let baseline = vec![report("a", 0.001, 1000)];
        let current = vec![report("a", 0.0021, 1000)];
        let verdicts = compare(&baseline, &current, CompareThresholds::default());
        assert!(
            verdicts.iter().any(|v| matches!(
                v,
                Verdict::Regression {
                    signal: "median query latency",
                    ..
                }
            )),
            "{verdicts:?}"
        );
    }

    #[test]
    fn compare_flags_work_regression_even_when_latency_passes() {
        let baseline = vec![report("a", 0.001, 1000)];
        let current = vec![report("a", 0.001, 1200)];
        let verdicts = compare(&baseline, &current, CompareThresholds::default());
        assert!(
            verdicts.iter().any(|v| matches!(
                v,
                Verdict::Regression {
                    signal: "total work",
                    ..
                }
            )),
            "{verdicts:?}"
        );
    }

    #[test]
    fn concurrent_report_fields_round_trip_and_default_for_old_baselines() {
        let mut original = report("store_concurrent_balanced", 0.002, 9000);
        original.kind = "concurrent".to_string();
        original.work_deterministic = false;
        original.versions_observed = Some(17);
        original.update_latency = Some(summary(0.0002));
        original.updates = 32;
        original.query_stats = probesim_core::QueryStats::FIELD_NAMES
            .into_iter()
            .map(|n| (n, 0))
            .collect();
        let text = original.to_json().to_string();
        assert!(text.contains("\"work_deterministic\": false"));
        assert!(text.contains("\"versions_observed\": 17"));
        let parsed = ScenarioReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, original);
        // A pre-store baseline (no work_deterministic field) parses as
        // deterministic — the gate stays armed for every old scenario.
        let legacy = report("a", 0.001, 100).to_json().to_string();
        assert!(!legacy.contains("versions_observed"));
        let parsed = ScenarioReport::from_json(&Json::parse(&legacy).unwrap()).unwrap();
        assert!(parsed.work_deterministic);
        assert_eq!(parsed.versions_observed, None);
    }

    #[test]
    fn compare_skips_the_work_gate_when_work_is_scheduling_dependent() {
        let mut baseline = report("store_concurrent_balanced", 0.001, 1000);
        baseline.work_deterministic = false;
        let mut current = report("store_concurrent_balanced", 0.001, 1900);
        current.work_deterministic = false;
        // +90% work would fail a deterministic scenario outright…
        let verdicts = compare(
            &[baseline.clone()],
            &[current.clone()],
            CompareThresholds::default(),
        );
        assert!(verdicts.iter().all(|v| !v.is_regression()), "{verdicts:?}");
        // …and still does when both sides claim determinism.
        current.work_deterministic = true;
        baseline.work_deterministic = true;
        let verdicts = compare(
            &[baseline.clone()],
            &[current.clone()],
            CompareThresholds::default(),
        );
        assert!(verdicts.iter().any(|v| v.is_regression()), "{verdicts:?}");
        // Latency stays gated regardless of work determinism.
        current.work_deterministic = false;
        baseline.work_deterministic = false;
        current.total_work = 1000;
        current.query_latency = summary(0.01);
        let verdicts = compare(
            &[baseline.clone()],
            &[current.clone()],
            CompareThresholds::default(),
        );
        assert!(
            verdicts.iter().any(|v| matches!(
                v,
                Verdict::Regression {
                    signal: "median query latency",
                    ..
                }
            )),
            "{verdicts:?}"
        );
        // And dropping the deterministic-work claim against a gating
        // baseline is itself a loud failure, not a quiet skip.
        baseline.work_deterministic = true;
        current.work_deterministic = false;
        current.query_latency = baseline.query_latency;
        let verdicts = compare(&[baseline], &[current], CompareThresholds::default());
        assert!(
            verdicts
                .iter()
                .any(|v| matches!(v, Verdict::WorkGateDisarmed { .. }) && v.is_regression()),
            "{verdicts:?}"
        );
    }

    #[test]
    fn service_report_fields_round_trip_and_default_for_old_baselines() {
        let mut original = report("service_cache_repeat", 0.002, 9000);
        original.kind = "service".to_string();
        original.cache_hits = Some(30);
        original.cache_hit_rate = Some(0.75);
        original.deadline_exceeded = Some(2);
        original.recoveries = Some(3);
        original.restarts = Some(3);
        original.failovers = Some(1);
        original.query_stats = probesim_core::QueryStats::FIELD_NAMES
            .into_iter()
            .map(|n| (n, 0))
            .collect();
        let text = original.to_json().to_string();
        assert!(text.contains("\"cache_hits\": 30"));
        assert!(text.contains("\"cache_hit_rate\": 0.75"));
        assert!(text.contains("\"deadline_exceeded\": 2"));
        assert!(text.contains("\"recoveries\": 3"));
        assert!(text.contains("\"restarts\": 3"));
        assert!(text.contains("\"failovers\": 1"));
        let parsed = ScenarioReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, original);
        // Old baselines without the fields parse as None — no gate armed.
        let legacy = report("a", 0.001, 100).to_json().to_string();
        assert!(!legacy.contains("cache_hit_rate"));
        assert!(!legacy.contains("recoveries"));
        let parsed = ScenarioReport::from_json(&Json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(parsed.cache_hit_rate, None);
        assert_eq!(parsed.cache_hits, None);
        assert_eq!(parsed.deadline_exceeded, None);
        assert_eq!(parsed.recoveries, None);
        assert_eq!(parsed.restarts, None);
        assert_eq!(parsed.failovers, None);
    }

    #[test]
    fn cache_hit_rate_gate_is_exact_and_asymmetric() {
        let mut baseline = report("service_cache_repeat", 0.001, 1000);
        baseline.cache_hit_rate = Some(0.75);
        // Equal or better passes.
        for better in [0.75, 0.80, 1.0] {
            let mut current = baseline.clone();
            current.cache_hit_rate = Some(better);
            let verdicts = compare(
                &[baseline.clone()],
                &[current],
                CompareThresholds::default(),
            );
            assert!(verdicts.iter().all(|v| !v.is_regression()), "{better}");
        }
        // Any decrease fails exactly (no threshold).
        let mut worse = baseline.clone();
        worse.cache_hit_rate = Some(0.70);
        let verdicts = compare(&[baseline.clone()], &[worse], CompareThresholds::default());
        let regression = verdicts
            .iter()
            .find(|v| matches!(v, Verdict::CacheHitRate { .. }))
            .expect("hit-rate regression");
        assert!(regression.is_regression());
        assert!(regression.to_string().contains("0.7000"), "{regression}");
        // The field vanishing against a gating baseline fails loudly.
        let mut vanished = baseline.clone();
        vanished.cache_hit_rate = None;
        let verdicts = compare(
            &[baseline.clone()],
            &[vanished],
            CompareThresholds::default(),
        );
        let gone = verdicts
            .iter()
            .find(|v| v.is_regression())
            .expect("missing-rate regression");
        assert!(gone.to_string().contains("missing from the current run"));
        // A baseline without the field never arms the gate.
        let mut old_baseline = baseline.clone();
        old_baseline.cache_hit_rate = None;
        let verdicts = compare(&[old_baseline], &[baseline], CompareThresholds::default());
        assert!(verdicts.iter().all(|v| !v.is_regression()));
    }

    #[test]
    fn huge_u64_seed_round_trips_exactly() {
        let mut original = report("a", 0.001, 100);
        original.seed = u64::MAX; // not representable in f64
        let text = original.to_json().to_string();
        assert!(text.contains(&format!("\"seed\": {}", u64::MAX)));
        let parsed = ScenarioReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.seed, u64::MAX);
    }

    #[test]
    fn compare_flags_update_latency_regression_on_dynamic_scenarios() {
        let mut baseline = report("dyn", 0.001, 1000);
        baseline.update_latency = Some(summary(5e-6));
        let mut current = baseline.clone();
        // Queries and work identical; only the update path got 100x slower.
        current.update_latency = Some(summary(5e-4));
        let verdicts = compare(
            &[baseline.clone()],
            &[current],
            CompareThresholds::default(),
        );
        assert!(
            verdicts.iter().any(|v| matches!(
                v,
                Verdict::Regression {
                    signal: "median update latency",
                    ..
                }
            )),
            "{verdicts:?}"
        );
        // Sub-microsecond wiggle stays under the noise floor: no flapping.
        let mut noisy = baseline.clone();
        noisy.update_latency = Some(summary(0.9e-6));
        let mut tiny_base = baseline.clone();
        tiny_base.update_latency = Some(summary(0.2e-6));
        let verdicts = compare(&[tiny_base], &[noisy], CompareThresholds::default());
        assert!(verdicts.iter().all(|v| !v.is_regression()), "{verdicts:?}");
    }

    #[test]
    fn fused_scenarios_gate_work_tighter() {
        // +7% work: inside the global +10% budget, outside the fused +5%.
        let baseline = vec![report("probe_static_fused", 0.001, 1000)];
        let current = vec![report("probe_static_fused", 0.001, 1070)];
        let verdicts = compare(&baseline, &current, CompareThresholds::default());
        assert!(
            verdicts.iter().any(|v| matches!(
                v,
                Verdict::Regression {
                    signal: "total work",
                    threshold,
                    ..
                } if *threshold == FUSED_WORK_THRESHOLD
            )),
            "{verdicts:?}"
        );
        // The same +7% on a non-fused scenario passes.
        let baseline = vec![report("static_top_k", 0.001, 1000)];
        let current = vec![report("static_top_k", 0.001, 1070)];
        let verdicts = compare(&baseline, &current, CompareThresholds::default());
        assert!(verdicts.iter().all(|v| !v.is_regression()), "{verdicts:?}");
    }

    #[test]
    fn workload_fingerprint_mismatch_fails_the_gate() {
        // Hashes above 2^53 that differ only in low bits must still be
        // detected and displayed distinctly (they collide as f64).
        let mut baseline = report("dyn", 0.001, 1000);
        baseline.final_state_hash = Some(u64::MAX - 2);
        let mut current = baseline.clone();
        current.final_state_hash = Some(u64::MAX - 1);
        let verdicts = compare(
            &[baseline.clone()],
            &[current],
            CompareThresholds::default(),
        );
        let mismatch = verdicts
            .iter()
            .find(|v| matches!(v, Verdict::FingerprintMismatch { .. }))
            .expect("fingerprint mismatch verdict");
        assert!(mismatch.is_regression());
        let text = mismatch.to_string();
        assert!(text.contains("regenerate the baseline"), "{text}");
        assert!(
            text.contains(&format!("{:#018x}", u64::MAX - 1))
                && text.contains(&format!("{:#018x}", u64::MAX - 2)),
            "hashes must print exactly: {text}"
        );
        // Matching hashes (or a baseline predating the field) pass.
        let verdicts = compare(
            &[baseline.clone()],
            &[baseline.clone()],
            CompareThresholds::default(),
        );
        assert!(verdicts.iter().all(|v| !v.is_regression()));
        let mut old_baseline = baseline.clone();
        old_baseline.final_state_hash = None;
        let verdicts = compare(
            &[old_baseline],
            &[baseline.clone()],
            CompareThresholds::default(),
        );
        assert!(verdicts.iter().all(|v| !v.is_regression()));
        // Asymmetric: a current run that LOST the hash against a
        // hash-carrying baseline fails — the identity check went dark.
        let mut hashless_current = baseline.clone();
        hashless_current.final_state_hash = None;
        let verdicts = compare(
            &[baseline],
            &[hashless_current],
            CompareThresholds::default(),
        );
        let gone = verdicts
            .iter()
            .find(|v| v.is_regression())
            .expect("missing-hash regression");
        assert!(gone.to_string().contains("missing from the current run"));
    }

    #[test]
    fn final_state_hash_round_trips_through_json() {
        let mut original = report("dyn", 0.001, 100);
        original.final_state_hash = Some(u64::MAX - 1);
        // from_json normalizes stats onto the full FIELD_NAMES schema.
        original.query_stats = probesim_core::QueryStats::FIELD_NAMES
            .into_iter()
            .map(|n| (n, 0))
            .collect();
        let text = original.to_json().to_string();
        let parsed = ScenarioReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, original);
        assert_eq!(parsed.final_state_hash, Some(u64::MAX - 1));
    }

    #[test]
    fn contrast_pairs_and_summary_json() {
        let mut fused = report("probe_static_fused", 0.001, 600);
        fused.query_stats = vec![("edges_expanded", 500)];
        let mut legacy = report("probe_static_legacy", 0.002, 1000);
        legacy.query_stats = vec![("edges_expanded", 900)];
        let unpaired = report("static_top_k", 0.001, 77);
        let pairs = contrast_pairs(&[fused, legacy, unpaired]);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].base, "probe_static");
        assert!((pairs[0].work_reduction_pct() - 40.0).abs() < 1e-12);
        assert!((pairs[0].edges_reduction_pct() - 400.0 / 9.0).abs() < 1e-9);
        let json = contrast_json(&pairs);
        let text = json.to_string();
        assert!(text.contains("\"work_reduction_pct\": 40"));
        let parsed = Json::parse(&text).unwrap();
        let list = parsed.get("contrast").unwrap().as_arr().unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(
            list[0].get("scenario").unwrap().as_str().unwrap(),
            "probe_static"
        );
        // No counterpart => no pair.
        assert!(contrast_pairs(&[report("x_fused", 0.1, 1)]).is_empty());
    }

    #[test]
    fn cross_engine_contrast_pairs_carry_their_floor() {
        let mut index = report("index_static_contrast", 0.001, 300);
        index.kind = "index".to_string();
        let fused = report("probe_static_fused", 0.001, 1000);
        // Both halves present: one suffixless cross-engine pair with the
        // 30% floor (the fused report has no _legacy twin here).
        let pairs = contrast_pairs(&[index.clone(), fused.clone()]);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].base, "index_static_contrast");
        assert_eq!(pairs[0].fused_total_work, 300);
        assert_eq!(pairs[0].legacy_total_work, 1000);
        assert_eq!(pairs[0].floor_pct, Some(30.0));
        assert!((pairs[0].work_reduction_pct() - 70.0).abs() < 1e-12);
        let text = contrast_json(&pairs).to_string();
        assert!(text.contains("\"floor_pct\": 30"), "{text}");
        // A missing yardstick produces no pair rather than a bogus one.
        assert_eq!(contrast_pairs(&[index]).len(), 0);
        // The churn pair rides at the CLI-wide floor.
        let mut churn = report("index_dynamic_churn", 0.001, 400);
        churn.kind = "index".to_string();
        let balanced = report("dynamic_churn_balanced", 0.001, 900);
        let pairs = contrast_pairs(&[churn, balanced]);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].floor_pct, None);
    }

    #[test]
    fn planner_fingerprint_round_trips_and_gates_exactly() {
        let mut original = report("index_static_contrast", 0.001, 300);
        original.kind = "index".to_string();
        // Above 2^53 so an f64 round-trip would corrupt it.
        original.planner_fingerprint = Some(u64::MAX - 3);
        original.query_stats = probesim_core::QueryStats::FIELD_NAMES
            .into_iter()
            .map(|n| (n, 0))
            .collect();
        let text = original.to_json().to_string();
        assert!(text.contains(&format!("\"planner_fingerprint\": {}", u64::MAX - 3)));
        let parsed = ScenarioReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, original);
        // Identical fingerprints pass.
        let verdicts = compare(
            &[original.clone()],
            &[original.clone()],
            CompareThresholds::default(),
        );
        assert!(verdicts.iter().all(|v| !v.is_regression()), "{verdicts:?}");
        // Any drift fails exactly.
        let mut drifted = original.clone();
        drifted.planner_fingerprint = Some(u64::MAX - 4);
        let verdicts = compare(
            &[original.clone()],
            &[drifted],
            CompareThresholds::default(),
        );
        let drift = verdicts
            .iter()
            .find(|v| matches!(v, Verdict::PlannerDrift { .. }))
            .expect("planner drift verdict");
        assert!(drift.is_regression());
        assert!(drift.to_string().contains("decided differently"), "{drift}");
        // Asymmetric: vanishing against a gating baseline fails loudly…
        let mut vanished = original.clone();
        vanished.planner_fingerprint = None;
        let verdicts = compare(
            &[original.clone()],
            &[vanished],
            CompareThresholds::default(),
        );
        let gone = verdicts
            .iter()
            .find(|v| v.is_regression())
            .expect("missing-fingerprint regression");
        assert!(gone.to_string().contains("missing from the current run"));
        // …but a baseline predating the field never arms the gate.
        let mut old_baseline = original.clone();
        old_baseline.planner_fingerprint = None;
        let verdicts = compare(&[old_baseline], &[original], CompareThresholds::default());
        assert!(verdicts.iter().all(|v| !v.is_regression()));
    }

    #[test]
    fn compare_reports_missing_scenarios_without_failing() {
        let baseline = vec![report("old", 0.001, 1000)];
        let current = vec![report("new", 0.001, 1000)];
        let verdicts = compare(&baseline, &current, CompareThresholds::default());
        assert_eq!(verdicts.iter().filter(|v| v.is_regression()).count(), 0);
        assert_eq!(
            verdicts
                .iter()
                .filter(|v| matches!(v, Verdict::Missing { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn verdict_display_is_informative() {
        let v = Verdict::Regression {
            scenario: "a".to_string(),
            signal: "total work",
            baseline: 1000.0,
            current: 1500.0,
            threshold: 0.10,
        };
        let text = v.to_string();
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("+50.0%"));
    }
}
