//! `probesim-bench` — the workload scenario runner.
//!
//! Executes named, seeded scenarios (static query mixes, batch modes,
//! session-reuse streams, and update-interleaved dynamic workloads on a
//! live `DynamicGraph`), prints a summary table, writes machine-readable
//! `BENCH_<scenario>.json` reports, and gates against a committed
//! baseline:
//!
//! ```text
//! probesim-bench --list
//! probesim-bench --scale ci --out bench-out --compare bench/baseline.json
//! probesim-bench --write-baseline bench/baseline.json
//! ```
//!
//! Exit status: 0 on success, 1 when `--compare` finds a regression past
//! the thresholds, 2 on usage or I/O errors. See `probesim_bench::cli`
//! for the full flag reference and `probesim_bench::report` for the JSON
//! schema.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match probesim_bench::cli::run(&args) {
        Ok(code) => ExitCode::from(code as u8),
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", probesim_bench::cli::USAGE);
            ExitCode::from(2)
        }
    }
}
