//! Ablation study (ours, motivated by Section 4 of the paper): what each
//! optimization contributes.
//!
//! Configurations measured against the basic Algorithm 1 + Algorithm 2:
//!
//! * `basic` — no truncation, no pruning, no batching, deterministic PROBE
//! * `+truncate` — pruning rule 1 only
//! * `+prune` — pruning rules 1 + 2
//! * `+batch` — rules 1 + 2 + the reverse-reachability trie
//! * `+hybrid` — everything, with the Section 4.4 probe (the default)
//! * `randomized` — everything but with the pure randomized PROBE
//!
//! Reported per configuration: average query time, AbsError against the
//! Power Method, probes executed, and edges expanded.
//!
//! ```text
//! cargo run --release -p probesim-bench --bin ablation_opts -- --scale ci --queries 10
//! ```

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use probesim_bench::{load_dataset, time_per_item, HarnessArgs};
use probesim_core::{Optimizations, ProbeSim, ProbeSimConfig, ProbeStrategy, Query};
use probesim_datasets::Dataset;
use probesim_eval::{metrics, sample_query_nodes, Aggregate, GroundTruth};

const DECAY: f64 = 0.6;
const EPSILON: f64 = 0.05;

fn configurations() -> Vec<(&'static str, Optimizations)> {
    let basic = Optimizations::basic();
    let mut truncate = basic;
    truncate.truncate_walks = true;
    let mut prune = truncate;
    prune.prune_scores = true;
    let mut batch = prune;
    batch.batch_walks = true;
    let mut hybrid = batch;
    hybrid.strategy = ProbeStrategy::Hybrid;
    let mut randomized = batch;
    randomized.strategy = ProbeStrategy::Randomized;
    vec![
        ("basic", basic),
        ("+truncate", truncate),
        ("+prune", prune),
        ("+batch", batch),
        ("+hybrid", hybrid),
        ("randomized", randomized),
    ]
}

fn main() {
    let args = HarnessArgs::parse(10);
    println!(
        "# Ablation — Section 4 optimizations, eps={EPSILON} scale={} queries={}",
        args.scale_name(),
        args.queries
    );
    let default_sets = [Dataset::WikiVote, Dataset::As];
    for dataset in args.datasets_or(&default_sets) {
        let graph = load_dataset(dataset, args.scale);
        let truth = GroundTruth::compute(&graph, DECAY);
        let queries = sample_query_nodes(&graph, args.queries, args.seed);
        println!(
            "{:<12} {:>12} {:>10} {:>10} {:>14} {:>10}",
            "config", "med_query_s", "abs_err", "probes", "edges_expanded", "switches"
        );
        for (name, opts) in configurations() {
            let engine = ProbeSim::new(
                ProbeSimConfig::new(DECAY, EPSILON, 0.01)
                    .with_seed(args.seed)
                    .with_optimizations(opts),
            );
            // One pooled session per configuration: scratch memory is
            // allocated on the first query and version-stamp reset after.
            let mut session = engine.session(&graph);
            let (outputs, latency) = time_per_item(queries.iter().copied(), |u| {
                session
                    .run(Query::SingleSource { node: u })
                    .expect("queries sampled from the graph are valid")
            });
            let mut err_agg = Aggregate::default();
            for (&u, output) in queries.iter().zip(&outputs) {
                err_agg.push(metrics::abs_error(
                    truth.single_source(u),
                    &output.scores.to_dense(),
                    u,
                ));
            }
            let totals = session.total_stats();
            let (probes, edges, switches) =
                (totals.probes, totals.edges_expanded, totals.hybrid_switches);
            let q = queries.len().max(1);
            println!(
                "{:<12} {:>12.6} {:>10.5} {:>10} {:>14} {:>10}",
                name,
                latency.median(),
                err_agg.mean(),
                probes / q,
                edges / q,
                switches / q
            );
        }
        println!();
    }
}
