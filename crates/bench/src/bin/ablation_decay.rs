//! Ablation (ours): sensitivity to the decay factor `c`.
//!
//! The paper fixes `c = 0.6` ("typically set to 0.6 or 0.8"). The decay
//! controls every cost driver of ProbeSim: expected √c-walk length
//! `1/(1−√c)` (2.1 nodes at c=0.4, 4.4 at 0.6, 9.5 at 0.8), the trial
//! count `nr = (3c/ε²)·ln(n/δ)`, the truncation cap `ℓt`, and through all
//! of those the probe workload. This binary quantifies the query-time and
//! accuracy impact of moving `c` across its practical range.
//!
//! ```text
//! cargo run --release -p probesim-bench --bin ablation_decay -- --scale ci --queries 8
//! ```

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use probesim_bench::{load_dataset, time_per_item, HarnessArgs};
use probesim_core::{ProbeSim, ProbeSimConfig, Query};
use probesim_datasets::Dataset;
use probesim_eval::{metrics, sample_query_nodes, Aggregate, GroundTruth};

const EPSILON: f64 = 0.05;

fn main() {
    let args = HarnessArgs::parse(8);
    println!(
        "# Ablation — decay factor sensitivity, eps={EPSILON} scale={} queries={}",
        args.scale_name(),
        args.queries
    );
    for dataset in args.datasets_or(&[Dataset::As, Dataset::HepPh]) {
        let graph = load_dataset(dataset, args.scale);
        let queries = sample_query_nodes(&graph, args.queries, args.seed);
        println!(
            "{:<8} {:>10} {:>12} {:>12} {:>10} {:>12}",
            "decay", "E[len]", "med_query_s", "abs_error", "walks", "walk_nodes"
        );
        for decay in [0.4, 0.6, 0.8] {
            let truth = GroundTruth::compute_with_iterations(
                &graph,
                decay,
                // Iterations chosen so ground-truth error ≪ εa at each c.
                probesim_baselines::PowerMethod::iterations_for_tolerance(decay, 1e-6),
            );
            let engine =
                ProbeSim::new(ProbeSimConfig::new(decay, EPSILON, 0.01).with_seed(args.seed));
            let mut session = engine.session(&graph);
            let (outputs, latency) = time_per_item(queries.iter().copied(), |u| {
                session
                    .run(Query::SingleSource { node: u })
                    .expect("queries sampled from the graph are valid")
            });
            let mut err_agg = Aggregate::default();
            for (&u, output) in queries.iter().zip(&outputs) {
                err_agg.push(metrics::abs_error(
                    truth.single_source(u),
                    &output.scores.to_dense(),
                    u,
                ));
            }
            let (walks, walk_nodes) = (
                session.total_stats().walks,
                session.total_stats().walk_nodes,
            );
            let q = queries.len().max(1);
            println!(
                "{:<8} {:>10.2} {:>12.6} {:>12.5} {:>10} {:>12.2}",
                decay,
                1.0 / (1.0 - decay.sqrt()),
                latency.median(),
                err_agg.mean(),
                walks / q,
                walk_nodes as f64 / walks.max(1) as f64
            );
        }
        println!();
    }
}
