//! Regenerates **Table 4**: average top-k query time and index space
//! overhead on the four large graphs.
//!
//! Mirrors the paper's setup: 20 query nodes with nonzero in-degree,
//! `εa = 0.1` for ProbeSim, paper parameters for the baselines. Index-based
//! methods whose estimated footprint exceeds the memory budget are printed
//! as `N/A`, the same way the paper reports TopSim running out of
//! memory/time on Twitter and Friendster.
//!
//! ```text
//! cargo run --release -p probesim-bench --bin table4_large -- --scale ci --queries 5
//! ```

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use probesim_baselines::{FingerprintConfig, TopSimConfig, TopSimVariant, TsfConfig};
use probesim_bench::{load_dataset, time_per_item, HarnessArgs};
use probesim_core::{ProbeSim, ProbeSimConfig, Query};
use probesim_datasets::Dataset;
use probesim_eval::{
    human_bytes, human_secs, sample_query_nodes, timed, FingerprintAlgo, SimRankAlgorithm,
    TopSimAlgo, TsfAlgo,
};
use probesim_graph::GraphView;

const DECAY: f64 = 0.6;

/// Conservative per-node cost of the TSF index (parent pointer + reversed
/// adjacency entry + Vec header amortization), used for the N/A pre-check.
const TSF_BYTES_PER_NODE_PER_GRAPH: usize = 32;

/// Rough cost ceiling for a TopSim-family query: prefixes × probe edges.
/// Beyond this we report N/A instead of burning hours, mirroring the
/// paper's ">24 hours" entries.
const TOPSIM_COST_CEILING: f64 = 5e9;

fn main() {
    let args = HarnessArgs::parse(5);
    println!(
        "# Table 4 — query time and space overhead on large graphs, scale={} queries={} k={}",
        args.scale_name(),
        args.queries,
        args.k
    );
    for dataset in args.datasets_or(&Dataset::LARGE) {
        let graph = load_dataset(dataset, args.scale);
        let graph_bytes = graph.memory_bytes();
        let queries = sample_query_nodes(&graph, args.queries, args.seed);
        println!(
            "{:<22} {:>14} {:>14} {:>12}",
            "algorithm", "build_time", "med_query", "index_space"
        );

        // ProbeSim: index-free, eps = 0.1 (the paper's large-graph
        // setting), driven through one pooled session so per-query times
        // exclude scratch allocation — the deployment-realistic number.
        {
            let engine = ProbeSim::new(ProbeSimConfig::paper(0.1).with_seed(args.seed));
            let mut session = engine.session(&graph);
            let (_, latency) = time_per_item(queries.iter().copied(), |u| {
                session
                    .run(Query::TopK { node: u, k: args.k })
                    .expect("queries sampled from the graph are valid")
            });
            println!(
                "{:<22} {:>14} {:>14} {:>12}",
                format!("ProbeSim(eps={})", engine.config().epsilon),
                "none",
                human_secs(latency.median()),
                "0 B (index-free)"
            );
        }

        // TSF: build the index unless it would blow the memory budget.
        {
            let config = TsfConfig {
                decay: DECAY,
                rg: 300,
                rq: 40,
                depth: 10,
                seed: args.seed ^ 2,
            };
            let estimated = config.rg * graph.num_nodes() * TSF_BYTES_PER_NODE_PER_GRAPH;
            if estimated > args.mem_budget_bytes {
                println!(
                    "{:<22} {:>14} {:>14} {:>12}",
                    "TSF(Rg=300,Rq=40)",
                    "N/A",
                    "N/A",
                    format!("~{} > budget", human_bytes(estimated))
                );
            } else {
                let mut algo = TsfAlgo::new(config);
                let ((), build_secs) = timed(|| algo.prepare(&graph));
                let (_, latency) =
                    time_per_item(queries.iter().copied(), |u| algo.top_k(&graph, u, args.k));
                println!(
                    "{:<22} {:>14} {:>14} {:>12}",
                    algo.name(),
                    human_secs(build_secs),
                    human_secs(latency.median()),
                    human_bytes(algo.index_bytes())
                );
            }
        }

        // Fingerprint index (Fogaras–Rácz): the other index-based method;
        // same N/A pre-check against the memory budget.
        {
            let config = FingerprintConfig {
                decay: DECAY,
                num_walks: 100,
                max_walk_nodes: 64,
                seed: args.seed ^ 3,
            };
            // ~E[walk len] stored ids per walk: 1/(1−√c) ≈ 4.4 at c = 0.6.
            let estimated = config.num_walks * graph.num_nodes() * 5 * 4
                + graph.num_nodes() * config.num_walks * 8;
            if estimated > args.mem_budget_bytes {
                println!(
                    "{:<22} {:>14} {:>14} {:>12}",
                    "Fingerprint(r=100)",
                    "N/A",
                    "N/A",
                    format!("~{} > budget", human_bytes(estimated))
                );
            } else {
                let mut algo = FingerprintAlgo::new(config);
                let ((), build_secs) = timed(|| algo.prepare(&graph));
                let (_, latency) =
                    time_per_item(queries.iter().copied(), |u| algo.top_k(&graph, u, args.k));
                println!(
                    "{:<22} {:>14} {:>14} {:>12}",
                    algo.name(),
                    human_secs(build_secs),
                    human_secs(latency.median()),
                    human_bytes(algo.index_bytes())
                );
            }
        }

        // TopSim family: run unless the d^{2T} cost estimate is hopeless.
        let stats = probesim_graph::DegreeStats::compute(&graph);
        for variant in [
            TopSimVariant::Exact,
            TopSimVariant::paper_truncated(),
            TopSimVariant::paper_priority(),
        ] {
            let name = variant.name();
            let estimated_cost = match variant {
                TopSimVariant::Exact => stats.mean_degree.powi(6) * graph.num_edges() as f64 / 1e3,
                TopSimVariant::Truncated { .. } => {
                    stats.mean_degree.min(100.0).powi(6) * graph.num_edges() as f64 / 1e4
                }
                TopSimVariant::Priority { .. } => 100.0 * graph.num_edges() as f64,
            };
            if estimated_cost > TOPSIM_COST_CEILING {
                println!(
                    "{:<22} {:>14} {:>14} {:>12}",
                    name, "none", "N/A (>ceiling)", "0 B"
                );
                continue;
            }
            let mut algo = TopSimAlgo::new(TopSimConfig::paper(variant));
            let (_, latency) =
                time_per_item(queries.iter().copied(), |u| algo.top_k(&graph, u, args.k));
            println!(
                "{:<22} {:>14} {:>14} {:>12}",
                name,
                "none",
                human_secs(latency.median()),
                "0 B (index-free)"
            );
        }
        println!("graph size: {}", human_bytes(graph_bytes));
        println!();
    }
}
