//! Regenerates **Figures 8, 9 and 10**: Precision@k, NDCG@k and Kendall τk
//! for top-k queries on the large graphs, evaluated with **pooling**
//! (Section 6.2): the algorithms' top-k answers are merged into a pool, a
//! high-precision Monte Carlo "expert" scores each pooled candidate, and
//! the expert's top-k becomes the ground truth.
//!
//! ProbeSim runs at the paper's fixed `εa = 0.1` (varying it would change
//! the pool and make algorithms incomparable, as the paper notes). The
//! figures' x-axis sweep is reported as k ∈ {10, 20, 30, 40, 50}.
//!
//! ```text
//! cargo run --release -p probesim-bench --bin fig8_10_pooling -- --scale ci --queries 5
//! ```

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use probesim_baselines::{MonteCarlo, TopSimConfig, TopSimVariant, TsfConfig};
use probesim_bench::{load_dataset, HarnessArgs, Latencies};
use probesim_core::ProbeSimConfig;
use probesim_datasets::Dataset;
use probesim_eval::{
    metrics, sample_query_nodes, Aggregate, Pool, ProbeSimAlgo, SimRankAlgorithm, TopSimAlgo,
    TsfAlgo,
};

const DECAY: f64 = 0.6;

fn roster(seed: u64) -> Vec<Box<dyn SimRankAlgorithm>> {
    vec![
        Box::new(ProbeSimAlgo::new(
            ProbeSimConfig::paper(0.1).with_seed(seed),
        )),
        Box::new(TsfAlgo::new(TsfConfig {
            decay: DECAY,
            rg: 300,
            rq: 40,
            depth: 10,
            seed: seed ^ 2,
        })),
        Box::new(TopSimAlgo::new(TopSimConfig::paper(
            TopSimVariant::paper_priority(),
        ))),
        Box::new(TopSimAlgo::new(TopSimConfig::paper(
            TopSimVariant::paper_truncated(),
        ))),
    ]
}

fn main() {
    let args = HarnessArgs::parse(5);
    // The paper's expert: error ≤ 1e-4 with confidence ≥ 99.999%. That
    // needs ~6.1e8 walk pairs per candidate; at reproduction scale we relax
    // to 1e-2 @ 99.9% by default and note the substitution (EXPERIMENTS.md).
    let expert_eps = 0.01;
    let expert = MonteCarlo::expert(DECAY, expert_eps, 0.001).with_seed(args.seed ^ 0xE0);
    println!(
        "# Figures 8–10 — pooled Precision@k / NDCG@k / tau_k on large graphs, scale={} queries={} expert_eps={expert_eps}",
        args.scale_name(),
        args.queries
    );
    let ks = [10usize, 20, 30, 40, 50];
    for dataset in args.datasets_or(&Dataset::LARGE) {
        let graph = load_dataset(dataset, args.scale);
        let queries = sample_query_nodes(&graph, args.queries, args.seed);
        let mut algos = roster(args.seed);
        for algo in &mut algos {
            algo.prepare(&graph);
        }
        // Collect each algorithm's top-(max k) list per query, timed.
        let max_k = *ks.last().expect("non-empty k sweep");
        let mut per_algo_lists: Vec<Vec<Vec<(u32, f64)>>> = vec![Vec::new(); algos.len()];
        let mut per_algo_time: Vec<Latencies> = vec![Latencies::new(); algos.len()];
        for &u in &queries {
            for (i, algo) in algos.iter_mut().enumerate() {
                let list = per_algo_time[i].time(|| algo.top_k(&graph, u, max_k));
                per_algo_lists[i].push(list);
            }
        }
        // Pool per query, then score every algorithm at every k.
        let pools: Vec<Pool> = queries
            .iter()
            .enumerate()
            .map(|(qi, &u)| {
                let lists: Vec<Vec<(u32, f64)>> = per_algo_lists
                    .iter()
                    .map(|lists| lists[qi].clone())
                    .collect();
                Pool::build(&graph, u, &lists, &expert, max_k)
            })
            .collect();
        for (i, algo) in algos.iter().enumerate() {
            println!(
                "{:<22} med_query={:.4}s p95={:.4}s",
                algo.name(),
                per_algo_time[i].median(),
                per_algo_time[i].p95()
            );
            println!(
                "  {:<4} {:>11} {:>9} {:>9}",
                "k", "precision", "ndcg", "tau"
            );
            for &k in &ks {
                let mut prec = Aggregate::default();
                let mut ndcg = Aggregate::default();
                let mut tau = Aggregate::default();
                for (qi, pool) in pools.iter().enumerate() {
                    let returned = &per_algo_lists[i][qi];
                    let returned_ids: Vec<u32> = returned.iter().map(|&(v, _)| v).collect();
                    let truth_ids = pool.truth_ids();
                    prec.push(metrics::precision_at_k(&returned_ids, &truth_ids, k));
                    ndcg.push(metrics::ndcg_at_k(
                        returned,
                        &pool.truth_top_k,
                        &pool.expert_scores,
                        k,
                    ));
                    tau.push(metrics::kendall_tau(&returned_ids, &pool.expert_scores, k));
                }
                println!(
                    "  {:<4} {:>11.4} {:>9.4} {:>9.4}",
                    k,
                    prec.mean(),
                    ndcg.mean(),
                    tau.mean()
                );
            }
        }
        println!();
    }
}
