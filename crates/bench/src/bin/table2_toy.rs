//! Regenerates **Table 2** of the paper: SimRank similarities with respect
//! to node `a` on the Figure 1 toy graph (`c' = 0.25`), computed by the
//! Power Method within 1e-5 error — and, as a bonus column, ProbeSim's
//! estimates at `εa = 0.025` to show the approximation at work.
//!
//! ```text
//! cargo run --release -p probesim-bench --bin table2_toy
//! ```

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use probesim_baselines::PowerMethod;
use probesim_core::{ProbeSim, ProbeSimConfig, Query};
use probesim_graph::toy::{toy_graph, A, LABELS, TABLE2, TOY_DECAY};

fn main() {
    let g = toy_graph();
    let truth = PowerMethod::ground_truth(TOY_DECAY).all_pairs(&g);
    let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.025, 0.01).with_seed(2017));
    let estimate = engine
        .session(&g)
        .run(Query::SingleSource { node: A })
        .expect("node a is a valid query")
        .scores;

    println!("# Table 2 — SimRank similarities with respect to node a (c' = 0.25)");
    println!();
    println!(
        "{:<6} {:>10} {:>10} {:>12}",
        "node", "paper", "power", "probesim"
    );
    let mut max_err_power = 0.0f64;
    let mut max_err_probesim = 0.0f64;
    for v in 0..8u32 {
        let paper = TABLE2[v as usize];
        let power = truth.get(A, v);
        let probesim = estimate.score(v);
        max_err_power = max_err_power.max((power - paper).abs());
        if v != A {
            max_err_probesim = max_err_probesim.max((probesim - power).abs());
        }
        println!(
            "{:<6} {:>10.4} {:>10.4} {:>12.4}",
            LABELS[v as usize], paper, power, probesim
        );
    }
    println!();
    println!("max |power − paper|    = {max_err_power:.4}   (paper prints 3–4 significant digits)");
    println!("max |probesim − power| = {max_err_probesim:.4}   (guarantee: ≤ 0.025 w.p. 0.99)");
}
