//! Regenerates **Figures 5, 6 and 7**: Precision@k, NDCG@k and Kendall τk
//! versus average query time for top-k SimRank queries (k = 50 by default,
//! the paper's setting) on the four small graphs, with exact ground truth
//! from the Power Method.
//!
//! ```text
//! cargo run --release -p probesim-bench --bin fig5_7_topk_small -- --scale ci --queries 10
//! ```

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use probesim_baselines::{MonteCarlo, TopSimConfig, TopSimVariant, TsfConfig};
use probesim_bench::{load_dataset, time_per_item, HarnessArgs};
use probesim_core::ProbeSimConfig;
use probesim_datasets::Dataset;
use probesim_eval::{
    metrics, sample_query_nodes, Aggregate, GroundTruth, McAlgo, ProbeSimAlgo, SimRankAlgorithm,
    TopSimAlgo, TsfAlgo,
};

const DECAY: f64 = 0.6;

fn roster(seed: u64) -> Vec<Box<dyn SimRankAlgorithm>> {
    let mut algos: Vec<Box<dyn SimRankAlgorithm>> = Vec::new();
    for eps in [0.1, 0.05, 0.025] {
        algos.push(Box::new(ProbeSimAlgo::new(
            ProbeSimConfig::paper(eps).with_seed(seed),
        )));
    }
    algos.push(Box::new(McAlgo::new(
        MonteCarlo::new(DECAY, 400).with_seed(seed ^ 1),
    )));
    algos.push(Box::new(TsfAlgo::new(TsfConfig {
        decay: DECAY,
        rg: 300,
        rq: 40,
        depth: 10,
        seed: seed ^ 2,
    })));
    for variant in [
        TopSimVariant::Exact,
        TopSimVariant::paper_truncated(),
        TopSimVariant::paper_priority(),
    ] {
        algos.push(Box::new(TopSimAlgo::new(TopSimConfig::paper(variant))));
    }
    algos
}

fn main() {
    let args = HarnessArgs::parse(10);
    println!(
        "# Figures 5–7 — Precision@k / NDCG@k / tau_k vs. query time (top-k, k={}), scale={} queries={}",
        args.k,
        args.scale_name(),
        args.queries
    );
    for dataset in args.datasets_or(&Dataset::SMALL) {
        let graph = load_dataset(dataset, args.scale);
        let truth = GroundTruth::compute(&graph, DECAY);
        let queries = sample_query_nodes(&graph, args.queries, args.seed);
        println!(
            "{:<22} {:>12} {:>11} {:>9} {:>9}",
            "algorithm", "med_query_s", "precision", "ndcg", "tau"
        );
        for mut algo in roster(args.seed) {
            algo.prepare(&graph);
            // Shared engine loop: per-query timing, median reported.
            let (top_lists, latency) =
                time_per_item(queries.iter().copied(), |u| algo.top_k(&graph, u, args.k));
            let mut prec_agg = Aggregate::default();
            let mut ndcg_agg = Aggregate::default();
            let mut tau_agg = Aggregate::default();
            for (&u, returned) in queries.iter().zip(&top_lists) {
                let truth_topk = truth.top_k(u, args.k);
                let truth_ids: Vec<_> = truth_topk.iter().map(|&(v, _)| v).collect();
                let returned_ids: Vec<_> = returned.iter().map(|&(v, _)| v).collect();
                let score_map = truth.score_map(u);
                prec_agg.push(metrics::precision_at_k(&returned_ids, &truth_ids, args.k));
                ndcg_agg.push(metrics::ndcg_at_k(
                    returned,
                    &truth_topk,
                    &score_map,
                    args.k,
                ));
                tau_agg.push(metrics::kendall_tau(&returned_ids, &score_map, args.k));
            }
            println!(
                "{:<22} {:>12.6} {:>11.4} {:>9.4} {:>9.4}",
                algo.name(),
                latency.median(),
                prec_agg.mean(),
                ndcg_agg.mean(),
                tau_agg.mean()
            );
        }
        println!();
    }
}
