//! Regenerates **Figure 4**: absolute error vs. average query time for
//! single-source SimRank queries on the four small graphs.
//!
//! Per the paper's protocol: query nodes are sampled uniformly from those
//! with nonzero in-degree; ground truth comes from the Power Method;
//! `AbsError = max_v |s(u,v) − s̃(u,v)|` averaged over queries. ProbeSim is
//! swept over `εa ∈ {0.1, 0.05, 0.025, 0.0125}`; MC over walk counts; TSF
//! (`Rg = 300, Rq = 40`) and the TopSim family (`T = 3`, `1/h = 100`,
//! `η = 0.001`, `H = 100`) are single points, exactly as in Section 6.1.
//!
//! ```text
//! cargo run --release -p probesim-bench --bin fig4_abs_error -- --scale ci --queries 10
//! ```

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use probesim_baselines::{MonteCarlo, TopSimConfig, TopSimVariant, TsfConfig};
use probesim_bench::{load_dataset, time_per_item, HarnessArgs};
use probesim_core::ProbeSimConfig;
use probesim_datasets::Dataset;
use probesim_eval::{
    metrics, sample_query_nodes, timed, Aggregate, GroundTruth, McAlgo, ProbeSimAlgo,
    SimRankAlgorithm, TopSimAlgo, TsfAlgo,
};

const DECAY: f64 = 0.6;

fn roster(seed: u64) -> Vec<Box<dyn SimRankAlgorithm>> {
    let mut algos: Vec<Box<dyn SimRankAlgorithm>> = Vec::new();
    for eps in [0.1, 0.05, 0.025, 0.0125] {
        algos.push(Box::new(ProbeSimAlgo::new(
            ProbeSimConfig::paper(eps).with_seed(seed),
        )));
    }
    for walks in [100, 400, 1600] {
        algos.push(Box::new(McAlgo::new(
            MonteCarlo::new(DECAY, walks).with_seed(seed ^ 1),
        )));
    }
    algos.push(Box::new(TsfAlgo::new(TsfConfig {
        decay: DECAY,
        rg: 300,
        rq: 40,
        depth: 10,
        seed: seed ^ 2,
    })));
    algos.push(Box::new(TopSimAlgo::new(TopSimConfig::paper(
        TopSimVariant::Exact,
    ))));
    algos.push(Box::new(TopSimAlgo::new(TopSimConfig::paper(
        TopSimVariant::paper_truncated(),
    ))));
    algos.push(Box::new(TopSimAlgo::new(TopSimConfig::paper(
        TopSimVariant::paper_priority(),
    ))));
    algos
}

fn main() {
    let args = HarnessArgs::parse(10);
    println!(
        "# Figure 4 — AbsError vs. query time (single-source), scale={} queries={} c={DECAY}",
        args.scale_name(),
        args.queries
    );
    for dataset in args.datasets_or(&Dataset::SMALL) {
        let graph = load_dataset(dataset, args.scale);
        let (truth, gt_secs) = timed(|| GroundTruth::compute(&graph, DECAY));
        println!("   ground truth (power method, 55 iters): {gt_secs:.1}s");
        let queries = sample_query_nodes(&graph, args.queries, args.seed);
        println!(
            "{:<22} {:>14} {:>14} {:>12} {:>12}",
            "algorithm", "med_query_s", "p95_query_s", "abs_error", "mean_error"
        );
        for mut algo in roster(args.seed) {
            algo.prepare(&graph);
            // The shared engine loop times each query individually and
            // reports order statistics instead of a mean.
            let (score_lists, latency) =
                time_per_item(queries.iter().copied(), |u| algo.single_source(&graph, u));
            let mut err_agg = Aggregate::default();
            let mut mean_err_agg = Aggregate::default();
            for (&u, scores) in queries.iter().zip(&score_lists) {
                err_agg.push(metrics::abs_error(truth.single_source(u), scores, u));
                mean_err_agg.push(metrics::mean_abs_error(truth.single_source(u), scores, u));
            }
            println!(
                "{:<22} {:>14.6} {:>14.6} {:>12.5} {:>12.6}",
                algo.name(),
                latency.median(),
                latency.p95(),
                err_agg.mean(),
                mean_err_agg.mean()
            );
        }
        println!();
    }
}
