//! The workload scenario engine.
//!
//! A **scenario** is a named, seeded, self-describing workload: which
//! graph, which query mix, which execution mode, and — for dynamic
//! scenarios — how edge updates interleave with live queries. The engine
//! runs a scenario and returns a [`ScenarioResult`] with per-query (and
//! per-update) wall-clock latencies plus merged
//! [`QueryStats`] counters; [`crate::report`] serializes that into the
//! `BENCH_<scenario>.json` files the CI perf gate consumes.
//!
//! The catalog ([`catalog`]) covers the full query surface of the session
//! API — static single-source / top-k / threshold, sequential and
//! parallel batches, session reuse vs. per-query allocation — and the
//! regime the paper is actually *about* but classic benchmark tables
//! never measure: queries racing a stream of edge insertions and
//! deletions on the overlay-backed [`probesim_graph::GraphStore`] at
//! configurable update:query ratios, both interleaved on one thread
//! ([`ScenarioKind::DynamicInterleaved`]) and genuinely concurrent — one
//! writer thread vs. N snapshot-reader threads
//! ([`ScenarioKind::StoreConcurrent`]) — (compare the evaluation
//! protocols of SLING/SimPush-style index-free systems and "Dynamical
//! SimRank Search on Time-Varying Networks").
//!
//! The timing primitives ([`Latencies`], [`time_per_item`]) are shared
//! with the paper-reproduction binaries, which report medians from the
//! same machinery instead of hand-rolled mean aggregates.

use std::hash::Hasher;
use std::time::{Duration, Instant};

use probesim_core::{IndexEngine, ProbeBudget, ProbeSim, ProbeSimConfig, Query, QueryStats};
use probesim_datasets::{sliding_window_workload, Dataset, Scale};
use probesim_eval::sample_query_nodes;
use probesim_fleet::{FaultPlan, Fleet, FleetError};
use probesim_graph::hash::FxHasher;
use probesim_graph::{CompactionPolicy, Edge, GraphStore, GraphView, NodeId};
use probesim_service::{Consistency, Priority, Request, ServiceBuilder, ServiceError};

/// A wall-clock latency recording with order statistics.
///
/// The scenario engine and the harness binaries both record per-item
/// timings here; medians and tail quantiles are what the reports emit
/// (mean-of-latencies hides exactly the tail a service cares about).
#[derive(Debug, Clone, Default)]
pub struct Latencies {
    samples: Vec<f64>,
}

impl Latencies {
    /// An empty recording.
    pub fn new() -> Latencies {
        Latencies::default()
    }

    /// Records one sample (seconds).
    pub fn push(&mut self, secs: f64) {
        self.samples.push(secs);
    }

    /// Times `f` and records the elapsed seconds, passing the value
    /// through.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let value = f();
        self.push(start.elapsed().as_secs_f64());
        value
    }

    /// Sample count.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean seconds (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Smallest sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Nearest-rank quantile `q ∈ [0, 1]` (0.0 when empty): `q = 0.5` is
    /// the median, `q = 0.95` the p95.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable_by(|a, b| {
            a.partial_cmp(b)
                .expect("invariant: latencies are never NaN")
        });
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[rank]
    }

    /// Median seconds.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th-percentile seconds.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The raw samples, in recording order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Runs `f` once per item, timing each call individually. Returns the
/// outputs and the latency recording — the shared measurement loop the
/// harness binaries use instead of private `for`-loops around `timed`.
pub fn time_per_item<I, T>(
    items: impl IntoIterator<Item = I>,
    mut f: impl FnMut(I) -> T,
) -> (Vec<T>, Latencies) {
    let mut latencies = Latencies::new();
    let outputs = items
        .into_iter()
        .map(|item| latencies.time(|| f(item)))
        .collect();
    (outputs, latencies)
}

/// What a scenario executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioKind {
    /// Sequential queries of one shape through a single pooled session.
    Static {
        /// The query shape to issue.
        shape: QueryShape,
    },
    /// A whole query list executed with `QuerySession::run_batch`,
    /// repeated; each latency sample is one batch divided by its length
    /// (per-query cost in the batch regime).
    SequentialBatch,
    /// The same list through `ProbeSim::par_batch`.
    ParBatch {
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// A query stream revisiting a small node set on one long-lived
    /// session — the pooled steady state a query service runs in.
    SessionReuseStream {
        /// How many times the node set is swept.
        sweeps: usize,
    },
    /// The same stream with a fresh session (fresh `O(n)` scratch) per
    /// query — the allocation-bound contrast to
    /// [`ScenarioKind::SessionReuseStream`].
    FreshSessionPerQuery,
    /// Queries interleaved with a sliding-window update stream on a
    /// single thread: each round applies `updates_per_round` events to a
    /// [`probesim_graph::GraphStore`], then issues `queries_per_round`
    /// queries against a fresh snapshot of the mutated graph.
    DynamicInterleaved {
        /// Edge events applied per round.
        updates_per_round: usize,
        /// Queries issued per round.
        queries_per_round: usize,
    },
    /// One writer thread racing `readers` reader threads over a shared
    /// [`probesim_graph::GraphStore`]: the writer applies the seeded
    /// update stream (paced to the readers' progress at the configured
    /// update:query ratio) and publishes a snapshot after every update;
    /// readers continuously pull the latest snapshot and answer queries
    /// from owned, version-pinned sessions — never blocking on the
    /// writer. Readers record the snapshot versions they observe
    /// (per-version consistency: versions never go backwards within a
    /// reader).
    StoreConcurrent {
        /// Reader thread count.
        readers: usize,
        /// Updates in the update:query ratio (e.g. 1 in "1:8").
        updates_per_round: usize,
        /// Queries in the update:query ratio (e.g. 8 in "1:8").
        queries_per_round: usize,
    },
    /// The full serving facade under concurrent mixed-priority load:
    /// one writer thread streams updates through
    /// `QueryService::commit` (paced to the clients' progress at the
    /// configured ratio) while `clients` threads issue deadline-armed
    /// requests of alternating [`probesim_service::Priority`] through
    /// blocking `call`s. Latencies are client-observed (queue + exec);
    /// work is scheduling-dependent (which version a call answers at
    /// depends on the race), so only latency/fingerprint gate it.
    ServiceInteractiveMix {
        /// Client thread count.
        clients: usize,
        /// Updates in the update:query ratio.
        updates_per_round: usize,
        /// Queries in the update:query ratio.
        queries_per_round: usize,
    },
    /// The result-cache scenario: a Zipf-repeated query stream issued
    /// sequentially against a quiescent `QueryService`, so each distinct
    /// `(version, query)` executes exactly once and every repeat is a
    /// cache hit. Deterministic given the seed — the reported
    /// `cache_hit_rate` is gated tightly by the CI comparator, and
    /// `query_stats` counts fresh executions only (cache hits add zero
    /// work, which is exactly the claim under test).
    ServiceCacheRepeat {
        /// Distinct query nodes behind the repeats.
        distinct: usize,
    },
    /// The replicated serving fleet under mixed-consistency load: one
    /// writer streams updates through `Fleet::commit` — the durable-log
    /// append that also drives the log-tailing replicas — while
    /// `clients` threads rotate through `Latest`, read-your-writes
    /// `AtLeastVersion` (chained from the writer's freshest commit
    /// token, spelled in the shared `Consistency` wire form), and
    /// `Pinned` requests against the consistency-aware router.
    /// Latencies are client-observed; work is scheduling-dependent
    /// (which endpoint answers, and at which version, depends on the
    /// race), so latency, the final-state fingerprint and a
    /// cross-replica agreement check gate it.
    FleetReplicated {
        /// Log-tailing replica count behind the router.
        replicas: usize,
        /// Client thread count.
        clients: usize,
        /// Updates in the update:query ratio.
        updates_per_round: usize,
        /// Queries in the update:query ratio.
        queries_per_round: usize,
    },
    /// The fleet-replicated mix under a **seeded fault plan**: the same
    /// 1-writer + mixed-consistency-client workload, with deterministic
    /// chaos (crashes, stalls, slow applies, corrupt local-log reads
    /// derived from the run seed) injected into the replicas while a
    /// fast supervision loop checkpoints the primary and respawns dead
    /// tailers. Work and latency are scheduling-dependent; the gate
    /// runs on latency and the post-recovery replica-agreement
    /// fingerprint, and the run reports recoveries, restarts and router
    /// failovers as informational counters.
    FleetChaos {
        /// Log-tailing replica count behind the router.
        replicas: usize,
        /// Client thread count.
        clients: usize,
        /// Updates in the update:query ratio.
        updates_per_round: usize,
        /// Queries in the update:query ratio.
        queries_per_round: usize,
    },
    /// The contribution-index engine ([`probesim_core::IndexEngine`]) on
    /// a static graph: a query stream revisiting `distinct` sources under
    /// rotating query shapes, so the first visit to each source builds
    /// its truncated reverse-PPR row (full probe work) and every revisit
    /// — whatever the query kind — replays it in `O(row)`. The contrast
    /// gate pins the resulting work reduction against
    /// `probe_static_fused`, which answers the same query budget
    /// index-free.
    IndexStatic {
        /// Distinct query sources behind the rotating stream.
        distinct: usize,
    },
    /// The contribution-index engine racing a live update stream: each
    /// round applies `updates_per_round` events to a
    /// [`probesim_graph::GraphStore`] whose mutation observer feeds the
    /// index's dirty queue, drains one lazy repair, then issues
    /// `queries_per_round` queries over `distinct` revisited sources —
    /// fresh rows replay, stale rows fall back to the build-through that
    /// doubles as the rebuild. The per-query replay/build-through
    /// decisions are hashed into the seed-deterministic planner
    /// fingerprint the comparator gates.
    IndexChurn {
        /// Distinct query sources behind the rotating stream.
        distinct: usize,
        /// Edge events applied per round.
        updates_per_round: usize,
        /// Queries issued per round.
        queries_per_round: usize,
    },
}

/// The query shape a static scenario issues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryShape {
    /// `Query::SingleSource`.
    SingleSource,
    /// `Query::TopK` with this `k`.
    TopK(usize),
    /// `Query::Threshold` with this `tau`.
    Threshold(f64),
}

impl QueryShape {
    fn for_node(self, node: NodeId) -> Query {
        match self {
            QueryShape::SingleSource => Query::SingleSource { node },
            QueryShape::TopK(k) => Query::TopK { node, k },
            QueryShape::Threshold(tau) => Query::Threshold { node, tau },
        }
    }
}

/// Which graph a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphSource {
    /// A registry dataset at the run's [`Scale`].
    Dataset(Dataset),
    /// A warmed-up sliding-window stream graph (dynamic scenarios):
    /// `n` nodes, `window` live edges, both scaled down at CI scale.
    SlidingWindow {
        /// Node count at laptop scale.
        n: usize,
        /// Live-edge window at laptop scale.
        window: usize,
    },
}

/// A named, self-describing workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Unique name (the report file suffix and comparator join key).
    pub name: &'static str,
    /// One-line description of what the scenario measures.
    pub description: &'static str,
    /// The graph it runs on.
    pub graph: GraphSource,
    /// What it executes.
    pub kind: ScenarioKind,
    /// Engine accuracy parameter εa.
    pub epsilon: f64,
    /// Query-node sample size (for dynamic scenarios: per full run).
    pub queries: usize,
    /// Whether the engine runs the fused probe engine (the library
    /// default) or the legacy per-prefix path. The `*_fused`/`*_legacy`
    /// contrast pairs flip only this bit.
    pub fuse_probes: bool,
    /// Whether the engine partitions fused frontiers across scoped
    /// expansion threads ([`probesim_core::Optimizations::parallel_sweep`]).
    /// Deterministic work is unchanged by design; the randomized/hybrid
    /// draws come from per-chunk RNG streams, so a scenario flipping this
    /// bit carries its own workload baseline.
    pub parallel_sweep: bool,
    /// Whether dynamic scenarios build their store degree-ordered
    /// ([`probesim_graph::GraphStore::from_view_degree_ordered`]): hubs
    /// first in CSR storage, external ids preserved at the query
    /// boundary.
    pub relabel: bool,
}

impl ScenarioSpec {
    /// True for workloads that apply edge updates (interleaved or
    /// concurrent).
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self.kind,
            ScenarioKind::DynamicInterleaved { .. }
                | ScenarioKind::StoreConcurrent { .. }
                | ScenarioKind::ServiceInteractiveMix { .. }
                | ScenarioKind::FleetReplicated { .. }
                | ScenarioKind::FleetChaos { .. }
                | ScenarioKind::IndexChurn { .. }
        )
    }

    /// The report `kind` label.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            ScenarioKind::DynamicInterleaved { .. } => "dynamic",
            ScenarioKind::StoreConcurrent { .. } => "concurrent",
            ScenarioKind::ServiceInteractiveMix { .. }
            | ScenarioKind::ServiceCacheRepeat { .. } => "service",
            ScenarioKind::FleetReplicated { .. } | ScenarioKind::FleetChaos { .. } => "fleet",
            ScenarioKind::IndexStatic { .. } | ScenarioKind::IndexChurn { .. } => "index",
            _ => "static",
        }
    }

    /// False when per-run query work depends on thread scheduling (the
    /// concurrent store scenarios, the concurrent service mix and the
    /// replicated fleet: which snapshot version a reader sees is
    /// timing-dependent), so the `--compare` gate must not treat
    /// `total_work` as a deterministic signal.
    pub fn work_deterministic(&self) -> bool {
        !matches!(
            self.kind,
            ScenarioKind::StoreConcurrent { .. }
                | ScenarioKind::ServiceInteractiveMix { .. }
                | ScenarioKind::FleetReplicated { .. }
                | ScenarioKind::FleetChaos { .. }
        )
    }
}

/// The measured outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario that ran.
    pub spec: ScenarioSpec,
    /// Seed the run used.
    pub seed: u64,
    /// Scale name ("ci" / "laptop" / "paper").
    pub scale_name: &'static str,
    /// Dataset / generator label.
    pub dataset: String,
    /// Node count of the benchmarked graph.
    pub nodes: usize,
    /// Edge count at scenario start.
    pub edges: usize,
    /// εa the engine ran with.
    pub epsilon: f64,
    /// Queries actually executed. Equals `query_latency.count()` except
    /// for batch scenarios, where one latency sample covers a whole
    /// batch (5 reps × list size queries).
    pub queries_executed: usize,
    /// Per-query latencies (per-batch-÷-size for batch scenarios).
    pub query_latency: Latencies,
    /// Per-update latencies (dynamic scenarios only).
    pub update_latency: Option<Latencies>,
    /// Counters merged over every query of the run.
    pub query_stats: QueryStats,
    /// Order-sensitive hash of the final edge list (dynamic scenarios
    /// only), streamed through the store's non-allocating `edges_iter` —
    /// a deterministic witness that baseline and current runs replayed
    /// the same update stream.
    pub final_state_hash: Option<u64>,
    /// Whether `query_stats` is a pure function of `(spec, scale, seed)`
    /// (false for the concurrent store scenarios, where the snapshot
    /// version each reader sees is timing-dependent).
    pub work_deterministic: bool,
    /// Distinct snapshot versions the reader threads observed
    /// (concurrent store scenarios only).
    pub versions_observed: Option<u64>,
    /// Responses served from the result cache (service scenarios only).
    pub cache_hits: Option<u64>,
    /// Cache hit rate over the whole stream — reported only when it is
    /// deterministic given the seed (the sequential cache-repeat
    /// scenario), where the CI comparator gates it tightly.
    pub cache_hit_rate: Option<f64>,
    /// Requests aborted by their deadline (service scenarios only;
    /// informational — wall-clock dependent).
    pub deadline_exceeded: Option<u64>,
    /// Supervisor recoveries performed — checkpoint + genesis respawns
    /// (chaos fleet scenario only; informational).
    pub recoveries: Option<u64>,
    /// Replica respawns recorded by the registry (chaos fleet scenario
    /// only; informational).
    pub restarts: Option<u64>,
    /// Router failovers after an endpoint died or regressed under a
    /// dispatched request (chaos fleet scenario only; informational).
    pub failovers: Option<u64>,
    /// Order-sensitive hash of the per-query engine decisions the run
    /// made (index scenarios only): 1 for a row replay, 2 for a stale
    /// build-through. Seed-deterministic by construction, so the
    /// comparator gates it exactly — a planner that starts deciding
    /// differently on the same workload fails loudly even when the work
    /// totals happen to cancel out.
    pub planner_fingerprint: Option<u64>,
}

/// The full scenario catalog, in a stable order.
///
/// Twenty-four scenarios: six static (query shapes × execution modes),
/// one allocation contrast, three update-interleaved dynamic workloads
/// at different update:query ratios, two concurrent 1-writer/N-reader
/// store workloads, two fused-vs-legacy probe-engine contrast pairs
/// (one static, one dynamic), two `QueryService` serving workloads
/// (a concurrent mixed-priority deadline mix and the deterministic
/// cache-repeat stream), two replicated-fleet workloads (1 writer
/// committing through the durable log, log-tailing replicas, and
/// mixed-consistency clients behind the consistency-aware router —
/// once fault-free, once under a seeded chaos plan with supervised
/// crash recovery), two contribution-index engine workloads (a static
/// revisit stream contrasted against the index-free `probe_static_fused`
/// budget, and a churn stream exercising replay / stale fallback / lazy
/// repair against `dynamic_churn_balanced`), and two tier-4 locality
/// workloads (the parallel
/// fused sweep at a pinned thread count, and the degree-ordered
/// relabeled store).
pub fn catalog() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            name: "static_single_source",
            description: "sequential single-source queries, pooled session, HepTh-like graph",
            graph: GraphSource::Dataset(Dataset::HepTh),
            kind: ScenarioKind::Static {
                shape: QueryShape::SingleSource,
            },
            epsilon: 0.1,
            queries: 20,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "static_top_k",
            description: "sequential top-50 queries on the locally dense Wiki-Vote analogue",
            graph: GraphSource::Dataset(Dataset::WikiVote),
            kind: ScenarioKind::Static {
                shape: QueryShape::TopK(50),
            },
            epsilon: 0.1,
            queries: 20,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "static_threshold",
            description: "sequential threshold (s > 0.05) queries on the AS topology analogue",
            graph: GraphSource::Dataset(Dataset::As),
            kind: ScenarioKind::Static {
                shape: QueryShape::Threshold(0.05),
            },
            epsilon: 0.1,
            queries: 20,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "batch_sequential",
            description: "top-10 query list via run_batch on one session (per-query cost)",
            graph: GraphSource::Dataset(Dataset::HepTh),
            kind: ScenarioKind::SequentialBatch,
            epsilon: 0.1,
            queries: 16,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "batch_parallel",
            description: "the same query list via par_batch across per-thread sessions",
            graph: GraphSource::Dataset(Dataset::HepTh),
            kind: ScenarioKind::ParBatch { threads: 0 },
            epsilon: 0.1,
            queries: 16,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "session_reuse_stream",
            description: "8-node query stream swept repeatedly on one pooled session",
            graph: GraphSource::Dataset(Dataset::As),
            kind: ScenarioKind::SessionReuseStream { sweeps: 4 },
            epsilon: 0.1,
            queries: 8,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "fresh_session_per_query",
            description: "the same stream with fresh O(n) scratch per query (allocation cost)",
            graph: GraphSource::Dataset(Dataset::As),
            kind: ScenarioKind::FreshSessionPerQuery,
            epsilon: 0.1,
            queries: 8,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "dynamic_churn_balanced",
            description: "overlay-backed store, sliding-window stream, 1 update : 1 query",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 120_000,
            },
            kind: ScenarioKind::DynamicInterleaved {
                updates_per_round: 1,
                queries_per_round: 1,
            },
            epsilon: 0.1,
            queries: 24,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "dynamic_update_heavy",
            description: "overlay-backed store, 10 updates : 1 query (write-dominated stream)",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 120_000,
            },
            kind: ScenarioKind::DynamicInterleaved {
                updates_per_round: 10,
                queries_per_round: 1,
            },
            epsilon: 0.1,
            queries: 24,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "dynamic_read_heavy",
            description: "overlay-backed store, 1 update : 8 queries (read-dominated stream)",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 120_000,
            },
            kind: ScenarioKind::DynamicInterleaved {
                updates_per_round: 1,
                queries_per_round: 8,
            },
            epsilon: 0.1,
            queries: 24,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        // Concurrent serving scenarios: 1 writer thread racing snapshot
        // readers over a GraphStore. Latencies are gated per role
        // (query_latency = readers, update_latency = writer); total_work
        // is reported but not gated — which snapshot version a reader
        // sees is timing-dependent.
        ScenarioSpec {
            name: "store_concurrent_balanced",
            description: "GraphStore: 1 writer vs 4 snapshot readers, 1 update : 1 query",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 120_000,
            },
            kind: ScenarioKind::StoreConcurrent {
                readers: 4,
                updates_per_round: 1,
                queries_per_round: 1,
            },
            epsilon: 0.1,
            queries: 32,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "store_concurrent_read_heavy",
            description: "GraphStore: 1 writer vs 4 snapshot readers, 1 update : 8 queries",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 120_000,
            },
            kind: ScenarioKind::StoreConcurrent {
                readers: 4,
                updates_per_round: 1,
                queries_per_round: 8,
            },
            epsilon: 0.1,
            queries: 48,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        // Fused-vs-legacy probe contrast pairs: identical workloads, only
        // the `fuse_probes` bit differs. `probesim-bench --contrast` pairs
        // them by the `_fused`/`_legacy` suffix and gates the minimum
        // deterministic work reduction.
        ScenarioSpec {
            name: "probe_static_fused",
            description: "probe-heavy single-source on dense Wiki-Vote, fused frontier engine",
            graph: GraphSource::Dataset(Dataset::WikiVote),
            kind: ScenarioKind::Static {
                shape: QueryShape::SingleSource,
            },
            epsilon: 0.1,
            queries: 12,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "probe_static_legacy",
            description: "the same probe-heavy workload on the legacy per-prefix path",
            graph: GraphSource::Dataset(Dataset::WikiVote),
            kind: ScenarioKind::Static {
                shape: QueryShape::SingleSource,
            },
            epsilon: 0.1,
            queries: 12,
            fuse_probes: false,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "probe_dynamic_fused",
            description: "probe-heavy queries racing a live update stream, fused engine",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 160_000,
            },
            kind: ScenarioKind::DynamicInterleaved {
                updates_per_round: 1,
                queries_per_round: 2,
            },
            epsilon: 0.1,
            queries: 12,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "probe_dynamic_legacy",
            description: "the same dynamic probe-heavy workload on the per-prefix path",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 160_000,
            },
            kind: ScenarioKind::DynamicInterleaved {
                updates_per_round: 1,
                queries_per_round: 2,
            },
            epsilon: 0.1,
            queries: 12,
            fuse_probes: false,
            parallel_sweep: false,
            relabel: false,
        },
        // QueryService serving scenarios: the whole stack behind one
        // handle. The interactive mix races 1 writer against N clients
        // with deadlines armed (latency + fingerprint gated; work is
        // scheduling-dependent); the cache-repeat stream is sequential
        // and deterministic, so its cache_hit_rate and total_work are
        // gated tightly.
        ScenarioSpec {
            name: "service_interactive_mix",
            description: "QueryService: 1 writer + 3 clients, mixed priorities, deadlines armed",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 120_000,
            },
            kind: ScenarioKind::ServiceInteractiveMix {
                clients: 3,
                updates_per_round: 1,
                queries_per_round: 4,
            },
            epsilon: 0.1,
            queries: 32,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "service_cache_repeat",
            description: "QueryService: Zipf-repeated query stream through the result cache",
            graph: GraphSource::Dataset(Dataset::HepTh),
            kind: ScenarioKind::ServiceCacheRepeat { distinct: 10 },
            epsilon: 0.1,
            queries: 40,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        // The replicated fleet: durable log + log-tailing replicas +
        // consistency-aware router as one serving surface. Work is
        // scheduling-dependent (which endpoint answers, at which
        // version), so the gate runs on latency, the final-state
        // fingerprint, and the in-run cross-replica agreement check.
        ScenarioSpec {
            name: "fleet_replicated_serving",
            description: "Fleet: 1 writer + 3 replicas, Latest/AtLeastVersion/Pinned client mix",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 120_000,
            },
            kind: ScenarioKind::FleetReplicated {
                replicas: 3,
                clients: 3,
                updates_per_round: 1,
                queries_per_round: 4,
            },
            epsilon: 0.1,
            queries: 32,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        // The same fleet mix under a seeded fault plan: replicas crash,
        // stall and detect corrupt log reads mid-run while the
        // supervisor checkpoints and respawns them. The run must still
        // serve the client mix and end with every replica bit-agreeing
        // with the primary; recoveries/restarts/failovers ride along as
        // informational counters.
        ScenarioSpec {
            name: "fleet_chaos_recovery",
            description: "Fleet under seeded chaos: crashes + salvage + supervised recovery",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 120_000,
            },
            kind: ScenarioKind::FleetChaos {
                replicas: 3,
                clients: 3,
                updates_per_round: 1,
                queries_per_round: 4,
            },
            epsilon: 0.1,
            queries: 32,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        // Tier-4 locality scenarios: the same balanced dynamic stream as
        // dynamic_churn_balanced, once with the intra-query parallel
        // sweep pinned at 4 threads (deterministic strategy work is
        // unchanged; the counters gate that invariant on real
        // workloads), once with the store built degree-ordered (the
        // relabeling must be answer-invisible, so the fingerprint hash
        // doubles as the correctness gate).
        // The second engine: the PRSim-style contribution index. The
        // static stream revisits 3 sources under rotating query shapes,
        // so the first visit builds a truncated row (full probe work)
        // and every revisit replays it in O(row); the cross-engine
        // contrast pair pins the work reduction against
        // probe_static_fused, which spends the same 12-query budget
        // index-free on the same graph. The churn variant wires the
        // store's mutation observer into the repair queue, drains one
        // lazy repair per round, and gates the seed-deterministic
        // replay/build-through decision fingerprint.
        ScenarioSpec {
            name: "index_static_contrast",
            description: "contribution-index engine: 3 sources revisited under rotating shapes",
            graph: GraphSource::Dataset(Dataset::WikiVote),
            kind: ScenarioKind::IndexStatic { distinct: 3 },
            epsilon: 0.1,
            queries: 12,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "index_dynamic_churn",
            description: "contribution-index engine racing a live update stream with lazy repair",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 120_000,
            },
            kind: ScenarioKind::IndexChurn {
                distinct: 3,
                updates_per_round: 1,
                queries_per_round: 8,
            },
            epsilon: 0.1,
            queries: 24,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: false,
        },
        ScenarioSpec {
            name: "probe_parallel_sweep",
            description: "balanced dynamic stream with the parallel fused sweep (4 threads)",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 120_000,
            },
            kind: ScenarioKind::DynamicInterleaved {
                updates_per_round: 1,
                queries_per_round: 1,
            },
            epsilon: 0.1,
            queries: 24,
            fuse_probes: true,
            parallel_sweep: true,
            relabel: false,
        },
        ScenarioSpec {
            name: "probe_relabel_locality",
            description: "balanced dynamic stream on a degree-ordered (hub-first) store",
            graph: GraphSource::SlidingWindow {
                n: 20_000,
                window: 120_000,
            },
            kind: ScenarioKind::DynamicInterleaved {
                updates_per_round: 1,
                queries_per_round: 1,
            },
            epsilon: 0.1,
            queries: 24,
            fuse_probes: true,
            parallel_sweep: false,
            relabel: true,
        },
    ]
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<ScenarioSpec> {
    catalog().into_iter().find(|spec| spec.name == name)
}

/// Scale name for reports.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Ci => "ci",
        Scale::Laptop => "laptop",
        Scale::Paper => "paper",
    }
}

/// Shrinks dynamic-scenario sizes the same way the dataset registry
/// shrinks its graphs: CI runs are ~20× smaller than laptop runs.
fn scaled(scale: Scale, size: usize) -> usize {
    match scale {
        Scale::Ci => (size / 20).max(64),
        Scale::Laptop | Scale::Paper => size,
    }
}

/// Executes one scenario. Deterministic in `(spec, scale, seed)`: the
/// graph, the update stream, the query nodes and the engine RNG are all
/// derived from `seed`, so the work counters in the result are exactly
/// reproducible (latencies, of course, are not).
pub fn run_scenario(spec: &ScenarioSpec, scale: Scale, seed: u64) -> ScenarioResult {
    let mut config = ProbeSimConfig::paper(spec.epsilon).with_seed(seed);
    config.optimizations.fuse_probes = spec.fuse_probes;
    if spec.parallel_sweep {
        // A fixed thread count keeps the randomized chunk-RNG layout —
        // and therefore the gated work counters — machine-independent.
        config.optimizations.parallel_sweep = true;
        config.optimizations.sweep_threads = 4;
    }
    let engine = ProbeSim::new(config);
    match spec.kind {
        ScenarioKind::DynamicInterleaved {
            updates_per_round,
            queries_per_round,
        } => run_dynamic(
            spec,
            scale,
            seed,
            &engine,
            updates_per_round,
            queries_per_round,
        ),
        ScenarioKind::StoreConcurrent {
            readers,
            updates_per_round,
            queries_per_round,
        } => run_store_concurrent(
            spec,
            scale,
            seed,
            &engine,
            readers,
            updates_per_round,
            queries_per_round,
        ),
        ScenarioKind::ServiceInteractiveMix {
            clients,
            updates_per_round,
            queries_per_round,
        } => run_service_interactive_mix(
            spec,
            scale,
            seed,
            &engine,
            clients,
            updates_per_round,
            queries_per_round,
        ),
        ScenarioKind::ServiceCacheRepeat { distinct } => {
            run_service_cache_repeat(spec, scale, seed, &engine, distinct)
        }
        ScenarioKind::FleetReplicated {
            replicas,
            clients,
            updates_per_round,
            queries_per_round,
        } => run_fleet_replicated(
            spec,
            scale,
            seed,
            &engine,
            replicas,
            clients,
            updates_per_round,
            queries_per_round,
            false,
        ),
        ScenarioKind::FleetChaos {
            replicas,
            clients,
            updates_per_round,
            queries_per_round,
        } => run_fleet_replicated(
            spec,
            scale,
            seed,
            &engine,
            replicas,
            clients,
            updates_per_round,
            queries_per_round,
            true,
        ),
        ScenarioKind::IndexStatic { distinct } => {
            run_index_static(spec, scale, seed, &engine, distinct)
        }
        ScenarioKind::IndexChurn {
            distinct,
            updates_per_round,
            queries_per_round,
        } => run_index_churn(
            spec,
            scale,
            seed,
            &engine,
            distinct,
            updates_per_round,
            queries_per_round,
        ),
        _ => run_static(spec, scale, seed, &engine),
    }
}

fn run_static(spec: &ScenarioSpec, scale: Scale, seed: u64, engine: &ProbeSim) -> ScenarioResult {
    let GraphSource::Dataset(dataset) = spec.graph else {
        panic!(
            "scenario {}: static kinds require a Dataset graph source",
            spec.name
        );
    };
    let graph = dataset.generate(scale);
    let nodes = sample_query_nodes(&graph, spec.queries, seed);
    let mut query_latency = Latencies::new();
    let mut query_stats = QueryStats::default();
    let mut queries_executed = 0usize;

    match spec.kind {
        ScenarioKind::Static { shape } => {
            let mut session = engine.session(&graph);
            for &u in &nodes {
                let output = query_latency
                    .time(|| session.run(shape.for_node(u)))
                    .expect("invariant: sampled query nodes are valid");
                query_stats.merge(&output.stats);
                queries_executed += 1;
            }
        }
        ScenarioKind::SequentialBatch | ScenarioKind::ParBatch { .. } => {
            let queries: Vec<Query> = nodes
                .iter()
                .map(|&node| Query::TopK { node, k: 10 })
                .collect();
            // Five batch repetitions; each sample is one batch divided by
            // its size, i.e. achieved per-query cost in the batch regime.
            for rep in 0..5 {
                let batch = match spec.kind {
                    ScenarioKind::SequentialBatch => {
                        let mut session = engine.session(&graph);
                        let start = Instant::now();
                        let batch = session.run_batch(&queries);
                        query_latency
                            .push(start.elapsed().as_secs_f64() / queries.len().max(1) as f64);
                        batch
                    }
                    ScenarioKind::ParBatch { threads } => {
                        let start = Instant::now();
                        let batch = engine.par_batch(&graph, &queries, threads);
                        query_latency
                            .push(start.elapsed().as_secs_f64() / queries.len().max(1) as f64);
                        batch
                    }
                    _ => unreachable!("query kinds are matched exhaustively above"),
                }
                .expect("invariant: sampled query nodes are valid");
                queries_executed += queries.len();
                if rep == 0 {
                    // Per-query RNG derivation makes every repetition
                    // identical work; count it once.
                    query_stats.merge(&batch.stats);
                }
            }
        }
        ScenarioKind::SessionReuseStream { sweeps } => {
            let mut session = engine.session(&graph);
            for _ in 0..sweeps {
                for &u in &nodes {
                    let output = query_latency
                        .time(|| session.run(Query::SingleSource { node: u }))
                        .expect("invariant: sampled query nodes are valid");
                    query_stats.merge(&output.stats);
                    queries_executed += 1;
                }
            }
        }
        ScenarioKind::FreshSessionPerQuery => {
            for _ in 0..4 {
                for &u in &nodes {
                    let output = query_latency
                        .time(|| {
                            // Fresh O(n) scratch inside the timed region —
                            // the cost the pooled stream scenario avoids.
                            engine.session(&graph).run(Query::SingleSource { node: u })
                        })
                        .expect("invariant: sampled query nodes are valid");
                    query_stats.merge(&output.stats);
                    queries_executed += 1;
                }
            }
        }
        ScenarioKind::DynamicInterleaved { .. }
        | ScenarioKind::StoreConcurrent { .. }
        | ScenarioKind::ServiceInteractiveMix { .. }
        | ScenarioKind::ServiceCacheRepeat { .. }
        | ScenarioKind::FleetReplicated { .. }
        | ScenarioKind::FleetChaos { .. }
        | ScenarioKind::IndexStatic { .. }
        | ScenarioKind::IndexChurn { .. } => {
            unreachable!("handled by the dedicated run_* dispatchers")
        }
    }

    ScenarioResult {
        spec: *spec,
        seed,
        scale_name: scale_name(scale),
        dataset: dataset.name().to_string(),
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        epsilon: spec.epsilon,
        queries_executed,
        query_latency,
        update_latency: None,
        query_stats,
        final_state_hash: None,
        work_deterministic: spec.work_deterministic(),
        versions_observed: None,
        cache_hits: None,
        cache_hit_rate: None,
        deadline_exceeded: None,
        recoveries: None,
        restarts: None,
        failovers: None,
        planner_fingerprint: None,
    }
}

/// Order-sensitive FxHash of a graph's sorted edge list, streamed
/// through a non-allocating `edges_iter`.
fn graph_state_hash(num_nodes: usize, edges: impl Iterator<Item = Edge>) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write_u64(num_nodes as u64);
    for (u, v) in edges {
        hasher.write_u32(u);
        hasher.write_u32(v);
    }
    hasher.finish()
}

/// Order-sensitive FxHash of the per-query engine decisions an index
/// scenario made (1 = row replay, 2 = stale build-through). The codes
/// are a pure function of `(spec, scale, seed)`, so the comparator can
/// gate the hash exactly.
fn planner_decision_fingerprint(decisions: &[u8]) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write_u64(decisions.len() as u64);
    hasher.write(decisions);
    hasher.finish()
}

/// The query shapes the index scenarios rotate through: every kind is
/// answerable from the same cached row, which is exactly the claim the
/// replay path makes.
const INDEX_SHAPES: [QueryShape; 3] = [
    QueryShape::SingleSource,
    QueryShape::TopK(10),
    QueryShape::Threshold(0.05),
];

/// The query for visit `i` of an index scenario: sources cycle fastest,
/// shapes rotate across revisits — so visit 1 of each source is the row
/// build and later visits replay the same row under a different query
/// kind.
fn index_visit_query(sources: &[NodeId], i: usize) -> Query {
    let u = sources
        .get(i % sources.len().max(1))
        .copied()
        .expect("invariant: the query-node sample is non-empty");
    INDEX_SHAPES
        .get((i / sources.len().max(1)) % INDEX_SHAPES.len())
        .expect("invariant: INDEX_SHAPES is non-empty")
        .for_node(u)
}

fn run_index_static(
    spec: &ScenarioSpec,
    scale: Scale,
    seed: u64,
    engine: &ProbeSim,
    distinct: usize,
) -> ScenarioResult {
    let GraphSource::Dataset(dataset) = spec.graph else {
        unreachable!("catalog invariant: IndexStatic scenarios use a Dataset graph source")
    };
    let graph = dataset.generate(scale);
    let sources = sample_query_nodes(&graph, distinct.max(1), seed);
    let mut index = IndexEngine::new();
    let mut session = engine.session(&graph);
    let mut query_latency = Latencies::new();
    let mut query_stats = QueryStats::default();
    let mut decisions = Vec::with_capacity(spec.queries);
    for i in 0..spec.queries {
        let query = index_visit_query(&sources, i);
        // The graph never changes, so version 0 stands for the whole
        // run: the first visit to a source installs its row, every
        // revisit replays it.
        let output = query_latency
            .time(|| index.run(&mut session, 0, query, ProbeBudget::unlimited()))
            .expect("invariant: sampled query nodes are valid");
        decisions.push(if output.stats.index_rows_stale > 0 {
            2
        } else {
            1
        });
        query_stats.merge(&output.stats);
    }
    ScenarioResult {
        spec: *spec,
        seed,
        scale_name: scale_name(scale),
        dataset: dataset.name().to_string(),
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        epsilon: spec.epsilon,
        queries_executed: spec.queries,
        query_latency,
        update_latency: None,
        query_stats,
        final_state_hash: None,
        work_deterministic: spec.work_deterministic(),
        versions_observed: None,
        cache_hits: None,
        cache_hit_rate: None,
        deadline_exceeded: None,
        recoveries: None,
        restarts: None,
        failovers: None,
        planner_fingerprint: Some(planner_decision_fingerprint(&decisions)),
    }
}

fn run_index_churn(
    spec: &ScenarioSpec,
    scale: Scale,
    seed: u64,
    engine: &ProbeSim,
    distinct: usize,
    updates_per_round: usize,
    queries_per_round: usize,
) -> ScenarioResult {
    use std::sync::{Arc, Mutex};

    let GraphSource::SlidingWindow { n, window } = spec.graph else {
        unreachable!("catalog invariant: IndexChurn scenarios use a SlidingWindow graph source")
    };
    let n = scaled(scale, n);
    let window = scaled(scale, window);
    let rounds = spec.queries.div_ceil(queries_per_round.max(1));
    let total_updates = rounds * updates_per_round;
    let (graph, updates) = sliding_window_workload(n, window, total_updates, seed ^ 0x5EED);
    let mut store = GraphStore::from_view(&graph);
    drop(graph);
    let start_edges = store.num_edges();
    let sources = sample_query_nodes(&store, distinct.max(1), seed);
    // The service wiring in miniature: every effective mutation flows
    // through the store's observer into the index's dirty queue. The
    // mutex exists only because the observer must be Send + Sync; the
    // whole scenario is single-threaded.
    let index = Arc::new(Mutex::new(IndexEngine::new()));
    store.set_mutation_observer({
        let index = Arc::clone(&index);
        move |version| index.lock().expect("index poisoned").note_update(version)
    });

    let mut query_latency = Latencies::new();
    let mut update_latency = Latencies::new();
    let mut query_stats = QueryStats::default();
    let mut decisions = Vec::with_capacity(spec.queries);
    let mut update_iter = updates.into_iter();
    let mut next_query = 0usize;
    for _ in 0..rounds {
        for update in update_iter.by_ref().take(updates_per_round) {
            update_latency.time(|| store.apply(update));
        }
        let version = store.version();
        let mut session = engine.session(store.snapshot());
        // One lazy repair per round — the off-query-path maintenance the
        // service tier schedules. Rows the repair does not reach fall
        // back to the build-through that doubles as their rebuild.
        index
            .lock()
            .expect("index poisoned")
            .repair_next(&mut session, version);
        for _ in 0..queries_per_round {
            if next_query >= spec.queries {
                break;
            }
            let query = index_visit_query(&sources, next_query);
            next_query += 1;
            let output = query_latency
                .time(|| {
                    index.lock().expect("index poisoned").run(
                        &mut session,
                        version,
                        query,
                        ProbeBudget::unlimited(),
                    )
                })
                .expect("invariant: query nodes stay valid under edge churn");
            decisions.push(if output.stats.index_rows_stale > 0 {
                2
            } else {
                1
            });
            query_stats.merge(&output.stats);
        }
    }

    ScenarioResult {
        spec: *spec,
        seed,
        scale_name: scale_name(scale),
        dataset: format!("sliding_window(n={n}, window={window})"),
        nodes: n,
        edges: start_edges,
        epsilon: spec.epsilon,
        queries_executed: next_query,
        query_latency,
        update_latency: Some(update_latency),
        query_stats,
        final_state_hash: Some(graph_state_hash(n, store.edges_iter())),
        work_deterministic: spec.work_deterministic(),
        versions_observed: None,
        cache_hits: None,
        cache_hit_rate: None,
        deadline_exceeded: None,
        recoveries: None,
        restarts: None,
        failovers: None,
        planner_fingerprint: Some(planner_decision_fingerprint(&decisions)),
    }
}

fn run_dynamic(
    spec: &ScenarioSpec,
    scale: Scale,
    seed: u64,
    engine: &ProbeSim,
    updates_per_round: usize,
    queries_per_round: usize,
) -> ScenarioResult {
    let GraphSource::SlidingWindow { n, window } = spec.graph else {
        panic!(
            "scenario {}: dynamic kinds require a SlidingWindow graph source",
            spec.name
        );
    };
    let n = scaled(scale, n);
    let window = scaled(scale, window);
    let rounds = spec.queries.div_ceil(queries_per_round.max(1));
    let total_updates = rounds * updates_per_round;
    let (graph, updates) = sliding_window_workload(n, window, total_updates, seed ^ 0x5EED);
    // The overlay-backed store is the serving path: updates mutate the
    // copy-on-write overlay, every query binds a fresh published
    // snapshot. Identical edge sets mean identical estimates and work
    // counters to the old direct-DynamicGraph path, bit for bit. The
    // relabel variant stores the same graph degree-ordered; queries stay
    // in external ids, so the fingerprint hash below is unaffected.
    let mut store = if spec.relabel {
        GraphStore::from_view_degree_ordered(&graph).with_degree_order_refresh(true)
    } else {
        GraphStore::from_view(&graph)
    };
    drop(graph);
    let start_edges = store.num_edges();
    let query_nodes = sample_query_nodes(&store, spec.queries.max(queries_per_round), seed);

    let mut query_latency = Latencies::new();
    let mut update_latency = Latencies::new();
    let mut query_stats = QueryStats::default();
    let mut update_iter = updates.into_iter();
    let mut next_query = 0usize;

    for _ in 0..rounds {
        for update in update_iter.by_ref().take(updates_per_round) {
            update_latency.time(|| store.apply(update));
        }
        for _ in 0..queries_per_round {
            let u = query_nodes[next_query % query_nodes.len()];
            next_query += 1;
            // Index-free means the query needs nothing but the current
            // graph: snapshot publication and scratch binding both happen
            // inside the timed region, exactly what a live service pays.
            let output = query_latency
                .time(|| {
                    engine
                        .session(store.snapshot())
                        .run(Query::SingleSource { node: u })
                })
                .expect("invariant: query nodes stay valid under edge churn");
            query_stats.merge(&output.stats);
        }
    }

    ScenarioResult {
        spec: *spec,
        seed,
        scale_name: scale_name(scale),
        dataset: format!("sliding_window(n={n}, window={window})"),
        nodes: n,
        edges: start_edges,
        epsilon: spec.epsilon,
        queries_executed: next_query,
        query_latency,
        update_latency: Some(update_latency),
        query_stats,
        // Hash the final edge set in *external* ids, sorted: the
        // degree-ordered variant of a workload must land on the same
        // fingerprint as its plainly-labeled twin.
        final_state_hash: Some(match GraphView::node_remap(&store).cloned() {
            Some(remap) => {
                let mut edges: Vec<Edge> = store
                    .edges_iter()
                    .map(|(u, v)| (remap.external(u), remap.external(v)))
                    .collect();
                edges.sort_unstable();
                graph_state_hash(n, edges.into_iter())
            }
            None => graph_state_hash(n, store.edges_iter()),
        }),
        work_deterministic: spec.work_deterministic(),
        versions_observed: None,
        cache_hits: None,
        cache_hit_rate: None,
        deadline_exceeded: None,
        recoveries: None,
        restarts: None,
        failovers: None,
        planner_fingerprint: None,
    }
}

/// The 1-writer / N-reader concurrent serving benchmark.
///
/// The writer owns the [`GraphStore`], applies the seeded update stream
/// (paced against the readers' aggregate progress so the configured
/// update:query ratio holds across the whole run) and publishes a
/// snapshot after every update. Readers share only a mutex-guarded slot
/// holding the latest snapshot: each query clones it (one `Arc` bump),
/// then runs on an owned session — the writer is never blocked by a
/// query, and a query never waits for a writer.
///
/// Consistency recording: every reader keeps the versions it observed
/// and panics if they ever go backwards (snapshot publication must be
/// monotonic); the run reports how many distinct versions were served.
fn run_store_concurrent(
    spec: &ScenarioSpec,
    scale: Scale,
    seed: u64,
    engine: &ProbeSim,
    readers: usize,
    updates_per_round: usize,
    queries_per_round: usize,
) -> ScenarioResult {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let GraphSource::SlidingWindow { n, window } = spec.graph else {
        panic!(
            "scenario {}: concurrent kinds require a SlidingWindow graph source",
            spec.name
        );
    };
    let n = scaled(scale, n);
    let window = scaled(scale, window);
    let readers = readers.max(1);
    let total_queries = spec.queries.max(readers);
    let total_updates = (total_queries * updates_per_round).div_ceil(queries_per_round.max(1));
    let (graph, updates) = sliding_window_workload(n, window, total_updates, seed ^ 0x5EED);
    // Aggressive compaction so the run also exercises folds while
    // readers are live (the default policy would rarely trigger at CI
    // scale).
    let mut store = GraphStore::from_view(&graph).with_policy(CompactionPolicy {
        max_touched_fraction: 0.02,
        min_touched_lists: 32,
    });
    drop(graph);
    let start_edges = store.num_edges();
    let query_nodes = sample_query_nodes(&store, total_queries, seed);

    let slot = Mutex::new(store.snapshot());
    let completed = AtomicUsize::new(0);
    // Set when a reader unwinds, so the writer's pacing loop cannot wait
    // forever on progress that will never come — the scenario then fails
    // with the reader's panic instead of hanging.
    let reader_panicked = std::sync::atomic::AtomicBool::new(false);
    struct PanicFlag<'a>(&'a std::sync::atomic::AtomicBool);
    impl Drop for PanicFlag<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::Release);
            }
        }
    }
    let (update_latency, reader_results) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut update_latency = Latencies::new();
            for (j, update) in updates.iter().copied().enumerate() {
                // Pace the stream: update j waits for the readers to have
                // answered their share at the configured ratio.
                let target = (j * queries_per_round / updates_per_round.max(1))
                    .min(total_queries.saturating_sub(1));
                // A short sleep, not a yield spin: on small machines a
                // busy writer would steal cycles from the readers it is
                // waiting for. Pacing precision is irrelevant here.
                while completed.load(Ordering::Acquire) < target {
                    if reader_panicked.load(Ordering::Acquire) {
                        return update_latency;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                // The writer's role cost is apply + publish: the
                // O(touched) freeze and the slot swap are what a serving
                // writer pays per update, so they belong in the sample.
                update_latency.time(|| {
                    store.apply(update);
                    *slot.lock().expect("snapshot slot poisoned") = store.snapshot();
                });
            }
            update_latency
        });
        let reader_handles: Vec<_> = (0..readers)
            .map(|r| {
                let slot = &slot;
                let completed = &completed;
                let query_nodes = &query_nodes;
                let reader_panicked = &reader_panicked;
                scope.spawn(move || {
                    let _unblock_writer = PanicFlag(reader_panicked);
                    let mut latencies = Latencies::new();
                    let mut stats = QueryStats::default();
                    let mut versions: Vec<u64> = Vec::new();
                    for i in (r..total_queries).step_by(readers) {
                        let snapshot = slot.lock().expect("snapshot slot poisoned").clone();
                        if let Some(&last) = versions.last() {
                            assert!(
                                snapshot.version() >= last,
                                "snapshot versions went backwards: {} after {last}",
                                snapshot.version()
                            );
                        }
                        versions.push(snapshot.version());
                        let u = query_nodes[i % query_nodes.len()];
                        let output = latencies
                            .time(|| {
                                engine
                                    .session(snapshot)
                                    .run(Query::SingleSource { node: u })
                            })
                            .expect("invariant: query nodes stay valid under edge churn");
                        stats.merge(&output.stats);
                        completed.fetch_add(1, Ordering::Release);
                    }
                    (latencies, stats, versions)
                })
            })
            .collect();
        let update_latency = writer
            .join()
            .expect("invariant: the writer thread joins cleanly (its panic propagates here)");
        let reader_results: Vec<_> = reader_handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .expect("invariant: reader threads join cleanly (their panics propagate here)")
            })
            .collect();
        (update_latency, reader_results)
    });

    let mut query_latency = Latencies::new();
    let mut query_stats = QueryStats::default();
    let mut distinct_versions: Vec<u64> = Vec::new();
    let mut queries_executed = 0usize;
    for (latencies, stats, versions) in reader_results {
        queries_executed += latencies.count();
        for &sample in latencies.samples() {
            query_latency.push(sample);
        }
        query_stats.merge(&stats);
        distinct_versions.extend(versions);
    }
    distinct_versions.sort_unstable();
    distinct_versions.dedup();
    let final_hash = graph_state_hash(n, store.edges_iter());

    ScenarioResult {
        spec: *spec,
        seed,
        scale_name: scale_name(scale),
        dataset: format!("sliding_window(n={n}, window={window}) x {readers} readers"),
        nodes: n,
        edges: start_edges,
        epsilon: spec.epsilon,
        queries_executed,
        query_latency,
        update_latency: Some(update_latency),
        query_stats,
        final_state_hash: Some(final_hash),
        work_deterministic: spec.work_deterministic(),
        versions_observed: Some(distinct_versions.len() as u64),
        cache_hits: None,
        cache_hit_rate: None,
        deadline_exceeded: None,
        recoveries: None,
        restarts: None,
        failovers: None,
        planner_fingerprint: None,
    }
}

/// Per-request deadline the interactive-mix scenario arms. Generous at
/// CI scale — the point is exercising the deadline plumbing end to end,
/// not measuring how often an overloaded runner trips it.
const SERVICE_MIX_DEADLINE: Duration = Duration::from_millis(500);

/// The full-facade serving benchmark: one writer thread streaming
/// updates through `QueryService::commit` (paced to client progress at
/// the configured update:query ratio) while `clients` threads issue
/// deadline-armed, mixed-priority blocking `call`s.
///
/// Latencies are **client-observed** (queue wait + execution — what a
/// user of the facade actually experiences); update latency is the
/// writer's apply + publish + cache-invalidation cost. Work and cache
/// hits are scheduling-dependent (which version a call answers at
/// depends on the race), so the comparator gates latency and the final
/// workload fingerprint only.
// The knobs are the scenario spec, flattened; a config struct would
// just restate ScenarioSpec field by field.
#[allow(clippy::too_many_arguments)]
fn run_service_interactive_mix(
    spec: &ScenarioSpec,
    scale: Scale,
    seed: u64,
    engine: &ProbeSim,
    clients: usize,
    updates_per_round: usize,
    queries_per_round: usize,
) -> ScenarioResult {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let GraphSource::SlidingWindow { n, window } = spec.graph else {
        panic!(
            "scenario {}: service mix requires a SlidingWindow graph source",
            spec.name
        );
    };
    let n = scaled(scale, n);
    let window = scaled(scale, window);
    let clients = clients.max(1);
    let total_queries = spec.queries.max(clients);
    let total_updates = (total_queries * updates_per_round).div_ceil(queries_per_round.max(1));
    let (graph, updates) = sliding_window_workload(n, window, total_updates, seed ^ 0x5EED);
    // Half as many distinct nodes as queries: clients revisit the set,
    // so the cache is exercised *under churn* (hits only happen when no
    // effective update landed in between — scheduling-dependent, which
    // is why this scenario never reports a hit rate).
    let query_nodes = sample_query_nodes(&graph, total_queries.div_ceil(2), seed);
    let service = ServiceBuilder::new(engine.config().clone())
        .workers(clients)
        .cache_capacity(256)
        .retained_versions(8)
        .default_deadline(SERVICE_MIX_DEADLINE)
        .build(GraphStore::from_view(&graph));
    drop(graph);
    let start_edges = service.snapshot().num_edges();

    let completed = AtomicUsize::new(0);
    // Set when a client unwinds so the writer's pacing loop cannot wait
    // forever on progress that will never come.
    let client_panicked = AtomicBool::new(false);
    struct PanicFlag<'a>(&'a AtomicBool);
    impl Drop for PanicFlag<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::Release);
            }
        }
    }
    let (update_latency, client_results) = std::thread::scope(|scope| {
        let service = &service;
        let writer = scope.spawn(|| {
            let mut update_latency = Latencies::new();
            for (j, update) in updates.iter().copied().enumerate() {
                let target = (j * queries_per_round / updates_per_round.max(1))
                    .min(total_queries.saturating_sub(1));
                while completed.load(Ordering::Acquire) < target {
                    if client_panicked.load(Ordering::Acquire) {
                        return update_latency;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
                // The writer's cost per event: store mutation (which
                // fires the cache invalidation observer) + snapshot
                // publication + retention-ring maintenance.
                update_latency.time(|| service.commit(update));
            }
            update_latency
        });
        let client_handles: Vec<_> = (0..clients)
            .map(|c| {
                let completed = &completed;
                let query_nodes = &query_nodes;
                let client_panicked = &client_panicked;
                scope.spawn(move || {
                    let _unblock_writer = PanicFlag(client_panicked);
                    let mut latencies = Latencies::new();
                    let mut stats = QueryStats::default();
                    let mut versions: Vec<u64> = Vec::new();
                    let mut hits = 0u64;
                    let mut deadline_misses = 0u64;
                    for i in (c..total_queries).step_by(clients) {
                        let node = query_nodes[i % query_nodes.len()];
                        // Alternate priorities so both queue lanes serve
                        // under contention.
                        let priority = if i % 2 == 0 {
                            Priority::Interactive
                        } else {
                            Priority::Batch
                        };
                        let request = Request::new(Query::SingleSource { node })
                            .with_priority(priority)
                            .with_consistency(Consistency::Latest);
                        let outcome = latencies.time(|| service.call(request));
                        match outcome {
                            Ok(response) => {
                                versions.push(response.version);
                                if response.cache_hit {
                                    hits += 1;
                                } else {
                                    stats.merge(&response.output.stats);
                                }
                            }
                            Err(ServiceError::Query(
                                probesim_core::QueryError::DeadlineExceeded { partial },
                            )) => {
                                deadline_misses += 1;
                                stats.merge(&partial);
                            }
                            Err(other) => panic!("unexpected service error: {other}"),
                        }
                        completed.fetch_add(1, Ordering::Release);
                    }
                    (latencies, stats, versions, hits, deadline_misses)
                })
            })
            .collect();
        let update_latency = writer
            .join()
            .expect("invariant: the writer thread joins cleanly (its panic propagates here)");
        let client_results: Vec<_> = client_handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .expect("invariant: client threads join cleanly (their panics propagate here)")
            })
            .collect();
        (update_latency, client_results)
    });

    let mut query_latency = Latencies::new();
    let mut query_stats = QueryStats::default();
    let mut distinct_versions: Vec<u64> = Vec::new();
    let mut cache_hits = 0u64;
    let mut deadline_exceeded = 0u64;
    let mut queries_executed = 0usize;
    for (latencies, stats, versions, hits, misses) in client_results {
        queries_executed += latencies.count();
        for &sample in latencies.samples() {
            query_latency.push(sample);
        }
        query_stats.merge(&stats);
        distinct_versions.extend(versions);
        cache_hits += hits;
        deadline_exceeded += misses;
    }
    distinct_versions.sort_unstable();
    distinct_versions.dedup();
    let snapshot = service.snapshot();
    let final_hash = graph_state_hash(n, snapshot.edges_iter());

    ScenarioResult {
        spec: *spec,
        seed,
        scale_name: scale_name(scale),
        dataset: format!("sliding_window(n={n}, window={window}) x {clients} clients"),
        nodes: n,
        edges: start_edges,
        epsilon: spec.epsilon,
        queries_executed,
        query_latency,
        update_latency: Some(update_latency),
        query_stats,
        final_state_hash: Some(final_hash),
        work_deterministic: spec.work_deterministic(),
        versions_observed: Some(distinct_versions.len() as u64),
        cache_hits: Some(cache_hits),
        // Scheduling-dependent here — not reported, so the tight CI
        // gate on hit rate stays armed only where it is deterministic.
        cache_hit_rate: None,
        deadline_exceeded: Some(deadline_exceeded),
        recoveries: None,
        restarts: None,
        failovers: None,
        planner_fingerprint: None,
    }
}

/// The replicated-fleet benchmark: the whole fifth tier behind one
/// handle. One writer commits the seeded update stream through
/// [`Fleet::commit`] — a durable-log append that the log-tailing
/// replicas replay — while clients rotate through the three consistency
/// levels against the router: `Latest` (primary), read-your-writes
/// `AtLeastVersion` chained from the writer's freshest commit token
/// (spelled in the shared wire form and parsed back, the same `FromStr`
/// the CLI uses), and `Pinned` at the client's last observed version.
/// Latencies are client-observed (routing + queue + exec); work is
/// scheduling-dependent, so the gate runs on latency, the final-state
/// fingerprint, and an in-run check that every replica's final edge set
/// hashes identically to the primary's.
///
/// With `chaos` set, the same mix runs under a seeded [`FaultPlan`]:
/// replicas crash, stall, apply slowly and detect corrupt log reads
/// mid-run while a fast-ticking supervisor checkpoints the primary and
/// respawns the dead. The end-state agreement assert is unchanged —
/// recovery must reproduce the exact history — and the result carries
/// the recovery/restart/failover counters as informational fields.
#[allow(clippy::too_many_arguments)] // mirrors the other scenario runners' dispatch shape
fn run_fleet_replicated(
    spec: &ScenarioSpec,
    scale: Scale,
    seed: u64,
    engine: &ProbeSim,
    replicas: usize,
    clients: usize,
    updates_per_round: usize,
    queries_per_round: usize,
    chaos: bool,
) -> ScenarioResult {
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    let GraphSource::SlidingWindow { n, window } = spec.graph else {
        unreachable!(
            "scenario {}: the fleet mix requires a SlidingWindow graph source",
            spec.name
        );
    };
    let n = scaled(scale, n);
    let window = scaled(scale, window);
    let clients = clients.max(1);
    let total_queries = spec.queries.max(clients);
    let total_updates = (total_queries * updates_per_round).div_ceil(queries_per_round.max(1));
    let (graph, updates) = sliding_window_workload(n, window, total_updates, seed ^ 0x5EED);
    let query_nodes = sample_query_nodes(&graph, total_queries.div_ceil(2), seed);
    let mut builder = Fleet::builder(engine.config().clone())
        .replicas(replicas)
        .workers(2)
        .cache_capacity(256)
        // Generous ring: every version of the run stays pinnable on
        // every endpoint (total_updates never exceeds it at any scale).
        .retained_versions(64)
        .default_deadline(SERVICE_MIX_DEADLINE);
    if chaos {
        // A seeded fault plan over the whole commit horizon, plus a
        // fast supervisor: recovery latency is part of the measurement,
        // not an afterthought. Two faults are pinned on top of the
        // seeded draws — a mid-stream crash and a corrupt read — so
        // every seed exercises both recovery paths (checkpointed
        // respawn and salvage-then-respawn), not just the lucky ones.
        // The restart budget stays above the worst case (one crash +
        // one corrupt read per slot), so no replica retires and the
        // end-state agreement loop below keeps its full-fleet meaning.
        let horizon = total_updates as u64;
        let mid = (horizon / 2).max(1);
        builder = builder
            .faults(
                FaultPlan::seeded(seed ^ 0xC4A0_5EED, replicas, horizon)
                    .with_crash_after(0, mid)
                    .with_corrupt_read(1 % replicas, mid),
            )
            .supervision_tick(Duration::from_millis(1))
            .checkpoint_every(4)
            .restart_budget(4);
    }
    let fleet = builder.build(graph.snapshot());
    drop(graph);
    let start_edges = fleet.primary().snapshot().num_edges();

    let completed = AtomicUsize::new(0);
    // The writer's freshest commit token, published so clients can
    // chain read-your-writes requests from it.
    let watermark = AtomicU64::new(0);
    let client_panicked = AtomicBool::new(false);
    struct PanicFlag<'a>(&'a AtomicBool);
    impl Drop for PanicFlag<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::Release);
            }
        }
    }
    let (update_latency, client_results) = std::thread::scope(|scope| {
        let fleet = &fleet;
        let writer = scope.spawn(|| {
            let mut update_latency = Latencies::new();
            for (j, update) in updates.iter().copied().enumerate() {
                let target = (j * queries_per_round / updates_per_round.max(1))
                    .min(total_queries.saturating_sub(1));
                while completed.load(Ordering::Acquire) < target {
                    if client_panicked.load(Ordering::Acquire) {
                        return update_latency;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
                // The writer's cost per event: primary mutation +
                // snapshot publication + the durable-log append the
                // replicas tail.
                let commit = update_latency.time(|| fleet.commit(update));
                watermark.store(commit.version, Ordering::Release);
            }
            update_latency
        });
        let client_handles: Vec<_> = (0..clients)
            .map(|c| {
                let completed = &completed;
                let watermark = &watermark;
                let query_nodes = &query_nodes;
                let client_panicked = &client_panicked;
                scope.spawn(move || {
                    let _unblock_writer = PanicFlag(client_panicked);
                    let mut latencies = Latencies::new();
                    let mut stats = QueryStats::default();
                    let mut versions: Vec<u64> = Vec::new();
                    let mut hits = 0u64;
                    let mut deadline_misses = 0u64;
                    let mut last_seen = 0u64;
                    for i in (c..total_queries).step_by(clients) {
                        let node = query_nodes
                            .get(i % query_nodes.len())
                            .copied()
                            .expect("invariant: the query-node sample is non-empty");
                        // Rotate through the consistency levels so the
                        // router exercises all three resolution paths
                        // under one run.
                        let consistency = match i % 3 {
                            0 => Consistency::Latest,
                            1 => {
                                // Read the writer's write: spell the
                                // request in the shared wire form and
                                // parse it back — the same round trip a
                                // remote client would perform.
                                let floor = watermark.load(Ordering::Acquire);
                                format!("at-least:{floor}")
                                    .parse::<Consistency>()
                                    .expect("invariant: the consistency wire form round-trips")
                            }
                            _ => Consistency::Pinned(last_seen),
                        };
                        let priority = if i % 2 == 0 {
                            Priority::Interactive
                        } else {
                            Priority::Batch
                        };
                        let request = Request::new(Query::SingleSource { node })
                            .with_priority(priority)
                            .with_consistency(consistency);
                        let outcome = latencies.time(|| fleet.call(request));
                        match outcome {
                            Ok(response) => {
                                last_seen = response.version;
                                versions.push(response.version);
                                if response.cache_hit {
                                    hits += 1;
                                } else {
                                    stats.merge(&response.output.stats);
                                }
                            }
                            Err(FleetError::Service(ServiceError::Query(
                                probesim_core::QueryError::DeadlineExceeded { partial },
                            ))) => {
                                deadline_misses += 1;
                                stats.merge(&partial);
                            }
                            // The catch-up budget ran out before any
                            // replica reached the floor: the same
                            // deadline-pressure signal, shed with a
                            // typed error instead of partial work.
                            Err(FleetError::LaggingReplicas { .. }) => {
                                deadline_misses += 1;
                            }
                            // Under chaos an endpoint can die or regress
                            // while the request is in flight and exhaust
                            // the deadline before the router's failover
                            // finds a survivor — a transient miss, not a
                            // protocol violation.
                            Err(FleetError::Service(
                                ServiceError::ShuttingDown | ServiceError::VersionNotReached { .. },
                            )) if chaos => {
                                deadline_misses += 1;
                            }
                            Err(other) => unreachable!(
                                "unexpected fleet error under an uncontended run: {other}"
                            ),
                        }
                        completed.fetch_add(1, Ordering::Release);
                    }
                    (latencies, stats, versions, hits, deadline_misses)
                })
            })
            .collect();
        let update_latency = writer
            .join()
            .expect("invariant: the writer thread joins cleanly (its panic propagates here)");
        let client_results: Vec<_> = client_handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .expect("invariant: client threads join cleanly (their panics propagate here)")
            })
            .collect();
        (update_latency, client_results)
    });

    let mut query_latency = Latencies::new();
    let mut query_stats = QueryStats::default();
    let mut distinct_versions: Vec<u64> = Vec::new();
    let mut cache_hits = 0u64;
    let mut deadline_exceeded = 0u64;
    let mut queries_executed = 0usize;
    for (latencies, stats, versions, hits, misses) in client_results {
        queries_executed += latencies.count();
        for &sample in latencies.samples() {
            query_latency.push(sample);
        }
        query_stats.merge(&stats);
        distinct_versions.extend(versions);
        cache_hits += hits;
        deadline_exceeded += misses;
    }
    distinct_versions.sort_unstable();
    distinct_versions.dedup();

    // The agreement check: once replication drains, every replica's
    // edge set must hash identically to the primary's — the log really
    // did fan the same history out to the whole fleet.
    let final_version = fleet.version();
    assert!(
        fleet.wait_for_replication(final_version, Duration::from_secs(30)),
        "replicas catch up to version {final_version} once the writer stops"
    );
    let final_hash = graph_state_hash(n, fleet.primary().snapshot().edges_iter());
    for replica in fleet.replicas() {
        let replica_hash = graph_state_hash(n, replica.service().snapshot().edges_iter());
        assert!(
            replica_hash == final_hash,
            "replica {} final state diverged from the primary",
            replica.slot()
        );
    }

    // Recovery accounting, reported only for the chaos variant: how
    // many respawns the run absorbed (split by starting point) and how
    // many dispatched requests the router had to move off a dying or
    // regressed endpoint.
    let stats = fleet.supervisor_stats();
    let (recoveries, restarts, failovers) = if chaos {
        (
            Some(stats.checkpoint_recoveries + stats.genesis_recoveries),
            Some(fleet.registry().total_restarts()),
            Some(fleet.failovers()),
        )
    } else {
        (None, None, None)
    };
    let faults = if chaos { " + seeded chaos" } else { "" };

    ScenarioResult {
        spec: *spec,
        seed,
        scale_name: scale_name(scale),
        dataset: format!(
            "sliding_window(n={n}, window={window}) x {replicas} replicas x {clients} clients{faults}"
        ),
        nodes: n,
        edges: start_edges,
        epsilon: spec.epsilon,
        queries_executed,
        query_latency,
        update_latency: Some(update_latency),
        query_stats,
        final_state_hash: Some(final_hash),
        work_deterministic: spec.work_deterministic(),
        versions_observed: Some(distinct_versions.len() as u64),
        cache_hits: Some(cache_hits),
        // Scheduling-dependent (hits need no effective commit in
        // between) — not reported, so the tight gate stays armed only
        // where it is deterministic.
        cache_hit_rate: None,
        deadline_exceeded: Some(deadline_exceeded),
        recoveries,
        restarts,
        failovers,
        planner_fingerprint: None,
    }
}

/// The result-cache benchmark: a Zipf-repeated query stream issued
/// sequentially, so the hit pattern — and therefore `cache_hit_rate`
/// and `total_work` — is a pure function of the seed. Cache hits add
/// **zero** work to `query_stats` (only fresh executions are merged),
/// which is the measurable "cached path bypasses probe work entirely"
/// guarantee the comparator gates.
fn run_service_cache_repeat(
    spec: &ScenarioSpec,
    scale: Scale,
    seed: u64,
    engine: &ProbeSim,
    distinct: usize,
) -> ScenarioResult {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let GraphSource::Dataset(dataset) = spec.graph else {
        panic!(
            "scenario {}: cache repeat requires a Dataset graph source",
            spec.name
        );
    };
    let graph = dataset.generate(scale);
    let nodes = sample_query_nodes(&graph, distinct.max(1), seed);
    let service = ServiceBuilder::new(engine.config().clone())
        .workers(1)
        // No eviction pressure: every distinct query stays resident, so
        // the hit pattern is exactly "seen before", independent of LRU
        // order — deterministic by construction.
        .cache_capacity(nodes.len().max(16) * 4)
        .build(GraphStore::from_view(&graph));
    let num_nodes = graph.num_nodes();
    let num_edges = graph.num_edges();
    drop(graph);

    // Zipf-ish repetition, deterministic in the seed (shared sampler —
    // the serve-bench CLI uses the same skew).
    let zipf = probesim_eval::ZipfRanks::new(nodes.len());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let mut query_latency = Latencies::new();
    let mut query_stats = QueryStats::default();
    let mut cache_hits = 0u64;
    for _ in 0..spec.queries {
        let rank = zipf.rank(rng.gen::<f64>());
        let response = query_latency
            .time(|| service.call(Request::new(Query::SingleSource { node: nodes[rank] })))
            .expect("invariant: sampled query nodes are valid");
        if response.cache_hit {
            cache_hits += 1;
        } else {
            query_stats.merge(&response.output.stats);
        }
    }

    ScenarioResult {
        spec: *spec,
        seed,
        scale_name: scale_name(scale),
        dataset: dataset.name().to_string(),
        nodes: num_nodes,
        edges: num_edges,
        epsilon: spec.epsilon,
        queries_executed: spec.queries,
        query_latency,
        update_latency: None,
        query_stats,
        final_state_hash: None,
        work_deterministic: spec.work_deterministic(),
        versions_observed: None,
        cache_hits: Some(cache_hits),
        cache_hit_rate: Some(cache_hits as f64 / spec.queries.max(1) as f64),
        deadline_exceeded: None,
        recoveries: None,
        restarts: None,
        failovers: None,
        planner_fingerprint: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_order_statistics() {
        let mut lat = Latencies::new();
        for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
            lat.push(x);
        }
        assert_eq!(lat.count(), 5);
        assert_eq!(lat.median(), 3.0);
        assert_eq!(lat.quantile(0.0), 1.0);
        assert_eq!(lat.quantile(1.0), 5.0);
        assert_eq!(lat.p95(), 5.0);
        assert_eq!(lat.min(), 1.0);
        assert_eq!(lat.max(), 5.0);
        assert!((lat.mean() - 3.0).abs() < 1e-12);
        let empty = Latencies::new();
        assert_eq!(empty.median(), 0.0);
        assert_eq!(empty.min(), 0.0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn time_per_item_preserves_outputs_and_counts() {
        let (outputs, lat) = time_per_item([1, 2, 3], |x| x * 10);
        assert_eq!(outputs, vec![10, 20, 30]);
        assert_eq!(lat.count(), 3);
        assert!(lat.samples().iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn catalog_meets_the_contract() {
        let specs = catalog();
        assert!(specs.len() >= 8, "catalog has {} scenarios", specs.len());
        let dynamic = specs.iter().filter(|s| s.is_dynamic()).count();
        assert!(dynamic >= 2, "only {dynamic} dynamic scenarios");
        // Names are unique and filesystem-safe (they become file names).
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate scenario names");
        for spec in &specs {
            assert!(spec
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            assert!(!spec.description.is_empty());
            assert_eq!(find(spec.name), Some(*spec));
        }
        assert_eq!(find("no_such_scenario"), None);
    }

    #[test]
    fn static_scenario_runs_and_counts_queries() {
        let spec = find("static_top_k").unwrap();
        let result = run_scenario(&spec, Scale::Ci, 7);
        assert_eq!(result.query_latency.count(), spec.queries);
        assert!(result.query_stats.walks > 0);
        assert!(result.update_latency.is_none());
        assert!(result.nodes > 0 && result.edges > 0);
    }

    #[test]
    fn dynamic_scenario_interleaves_updates_and_queries() {
        let spec = find("dynamic_update_heavy").unwrap();
        let result = run_scenario(&spec, Scale::Ci, 7);
        assert_eq!(result.query_latency.count(), spec.queries);
        let updates = result.update_latency.as_ref().unwrap().count();
        assert_eq!(updates, spec.queries * 10, "10 updates per query");
        assert!(result.query_stats.walks > 0);
    }

    #[test]
    fn index_static_replays_rows_and_beats_the_fused_budget() {
        let index_spec = find("index_static_contrast").unwrap();
        let result = run_scenario(&index_spec, Scale::Ci, 2017);
        assert_eq!(result.queries_executed, index_spec.queries);
        // Exactly one build-through per distinct source; every revisit
        // replays, whatever the query kind.
        assert_eq!(result.query_stats.index_rows_stale, 3);
        assert_eq!(result.query_stats.planner_engine, index_spec.queries);
        assert!(
            result.query_stats.index_rows_used > 0,
            "replays charge row entries"
        );
        assert!(result.planner_fingerprint.is_some());
        // The acceptance floor the CI contrast gate enforces: on the
        // same 12-query budget, same graph, same seed, the index engine
        // must spend at least 30% less deterministic work than the
        // fused index-free engine.
        let fused_spec = find("probe_static_fused").unwrap();
        let fused = run_scenario(&fused_spec, Scale::Ci, 2017);
        let index_work = result.query_stats.total_work() as f64;
        let fused_work = fused.query_stats.total_work() as f64;
        let reduction = 100.0 * (fused_work - index_work) / fused_work;
        assert!(
            reduction >= 30.0,
            "index engine saved only {reduction:.1}% ({fused_work} -> {index_work})"
        );
    }

    #[test]
    fn index_churn_mixes_replay_repair_and_build_through_deterministically() {
        let spec = find("index_dynamic_churn").unwrap();
        let a = run_scenario(&spec, Scale::Ci, 2017);
        let b = run_scenario(&spec, Scale::Ci, 2017);
        assert_eq!(a.query_stats, b.query_stats);
        assert_eq!(a.planner_fingerprint, b.planner_fingerprint);
        assert_eq!(a.final_state_hash, b.final_state_hash);
        assert!(a.planner_fingerprint.is_some());
        assert_eq!(a.queries_executed, spec.queries);
        assert_eq!(a.update_latency.as_ref().unwrap().count(), 3);
        // Every query was answered by the index engine: some by replay,
        // some by building through a row the churn left stale.
        assert_eq!(a.query_stats.planner_engine, a.queries_executed);
        assert!(a.query_stats.index_rows_used > 0, "some queries replayed");
        assert!(
            a.query_stats.index_rows_stale > 0,
            "some queries built through"
        );
    }

    #[test]
    fn work_counters_are_seed_deterministic() {
        let spec = find("dynamic_churn_balanced").unwrap();
        let a = run_scenario(&spec, Scale::Ci, 42);
        let b = run_scenario(&spec, Scale::Ci, 42);
        assert_eq!(a.query_stats, b.query_stats);
        assert_eq!(a.query_stats.total_work(), b.query_stats.total_work());
        let c = run_scenario(&spec, Scale::Ci, 43);
        assert_ne!(
            a.query_stats.total_work(),
            c.query_stats.total_work(),
            "different seed should vary the workload"
        );
    }

    #[test]
    fn contrast_pairs_flip_only_the_fuse_bit() {
        for base in ["probe_static", "probe_dynamic"] {
            let fused = find(&format!("{base}_fused")).unwrap();
            let legacy = find(&format!("{base}_legacy")).unwrap();
            assert!(fused.fuse_probes, "{base}_fused");
            assert!(!legacy.fuse_probes, "{base}_legacy");
            assert_eq!(fused.graph, legacy.graph, "{base}");
            assert_eq!(fused.kind, legacy.kind, "{base}");
            assert_eq!(fused.epsilon, legacy.epsilon, "{base}");
            assert_eq!(fused.queries, legacy.queries, "{base}");
        }
    }

    #[test]
    fn fused_engine_cuts_probe_work_by_a_quarter_at_ci_scale() {
        // The PR's headline acceptance criterion, asserted on the
        // committed seed: the work counters are deterministic, so this
        // either holds for everyone or for no one.
        let fused = run_scenario(&find("probe_static_fused").unwrap(), Scale::Ci, 2017);
        let legacy = run_scenario(&find("probe_static_legacy").unwrap(), Scale::Ci, 2017);
        assert_eq!(
            fused.query_stats.walks, legacy.query_stats.walks,
            "identical seed => identical walks"
        );
        let fused_work = fused.query_stats.total_work() as f64;
        let legacy_work = legacy.query_stats.total_work() as f64;
        let reduction = 100.0 * (legacy_work - fused_work) / legacy_work;
        assert!(
            reduction >= 25.0,
            "fused total_work reduction {reduction:.1}% < 25% \
             (fused {fused_work}, legacy {legacy_work})"
        );
        let fused_edges = fused.query_stats.edges_expanded as f64;
        let legacy_edges = legacy.query_stats.edges_expanded as f64;
        let edge_reduction = 100.0 * (legacy_edges - fused_edges) / legacy_edges;
        assert!(
            edge_reduction >= 25.0,
            "fused edges_expanded reduction {edge_reduction:.1}% < 25%"
        );
        assert!(fused.query_stats.frontier_merges > 0);
        assert_eq!(legacy.query_stats.frontier_merges, 0);
    }

    #[test]
    fn dynamic_final_state_hash_is_a_workload_witness() {
        let spec = find("dynamic_churn_balanced").unwrap();
        let a = run_scenario(&spec, Scale::Ci, 11);
        let b = run_scenario(&spec, Scale::Ci, 11);
        assert!(a.final_state_hash.is_some());
        assert_eq!(a.final_state_hash, b.final_state_hash);
        let c = run_scenario(&spec, Scale::Ci, 12);
        assert_ne!(a.final_state_hash, c.final_state_hash);
        let s = run_scenario(&find("static_single_source").unwrap(), Scale::Ci, 11);
        assert!(s.final_state_hash.is_none());
    }

    #[test]
    fn store_concurrent_scenario_runs_with_per_role_latencies() {
        let spec = find("store_concurrent_balanced").unwrap();
        assert!(spec.is_dynamic());
        assert_eq!(spec.kind_name(), "concurrent");
        assert!(!spec.work_deterministic());
        let result = run_scenario(&spec, Scale::Ci, 7);
        // Per-role latencies: one query sample per reader query, one
        // update sample per writer update.
        assert_eq!(result.query_latency.count(), spec.queries);
        assert_eq!(result.queries_executed, spec.queries);
        let updates = result.update_latency.as_ref().unwrap().count();
        assert_eq!(
            updates, spec.queries,
            "1:1 ratio applies one update per query"
        );
        assert!(result.query_stats.walks > 0);
        assert!(!result.work_deterministic);
        // Readers observed at least one published version; the writer
        // published one snapshot per update, so at most updates + 1.
        let versions = result.versions_observed.unwrap();
        assert!(
            (1..=updates as u64 + 1).contains(&versions),
            "versions_observed = {versions}"
        );
        // The final graph state is scheduling-independent: the writer
        // applies the whole seeded stream no matter how readers race it.
        let again = run_scenario(&spec, Scale::Ci, 7);
        assert_eq!(result.final_state_hash, again.final_state_hash);
    }

    #[test]
    fn store_concurrent_ratios_shape_the_update_stream() {
        let spec = find("store_concurrent_read_heavy").unwrap();
        let ScenarioKind::StoreConcurrent {
            readers,
            updates_per_round,
            queries_per_round,
        } = spec.kind
        else {
            panic!("wrong kind");
        };
        assert_eq!((readers, updates_per_round, queries_per_round), (4, 1, 8));
        let result = run_scenario(&spec, Scale::Ci, 11);
        let updates = result.update_latency.as_ref().unwrap().count();
        assert_eq!(updates, spec.queries.div_ceil(8), "1:8 update:query ratio");
        assert_eq!(result.queries_executed, spec.queries);
    }

    #[test]
    fn service_cache_repeat_is_deterministic_and_hits_bypass_work() {
        let spec = find("service_cache_repeat").unwrap();
        assert_eq!(spec.kind_name(), "service");
        assert!(spec.work_deterministic());
        assert!(!spec.is_dynamic());
        let a = run_scenario(&spec, Scale::Ci, 2017);
        let b = run_scenario(&spec, Scale::Ci, 2017);
        // The tight-gate contract: hit rate and work are pure functions
        // of the seed.
        assert_eq!(a.cache_hit_rate, b.cache_hit_rate);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.query_stats, b.query_stats);
        let hits = a.cache_hits.unwrap();
        assert!(hits > 0, "a Zipf-repeated stream must hit the cache");
        assert_eq!(a.queries_executed, spec.queries);
        // Zero work delta for the cached path: the run's total work
        // equals executing each *distinct served* query exactly once —
        // misses — so it is strictly below a cache-less run of the same
        // stream, and repeats contribute nothing.
        let misses = spec.queries as u64 - hits;
        assert!(misses >= 1);
        assert!(a.query_stats.walks > 0);
        // walks scale linearly with fresh executions: walks == nr *
        // misses for a fixed nr (every query is single-source on the
        // same graph/config).
        assert_eq!(
            a.query_stats.walks % misses as usize,
            0,
            "walks {} not a multiple of misses {misses}",
            a.query_stats.walks
        );
        let c = run_scenario(&spec, Scale::Ci, 99);
        assert_ne!(
            a.query_stats.total_work(),
            c.query_stats.total_work(),
            "different seed should vary the workload"
        );
    }

    #[test]
    fn service_interactive_mix_reports_per_role_latencies_and_fingerprint() {
        let spec = find("service_interactive_mix").unwrap();
        assert_eq!(spec.kind_name(), "service");
        assert!(spec.is_dynamic());
        assert!(!spec.work_deterministic());
        let result = run_scenario(&spec, Scale::Ci, 7);
        assert_eq!(result.queries_executed, spec.queries);
        assert_eq!(result.query_latency.count(), spec.queries);
        let updates = result.update_latency.as_ref().unwrap().count();
        assert_eq!(
            updates,
            spec.queries / 4,
            "1:4 update:query ratio applies one update per four queries"
        );
        // Deadlines are generous at CI scale; queries that did execute
        // contributed work, and every call was answered one way or the
        // other.
        let served =
            result.cache_hits.unwrap() as usize + result.deadline_exceeded.unwrap() as usize;
        assert!(served <= spec.queries);
        assert!(result.query_stats.walks > 0 || result.cache_hits.unwrap() > 0);
        // Hit rate is scheduling-dependent here and must NOT be reported
        // (it would arm the tight gate on a nondeterministic signal).
        assert_eq!(result.cache_hit_rate, None);
        assert!(result.versions_observed.unwrap() >= 1);
        // The writer applies the whole seeded stream regardless of the
        // race, so the final graph state is deterministic.
        let again = run_scenario(&spec, Scale::Ci, 7);
        assert_eq!(result.final_state_hash, again.final_state_hash);
        assert!(result.final_state_hash.is_some());
    }

    #[test]
    fn fleet_replicated_serves_the_mix_and_replicas_agree() {
        let spec = find("fleet_replicated_serving").unwrap();
        assert_eq!(spec.kind_name(), "fleet");
        assert!(spec.is_dynamic());
        assert!(!spec.work_deterministic());
        let result = run_scenario(&spec, Scale::Ci, 7);
        assert_eq!(result.queries_executed, spec.queries);
        assert_eq!(result.query_latency.count(), spec.queries);
        let updates = result.update_latency.as_ref().unwrap().count();
        assert_eq!(
            updates,
            spec.queries / 4,
            "1:4 update:query ratio commits one update per four queries"
        );
        assert!(result.query_stats.walks > 0 || result.cache_hits.unwrap() > 0);
        // Scheduling-dependent hit pattern: never reported as a rate.
        assert_eq!(result.cache_hit_rate, None);
        assert!(result.versions_observed.unwrap() >= 1);
        // The writer commits the whole seeded stream through the log
        // regardless of the race, so the final fingerprint — already
        // checked replica-by-replica inside the run — is deterministic.
        let again = run_scenario(&spec, Scale::Ci, 7);
        assert_eq!(result.final_state_hash, again.final_state_hash);
        assert!(result.final_state_hash.is_some());
    }

    #[test]
    fn batch_scenarios_record_per_query_samples() {
        for name in ["batch_sequential", "batch_parallel"] {
            let spec = find(name).unwrap();
            let result = run_scenario(&spec, Scale::Ci, 3);
            assert_eq!(result.query_latency.count(), 5, "{name}: 5 batch reps");
            // One sample per batch, but every query of every rep counts
            // as executed.
            assert_eq!(result.queries_executed, 5 * spec.queries, "{name}");
            assert!(result.query_stats.walks > 0, "{name}");
        }
    }

    #[test]
    fn queries_executed_matches_samples_outside_batch_mode() {
        let spec = find("static_single_source").unwrap();
        let result = run_scenario(&spec, Scale::Ci, 3);
        assert_eq!(result.queries_executed, result.query_latency.count());
        let spec = find("dynamic_churn_balanced").unwrap();
        let result = run_scenario(&spec, Scale::Ci, 3);
        assert_eq!(result.queries_executed, result.query_latency.count());
    }
}
