//! The `probesim-bench` driver: scenario selection, report emission and
//! the `--compare` regression gate.
//!
//! Lives in the library (the binary is a two-line wrapper) so the exit
//! behavior — in particular *nonzero on regression*, which CI depends on
//! — is covered by ordinary unit tests.

// Printing is this target's entire job: stdout is the user interface.
#![allow(clippy::print_stdout)]

use std::path::Path;

use probesim_datasets::Scale;

use crate::report::{
    baseline_json, compare, contrast_json, contrast_pairs, parse_baseline, CompareThresholds,
    ScenarioReport,
};
use crate::scenario::{catalog, find, run_scenario, scale_name, ScenarioSpec};

/// Usage text printed on flag errors.
pub const USAGE: &str = "usage:
  probesim-bench --list
  probesim-bench [--scenarios a,b,c] [--scale ci|laptop|paper] [--seed N]
                 [--out DIR] [--write-baseline FILE]
                 [--compare FILE] [--threshold F] [--work-threshold F]
                 [--contrast FILE] [--contrast-min PCT]

  --list                print the scenario catalog and exit
  --scenarios a,b,c     run only the named scenarios (default: all)
  --scale ci            dataset scale (default ci; laptop for real numbers)
  --seed N              RNG seed (default 2017)
  --out DIR             write one BENCH_<scenario>.json per scenario to DIR
  --write-baseline F    write all reports as a combined baseline file
  --compare F           diff this run against a baseline file; exit 1 when a
                        scenario regresses beyond the thresholds
  --threshold F         allowed fractional median-latency increase (default 1.0,
                        i.e. fail beyond 2x — wall clocks differ across machines)
  --work-threshold F    allowed fractional total-work increase (default 0.10 —
                        the work counters are deterministic, so this is tight;
                        *_fused scenarios are additionally capped at +5%)
  --contrast FILE       pair this run's <base>_fused/<base>_legacy scenarios
                        plus the explicit cross-engine pairs (the index engine
                        vs its index-free yardstick), write a one-line JSON
                        summary (work_reduction_pct per pair) to FILE, and
                        exit 1 when a pair's deterministic work reduction
                        falls below its floor
  --contrast-min PCT    minimum percent work reduction every contrast pair
                        must deliver (default 25; pairs with a stricter
                        built-in floor gate at whichever is larger)";

/// Parsed driver options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Print the catalog instead of running.
    pub list: bool,
    /// Scenario subset (None = full catalog).
    pub scenarios: Option<Vec<ScenarioSpec>>,
    /// Dataset scale.
    pub scale: Scale,
    /// RNG seed.
    pub seed: u64,
    /// Directory for per-scenario `BENCH_*.json` files.
    pub out_dir: Option<String>,
    /// Path for a combined baseline file.
    pub write_baseline: Option<String>,
    /// Baseline to compare against.
    pub compare: Option<String>,
    /// Comparator thresholds.
    pub thresholds: CompareThresholds,
    /// Path for the fused-vs-legacy contrast summary.
    pub contrast: Option<String>,
    /// Minimum percent work reduction every contrast pair must show.
    pub contrast_min: f64,
}

impl Options {
    /// Parses argv (without the program name).
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut options = Options {
            list: false,
            scenarios: None,
            scale: Scale::Ci,
            seed: 2017,
            out_dir: None,
            write_baseline: None,
            compare: None,
            thresholds: CompareThresholds::default(),
            contrast: None,
            contrast_min: 25.0,
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |name: &str| -> Result<String, String> {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("{name} expects a value"))
            };
            match flag {
                "--list" => {
                    options.list = true;
                    i += 1;
                }
                "--scenarios" => {
                    let list = value("--scenarios")?;
                    let specs = list
                        .split(',')
                        .map(|name| {
                            find(name.trim()).ok_or_else(|| {
                                format!(
                                    "unknown scenario {:?} (see --list for the catalog)",
                                    name.trim()
                                )
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    options.scenarios = Some(specs);
                    i += 2;
                }
                "--scale" => {
                    options.scale = match value("--scale")?.as_str() {
                        "ci" => Scale::Ci,
                        "laptop" => Scale::Laptop,
                        "paper" => Scale::Paper,
                        other => {
                            return Err(format!("--scale expects ci|laptop|paper, got {other:?}"))
                        }
                    };
                    i += 2;
                }
                "--seed" => {
                    options.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed expects a number".to_string())?;
                    i += 2;
                }
                "--out" => {
                    options.out_dir = Some(value("--out")?);
                    i += 2;
                }
                "--write-baseline" => {
                    options.write_baseline = Some(value("--write-baseline")?);
                    i += 2;
                }
                "--compare" => {
                    options.compare = Some(value("--compare")?);
                    i += 2;
                }
                "--threshold" => {
                    options.thresholds.latency = value("--threshold")?
                        .parse()
                        .map_err(|_| "--threshold expects a number".to_string())?;
                    i += 2;
                }
                "--work-threshold" => {
                    options.thresholds.work = value("--work-threshold")?
                        .parse()
                        .map_err(|_| "--work-threshold expects a number".to_string())?;
                    i += 2;
                }
                "--contrast" => {
                    options.contrast = Some(value("--contrast")?);
                    i += 2;
                }
                "--contrast-min" => {
                    options.contrast_min = value("--contrast-min")?
                        .parse()
                        .map_err(|_| "--contrast-min expects a number".to_string())?;
                    i += 2;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(options)
    }
}

/// Runs the driver. Returns the process exit code: 0 on success, 1 when
/// `--compare` found a regression. Flag/IO problems come back as `Err`.
pub fn run(args: &[String]) -> Result<i32, String> {
    let options = Options::parse(args)?;
    if options.list {
        print_catalog();
        return Ok(0);
    }

    let specs = options.scenarios.clone().unwrap_or_else(catalog);
    let mut reports = Vec::with_capacity(specs.len());
    println!(
        "# probesim-bench: {} scenario(s), scale={}, seed={}",
        specs.len(),
        scale_name(options.scale),
        options.seed
    );
    println!(
        "{:<28} {:>8} {:>12} {:>12} {:>8} {:>12} {:>14}",
        "scenario", "queries", "q_median", "q_p95", "updates", "u_median", "total_work"
    );
    for spec in &specs {
        let result = run_scenario(spec, options.scale, options.seed);
        let report = ScenarioReport::from_result(&result);
        println!(
            "{:<28} {:>8} {:>12} {:>12} {:>8} {:>12} {:>14}",
            report.scenario,
            report.queries,
            format_secs(report.query_latency.median),
            format_secs(report.query_latency.p95),
            report.updates,
            report
                .update_latency
                .map_or_else(|| "-".to_string(), |u| format_secs(u.median)),
            report.total_work,
        );
        reports.push(report);
    }

    if let Some(dir) = &options.out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        for report in &reports {
            let path = Path::new(dir).join(format!("BENCH_{}.json", report.scenario));
            let mut text = report.to_json().to_string();
            text.push('\n');
            std::fs::write(&path, text)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        println!("wrote {} BENCH_*.json file(s) to {dir}", reports.len());
    }
    if let Some(path) = &options.write_baseline {
        let mut text = baseline_json(&reports).to_string();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "wrote baseline with {} scenario(s) to {path}",
            reports.len()
        );
    }

    let mut failed = false;
    if let Some(path) = &options.contrast {
        let pairs = contrast_pairs(&reports);
        // A contrast gate with nothing to gate must fail, not pass: a
        // scenario rename or a narrowed --scenarios selection would
        // otherwise switch the fused-regression check off silently.
        if pairs.is_empty() {
            return Err(format!(
                "--contrast {path}: no <base>_fused/<base>_legacy scenario pair in this run \
                 (include both halves of a pair, e.g. probe_static_fused,probe_static_legacy)"
            ));
        }
        let mut text = contrast_json(&pairs).to_string();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!();
        println!(
            "# engine contrast ({} pair(s), minimum {:.0}% work reduction)",
            pairs.len(),
            options.contrast_min
        );
        for pair in &pairs {
            // A pair-specific floor can only tighten the CLI-wide one:
            // whichever is larger gates.
            let floor = pair
                .floor_pct
                .map_or(options.contrast_min, |f| f.max(options.contrast_min));
            let ok = pair.work_reduction_pct() >= floor;
            println!(
                "{} {:<22} work -{:.1}% ({} -> {}, floor {:.0}%), edges_expanded -{:.1}%",
                if ok { "PASS      " } else { "REGRESSION" },
                pair.base,
                pair.work_reduction_pct(),
                pair.legacy_total_work,
                pair.fused_total_work,
                floor,
                pair.edges_reduction_pct(),
            );
            if !ok {
                failed = true;
            }
        }
        if failed {
            println!("work reduction below the floor — failing the contrast gate");
        }
    }

    if let Some(path) = &options.compare {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let baseline = parse_baseline(&text).map_err(|e| format!("{path}: {e}"))?;
        let verdicts = compare(&baseline, &reports, options.thresholds);
        println!();
        println!(
            "# compare against {path} (latency +{:.0}%, work +{:.0}%)",
            100.0 * options.thresholds.latency,
            100.0 * options.thresholds.work
        );
        for verdict in &verdicts {
            println!("{verdict}");
        }
        let regressions = verdicts.iter().filter(|v| v.is_regression()).count();
        if regressions > 0 {
            println!("{regressions} regression(s) — failing the perf gate");
            failed = true;
        } else {
            println!("perf gate passed");
        }
    }
    Ok(if failed { 1 } else { 0 })
}

fn print_catalog() {
    let specs = catalog();
    println!("# scenario catalog ({} scenarios)", specs.len());
    for spec in specs {
        println!(
            "{:<28} [{}] {}",
            spec.name,
            spec.kind_name(),
            spec.description
        );
    }
}

fn format_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_accepts_the_full_flag_surface() {
        let options = Options::parse(&argv(&[
            "--scenarios",
            "static_top_k,dynamic_read_heavy",
            "--scale",
            "laptop",
            "--seed",
            "9",
            "--out",
            "bench-out",
            "--compare",
            "bench/baseline.json",
            "--threshold",
            "0.5",
            "--work-threshold",
            "0.2",
            "--contrast",
            "contrast.json",
            "--contrast-min",
            "30",
        ]))
        .unwrap();
        assert_eq!(options.scenarios.as_ref().unwrap().len(), 2);
        assert_eq!(options.scale, Scale::Laptop);
        assert_eq!(options.seed, 9);
        assert_eq!(options.out_dir.as_deref(), Some("bench-out"));
        assert_eq!(options.compare.as_deref(), Some("bench/baseline.json"));
        assert_eq!(options.thresholds.latency, 0.5);
        assert_eq!(options.thresholds.work, 0.2);
        assert_eq!(options.contrast.as_deref(), Some("contrast.json"));
        assert_eq!(options.contrast_min, 30.0);
    }

    #[test]
    fn parse_rejects_unknown_scenarios_and_flags() {
        assert!(Options::parse(&argv(&["--scenarios", "nope"]))
            .unwrap_err()
            .contains("unknown scenario"));
        assert!(Options::parse(&argv(&["--wat"]))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(Options::parse(&argv(&["--scale", "huge"]))
            .unwrap_err()
            .contains("--scale"));
        assert!(Options::parse(&argv(&["--seed"]))
            .unwrap_err()
            .contains("expects a value"));
    }

    #[test]
    fn list_mode_exits_zero_without_running() {
        assert_eq!(run(&argv(&["--list"])).unwrap(), 0);
    }

    #[test]
    fn contrast_without_a_pair_is_an_error_not_a_silent_pass() {
        // `static_threshold` is the cheapest scenario; a --contrast run
        // over it alone has no fused/legacy pair and must error out
        // instead of writing an empty summary and exiting 0.
        let err = run(&argv(&[
            "--scenarios",
            "static_threshold",
            "--contrast",
            "/tmp/probesim-contrast-none.json",
        ]))
        .unwrap_err();
        assert!(err.contains("no <base>_fused/<base>_legacy"), "{err}");
        assert!(!std::path::Path::new("/tmp/probesim-contrast-none.json").exists());
    }
}
