//! End-to-end tests for the scenario engine and the `probesim-bench`
//! driver: catalog size, schema-stable report emission, and — the
//! property CI depends on — a nonzero exit when `--compare` meets an
//! injected regression.

use probesim_bench::cli;
use probesim_bench::report::{parse_baseline, Json, ScenarioReport, SCHEMA_VERSION};
use probesim_bench::scenario::{catalog, find, run_scenario};
use probesim_datasets::Scale;

fn argv(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

/// A scratch directory unique to this test process.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("probesim_bench_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn catalog_names_enough_scenarios_including_dynamic_ones() {
    let specs = catalog();
    assert!(
        specs.len() >= 8,
        "--list must name >= 8 scenarios, got {}",
        specs.len()
    );
    let dynamic: Vec<&str> = specs
        .iter()
        .filter(|s| s.is_dynamic())
        .map(|s| s.name)
        .collect();
    assert!(
        dynamic.len() >= 2,
        "need >= 2 update-interleaved dynamic workloads, got {dynamic:?}"
    );
}

#[test]
fn out_emits_schema_stable_bench_json() {
    let dir = scratch_dir("out");
    let fast = "static_threshold,session_reuse_stream";
    let code = cli::run(&argv(&[
        "--scenarios",
        fast,
        "--scale",
        "ci",
        "--seed",
        "11",
        "--out",
        dir.to_str().unwrap(),
    ]))
    .expect("driver runs");
    assert_eq!(code, 0);

    for name in fast.split(',') {
        let path = dir.join(format!("BENCH_{name}.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        let value = Json::parse(&text).expect("emitted file is valid JSON");
        // Schema-stable: fixed version stamp, fixed top-level key order.
        assert_eq!(
            value.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(value.get("scenario").and_then(Json::as_str), Some(name));
        let Json::Obj(fields) = &value else {
            panic!("report root must be an object")
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema_version",
                "scenario",
                "description",
                "kind",
                "seed",
                "scale",
                "graph",
                "config",
                "workload",
                "query_latency_secs",
                "query_stats",
                "total_work",
            ],
            "top-level key order changed — that's a schema break; bump SCHEMA_VERSION"
        );
        // And it round-trips through the reader `--compare` uses.
        let report = ScenarioReport::from_json(&value).expect("readable report");
        assert_eq!(report.scenario, name);
        assert!(report.query_latency.count > 0);
        assert!(report.total_work > 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dynamic_reports_carry_update_latencies() {
    let spec = find("dynamic_read_heavy").unwrap();
    let result = run_scenario(&spec, Scale::Ci, 5);
    let report = ScenarioReport::from_result(&result);
    let text = report.to_json().to_string();
    let value = Json::parse(&text).unwrap();
    assert_eq!(value.get("kind").and_then(Json::as_str), Some("dynamic"));
    assert!(
        value.get("update_latency_secs").is_some(),
        "dynamic reports must include update latencies"
    );
    assert!(report.updates > 0);
}

#[test]
fn compare_exits_nonzero_on_an_injected_regression() {
    let dir = scratch_dir("compare");
    let scenario = "static_threshold";
    let baseline_path = dir.join("baseline.json");

    // Write an honest baseline for one fast scenario...
    let code = cli::run(&argv(&[
        "--scenarios",
        scenario,
        "--scale",
        "ci",
        "--write-baseline",
        baseline_path.to_str().unwrap(),
    ]))
    .expect("baseline run");
    assert_eq!(code, 0);

    // ...a self-compare passes (identical seed => identical work, and the
    // latency threshold tolerates run-to-run noise)...
    let code = cli::run(&argv(&[
        "--scenarios",
        scenario,
        "--scale",
        "ci",
        "--compare",
        baseline_path.to_str().unwrap(),
    ]))
    .expect("self-compare");
    assert_eq!(code, 0, "self-compare must pass the gate");

    // ...then corrupt the baseline so the current run looks like a
    // regression on the deterministic work signal, and the gate must
    // exit nonzero.
    let text = std::fs::read_to_string(&baseline_path).unwrap();
    let honest = parse_baseline(&text).unwrap();
    let real_work = honest[0].total_work;
    assert!(real_work > 0);
    let doctored = text.replace(
        &format!("\"total_work\": {real_work}"),
        &format!("\"total_work\": {}", real_work / 2),
    );
    assert_ne!(doctored, text, "injection must change the baseline");
    std::fs::write(&baseline_path, doctored).unwrap();

    let code = cli::run(&argv(&[
        "--scenarios",
        scenario,
        "--scale",
        "ci",
        "--compare",
        baseline_path.to_str().unwrap(),
    ]))
    .expect("regression compare");
    assert_ne!(code, 0, "injected regression must fail the perf gate");
    assert_eq!(code, 1, "regressions exit with code 1 specifically");

    // A loosened work threshold lets the same diff pass again — the
    // threshold flag is live.
    let code = cli::run(&argv(&[
        "--scenarios",
        scenario,
        "--scale",
        "ci",
        "--compare",
        baseline_path.to_str().unwrap(),
        "--work-threshold",
        "2.0",
    ]))
    .expect("loose compare");
    assert_eq!(code, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_against_missing_or_malformed_baseline_is_an_error() {
    assert!(cli::run(&argv(&[
        "--scenarios",
        "static_threshold",
        "--compare",
        "/nonexistent/baseline.json",
    ]))
    .is_err());

    let dir = scratch_dir("badbase");
    let path = dir.join("bad.json");
    std::fs::write(&path, "{not json").unwrap();
    assert!(cli::run(&argv(&[
        "--scenarios",
        "static_threshold",
        "--compare",
        path.to_str().unwrap(),
    ]))
    .is_err());
    std::fs::remove_dir_all(&dir).ok();
}
