#![warn(missing_docs)]
//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies, [`Just`],
//! `any::<T>()`, `prop::collection::vec`, the [`proptest!`] macro, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` family.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic case index instead of a minimized input) and generation
//! is derived from a per-test seed so runs are reproducible.

/// Deterministic generation RNG for property tests (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// How a property-test case ends early.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
    /// A `prop_assert!` failed with this message.
    Fail(String),
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// The strategy behind [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec()`]: a `usize` range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                start: len,
                end_exclusive: len + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end_exclusive - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with element strategy `element` and a length
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a [`proptest!`] body; on failure the case is
/// reported (with its case index) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when its generated inputs are not interesting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(test_name, case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let mut __proptest_case =
                    || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                match __proptest_case() {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case}/{} of {test_name} failed:\n{msg}",
                            config.cases
                        );
                    }
                }
            }
            assert!(
                rejected < config.cases,
                "{test_name}: every generated case was rejected by prop_assume!"
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3usize..10,
            y in 5u32..=9,
            f in 0.25f64..0.75,
            b in any::<bool>(),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(0u32..5, 2..7)
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn map_and_flat_map_compose(
            pair in (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n)).prop_map(|(n, i)| (n, i))
        ) {
            let (n, i) = pair;
            prop_assert!(i < n, "i = {i}, n = {n}");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(0u64..1000, 3..6);
        let a: Vec<u64> = {
            let mut rng = crate::TestRng::for_case("det", 7);
            crate::Strategy::generate(&s, &mut rng)
        };
        let b: Vec<u64> = {
            let mut rng = crate::TestRng::for_case("det", 7);
            crate::Strategy::generate(&s, &mut rng)
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(_x in 0u32..4) {
                prop_assert!(false, "intentional");
            }
        }
        always_fails();
    }
}
