#![warn(missing_docs)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact API subset it uses: [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension trait with `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna) seeded through
//! SplitMix64 — statistically strong enough for the Monte Carlo estimators
//! and property tests in this repository. It is **not** a cryptographic RNG
//! and its stream differs from upstream `rand`'s ChaCha-based `StdRng`;
//! everything in this workspace treats seeds as opaque reproducibility
//! handles, so only self-consistency matters.

/// A source of random 64-bit words. Object-safe core of the RNG stack.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a reproducible RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw from `[0, bound)` via Lemire's multiply-shift
/// with rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Threshold for rejection: (2^64) mod bound.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::draw(rng);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange for core::ops::Range<f32> {
    type Output = f32;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f32::draw(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience extension methods over any [`RngCore`], mirroring `rand`'s
/// `Rng` trait.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256\*\* seeded via SplitMix64.
    ///
    /// Small (32 bytes), fast, and passes BigCrush; the stream is fully
    /// determined by the seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                // The all-zero state is the one fixed point; SplitMix64
                // cannot produce it from any seed, but keep the guard.
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn gen_range_is_in_bounds_and_unbiased() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            let x = rng.gen_range(0..7usize);
            counts[x] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 500.0,
                "bucket {i} count {c} deviates"
            );
        }
        for _ in 0..1000 {
            let x = rng.gen_range(3..=5u32);
            assert!((3..=5).contains(&x));
            let y = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&y));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let via_ref = draw(&mut rng);
        assert!((0.0..1.0).contains(&via_ref));
    }
}
