#![warn(missing_docs)]
//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `b.iter(...)`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! adaptive wall-clock timer instead of criterion's statistical engine.
//! Each benchmark prints `name  median-ish mean  iters` on one line.
//!
//! Running a bench binary with `--test` (what `cargo test --benches` does
//! for `harness = false` targets) executes every benchmark exactly once,
//! as upstream criterion does.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// How long each measurement aims to run for.
const TARGET_MEASURE: Duration = Duration::from_millis(300);

/// Execution mode, decided from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Measure,
    /// One iteration per benchmark (`--test`).
    Smoke,
}

/// Entry point object handed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::Smoke,
                // Harness flags cargo may pass; all ignored.
                "--bench" | "--profile-time" | "--noplot" | "--quiet" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion { mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let label = id.into().label;
        self.run_one(&label, &mut f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: &mut F) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.mode,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        match self.mode {
            Mode::Smoke => println!("bench {label}: ok (smoke, 1 iter)"),
            Mode::Measure => {
                let per_iter = if bencher.iters == 0 {
                    Duration::ZERO
                } else {
                    bencher.total / bencher.iters.max(1) as u32
                };
                println!(
                    "bench {label}: {} /iter ({} iters)",
                    human_duration(per_iter),
                    bencher.iters
                );
            }
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; the shim sizes samples by
    /// wall clock instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for upstream compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        self.criterion.run_one(&label, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        self.criterion
            .run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timer handle passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`, adaptively choosing an iteration count so the
    /// measurement runs for roughly `TARGET_MEASURE`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // Calibration: one timed iteration decides the batch size.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        let mut iters: u64 = 1;
        let mut total = first;
        if first < TARGET_MEASURE {
            let per = first.max(Duration::from_nanos(20));
            let remaining = TARGET_MEASURE.saturating_sub(first);
            let extra = (remaining.as_nanos() / per.as_nanos().max(1)).min(5_000_000) as u64;
            let start = Instant::now();
            for _ in 0..extra {
                black_box(routine());
            }
            total += start.elapsed();
            iters += extra;
        }
        self.total = total;
        self.iters = iters;
    }
}

fn human_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Groups benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn smoke_mode_runs_each_bench_once() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: None,
        };
        sample_bench(&mut c);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: Some("no-such-bench".into()),
        };
        // Would run forever-ish in Measure mode if not filtered; in smoke
        // mode this just checks the filter path doesn't panic.
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("probesim", "eps0.1").label,
            "probesim/eps0.1"
        );
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }
}
