//! The version-keyed LRU result cache.
//!
//! ## Why the key is sound
//!
//! The cache maps `(snapshot version, query) → Arc<QueryOutput>`. Two
//! store states with equal versions carry identical edge sets (the
//! `GraphStore` invariant, proven bit-for-bit by the churn tests), and a
//! query's execution is a pure function of `(edge set, config, seed,
//! query)` — the per-query RNG stream is derived, never shared. A cache
//! hit is therefore **bit-identical to a fresh execution at the pinned
//! version by construction**, not by comparison; the soundness tests
//! re-derive hits from scratch and `to_bits`-compare anyway.
//!
//! ## Invalidation
//!
//! Entries for a version never become *wrong* — the version pins them —
//! they become *unreachable*: once a version leaves the service's
//! snapshot-retention window, no request can resolve to it, so its
//! entries are dead weight. The writer-side hook installed via
//! [`probesim_graph::GraphStore::set_mutation_observer`] calls
//! [`ResultCache::invalidate_below`] on every effective mutation, keyed
//! off the new version, so memory is bounded by `capacity` *live*
//! entries even under heavy churn. `Latest` consistency needs no
//! invalidation at all: a mutation bumps the version, and the bumped
//! version simply never matches a stale key.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use probesim_core::{Query, QueryOutput};
use probesim_graph::{FxHashMap, NodeId};

/// A hashable, exact projection of `(version, Query)`.
///
/// `Query` carries an `f64` (the threshold `tau`), so the key stores its
/// bit pattern: distinct bit patterns get distinct entries, which is the
/// conservative direction (a `-0.0`/`0.0` miss costs one re-execution,
/// never a wrong answer). NaN never reaches the cache — validation
/// rejects it before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    version: u64,
    kind: u8,
    node: NodeId,
    arg: u64,
}

impl CacheKey {
    /// Builds the key for `query` answered at `version`.
    pub fn new(version: u64, query: &Query) -> CacheKey {
        let (kind, node, arg) = match *query {
            Query::SingleSource { node } => (0u8, node, 0u64),
            Query::TopK { node, k } => (1, node, k as u64),
            Query::Threshold { node, tau } => (2, node, tau.to_bits()),
        };
        CacheKey {
            version,
            kind,
            node,
            arg,
        }
    }

    /// The snapshot version this key pins.
    pub fn version(&self) -> u64 {
        self.version
    }
}

const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    value: Arc<QueryOutput>,
    prev: usize,
    next: usize,
}

#[derive(Default)]
struct LruInner {
    map: FxHashMap<CacheKey, usize>,
    slots: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    /// Lower bound on the smallest resident version (`u64::MAX` when
    /// empty). Inserts lower it; removals never raise it, so it may be
    /// stale-low — which only costs an unnecessary scan, never a missed
    /// invalidation. [`ResultCache::invalidate_below`] early-returns on
    /// it, making the writer-side per-mutation call O(1) in the common
    /// case (nothing below the floor) and recomputes it exactly after a
    /// dropping scan.
    min_version: u64,
}

impl LruInner {
    fn new() -> LruInner {
        LruInner {
            map: FxHashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            min_version: u64::MAX,
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = {
            let e = self.slots[i]
                .as_ref()
                .expect("invariant: detached slots are live");
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => {
                self.slots[p]
                    .as_mut()
                    .expect("invariant: list prev points at a live slot")
                    .next = next
            }
        }
        match next {
            NIL => self.tail = prev,
            n => {
                self.slots[n]
                    .as_mut()
                    .expect("invariant: list next points at a live slot")
                    .prev = prev
            }
        }
    }

    fn push_front(&mut self, i: usize) {
        {
            let e = self.slots[i]
                .as_mut()
                .expect("invariant: pushed slots are live");
            e.prev = NIL;
            e.next = self.head;
        }
        match self.head {
            NIL => self.tail = i,
            h => {
                self.slots[h]
                    .as_mut()
                    .expect("invariant: list head points at a live slot")
                    .prev = i
            }
        }
        self.head = i;
    }

    fn remove_slot(&mut self, i: usize) -> Entry {
        self.detach(i);
        let entry = self.slots[i]
            .take()
            .expect("invariant: removed slots are live");
        self.map.remove(&entry.key);
        self.free.push(i);
        entry
    }
}

/// A thread-safe LRU cache of query outputs keyed by
/// `(snapshot version, query)`.
///
/// Hit/miss/invalidation counters are lock-free reads; the map + recency
/// list sit behind one mutex (operations are O(1), the lock is held for
/// nanoseconds — contention is not a concern next to probe work).
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<LruInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("invalidated", &self.invalidated())
            .finish()
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` entries. `capacity == 0`
    /// disables caching entirely (every `get` misses, `insert` is a
    /// no-op) — the configuration the A/B benchmarks use.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            inner: Mutex::new(LruInner::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by writer-side invalidation (not LRU eviction).
    pub fn invalidated(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// Looks `(version, query)` up, refreshing its recency on a hit.
    pub fn get(&self, version: u64, query: &Query) -> Option<Arc<QueryOutput>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let key = CacheKey::new(version, query);
        let mut inner = self.inner.lock().expect("cache poisoned");
        match inner.map.get(&key).copied() {
            Some(i) => {
                inner.detach(i);
                inner.push_front(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(
                    &inner.slots[i]
                        .as_ref()
                        .expect("invariant: map hits point at live slots")
                        .value,
                ))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `(version, query) → value`, evicting the
    /// least-recently-used entry when full.
    pub fn insert(&self, version: u64, query: &Query, value: Arc<QueryOutput>) {
        if self.capacity == 0 {
            return;
        }
        let key = CacheKey::new(version, query);
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(i) = inner.map.get(&key).copied() {
            inner.detach(i);
            inner.slots[i]
                .as_mut()
                .expect("invariant: refreshed keys point at live slots")
                .value = value;
            inner.push_front(i);
            return;
        }
        if inner.map.len() >= self.capacity {
            let lru = inner.tail;
            debug_assert_ne!(lru, NIL, "nonzero capacity with a full map has a tail");
            inner.remove_slot(lru);
        }
        let slot = match inner.free.pop() {
            Some(i) => {
                inner.slots[i] = Some(Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
            None => {
                inner.slots.push(Some(Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                }));
                inner.slots.len() - 1
            }
        };
        inner.map.insert(key, slot);
        inner.push_front(slot);
        inner.min_version = inner.min_version.min(key.version);
    }

    /// Drops every entry whose version is below `floor` — the
    /// writer-side invalidation hook wired into `GraphStore::mutate`
    /// via the mutation observer. Returns how many entries were dropped.
    pub fn invalidate_below(&self, floor: u64) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().expect("cache poisoned");
        // Common case (the observer fires on *every* effective mutation,
        // but the floor only reaches resident versions once they age out
        // of the retention window): nothing below the floor — O(1), no
        // scan, no allocation, mutex released in nanoseconds.
        if inner.min_version >= floor {
            return 0;
        }
        let mut stale: Vec<usize> = inner
            .map
            .iter()
            .filter(|(key, _)| key.version < floor)
            .map(|(_, &i)| i)
            .collect();
        // The map iterates in hash order; sort so the free list (and
        // therefore future slot reuse) is independent of it.
        stale.sort_unstable();
        let dropped = stale.len();
        for i in stale {
            inner.remove_slot(i);
        }
        inner.min_version = inner
            .map
            .keys()
            .map(|key| key.version)
            .min()
            .unwrap_or(u64::MAX);
        self.invalidated
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_core::{ProbeSim, ProbeSimConfig};
    use probesim_graph::toy::{toy_graph, TOY_DECAY};

    /// A real query output whose `scores.query()` identifies it.
    fn output(node: NodeId) -> Arc<QueryOutput> {
        let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.2, 0.1).with_seed(1));
        Arc::new(
            engine
                .session(&toy_graph())
                .run(Query::SingleSource { node: node % 8 })
                .unwrap(),
        )
    }

    fn q(node: NodeId) -> Query {
        Query::SingleSource { node }
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = ResultCache::new(4);
        assert!(cache.get(1, &q(0)).is_none());
        cache.insert(1, &q(0), output(0));
        let hit = cache.get(1, &q(0)).expect("hit");
        assert_eq!(hit.scores.query(), 0);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn version_is_part_of_the_key() {
        let cache = ResultCache::new(4);
        cache.insert(1, &q(0), output(0));
        assert!(cache.get(2, &q(0)).is_none(), "bumped version never hits");
        assert!(cache.get(1, &q(0)).is_some());
    }

    #[test]
    fn query_kinds_and_parameters_key_distinctly() {
        let cache = ResultCache::new(8);
        cache.insert(1, &Query::SingleSource { node: 0 }, output(0));
        assert!(cache.get(1, &Query::TopK { node: 0, k: 0 }).is_none());
        assert!(cache
            .get(1, &Query::Threshold { node: 0, tau: 0.0 })
            .is_none());
        cache.insert(1, &Query::TopK { node: 0, k: 5 }, output(0));
        assert!(cache.get(1, &Query::TopK { node: 0, k: 6 }).is_none());
        cache.insert(1, &Query::Threshold { node: 0, tau: 0.5 }, output(0));
        assert!(cache
            .get(1, &Query::Threshold { node: 0, tau: 0.25 })
            .is_none());
        assert!(cache
            .get(1, &Query::Threshold { node: 0, tau: 0.5 })
            .is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert(1, &q(0), output(0));
        cache.insert(1, &q(1), output(1));
        // Touch 0 so 1 becomes the LRU entry.
        assert!(cache.get(1, &q(0)).is_some());
        cache.insert(1, &q(2), output(2));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1, &q(1)).is_none(), "LRU entry evicted");
        assert!(cache.get(1, &q(0)).is_some());
        assert!(cache.get(1, &q(2)).is_some());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let cache = ResultCache::new(2);
        cache.insert(1, &q(0), output(0));
        cache.insert(1, &q(1), output(1));
        cache.insert(1, &q(0), output(7)); // refresh, not duplicate
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(1, &q(0)).unwrap().scores.query(), 7);
        cache.insert(1, &q(2), output(2));
        assert!(cache.get(1, &q(1)).is_none(), "1 was the LRU after refresh");
    }

    #[test]
    fn invalidate_below_drops_old_versions_only() {
        let cache = ResultCache::new(8);
        for version in 1..=4 {
            cache.insert(version, &q(0), output(0));
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.invalidate_below(3), 2);
        assert_eq!(cache.invalidated(), 2);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1, &q(0)).is_none());
        assert!(cache.get(2, &q(0)).is_none());
        assert!(cache.get(3, &q(0)).is_some());
        assert!(cache.get(4, &q(0)).is_some());
        // Eviction still consistent after invalidation freed slots.
        for node in 1..=8 {
            cache.insert(5, &q(node), output(node));
        }
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn invalidate_below_fast_path_tracks_the_version_floor() {
        let cache = ResultCache::new(8);
        cache.insert(5, &q(0), output(0));
        cache.insert(7, &q(1), output(1));
        // Floor at or below the minimum resident version: O(1) no-op.
        assert_eq!(cache.invalidate_below(5), 0);
        assert_eq!(cache.len(), 2);
        // A dropping scan recomputes the floor exactly, so the next
        // same-floor call is a no-op again.
        assert_eq!(cache.invalidate_below(6), 1);
        assert_eq!(cache.invalidate_below(7), 0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidate_below(8), 1);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidate_below(u64::MAX), 0, "empty cache no-op");
        // Inserting after a full purge restores tracking.
        cache.insert(9, &q(2), output(2));
        assert_eq!(cache.invalidate_below(9), 0);
        assert_eq!(cache.invalidate_below(10), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert(1, &q(0), output(0));
        assert!(cache.get(1, &q(0)).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidate_below(10), 0);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn stress_interleaved_ops_keep_the_structure_consistent() {
        // Deterministic churn across insert/get/invalidate with a tiny
        // capacity: every operation must keep map, list and free-list in
        // agreement (exercised indirectly through len/hit behavior).
        let cache = ResultCache::new(3);
        for round in 0u64..50 {
            let version = round / 5;
            cache.insert(version, &q((round % 7) as NodeId), output(0));
            let _ = cache.get(version, &q((round % 3) as NodeId));
            if round % 11 == 0 {
                cache.invalidate_below(version);
            }
            assert!(cache.len() <= 3);
        }
    }
}
