//! The service wire types: requests, responses, tickets and errors.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use probesim_core::{EngineChoice, EngineKind, Query, QueryError, QueryOutput};

/// Scheduling class of a request. Interactive requests are always
/// dequeued before batch requests (strict two-level priority, no aging —
/// a serving tier's batch lane is explicitly best-effort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// User-facing: jumps every queued batch request.
    #[default]
    Interactive,
    /// Best-effort: runs when no interactive request is waiting.
    Batch,
}

/// Which graph version a request is willing to be answered at.
///
/// Snapshot versions count *effective* mutations, and equal versions
/// carry identical edge sets (the store invariant proven bit-for-bit in
/// the churn tests) — which is exactly what makes `(version, query)` a
/// sound result-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Answer at the newest published version.
    #[default]
    Latest,
    /// Answer at the newest published version, but fail with
    /// [`ServiceError::VersionNotReached`] if that version is older than
    /// the given one (read-your-writes across services sharing a
    /// version clock).
    AtLeastVersion(u64),
    /// Answer at exactly the given version. Fails with
    /// [`ServiceError::VersionNotRetained`] when the version has fallen
    /// out of the service's retention window.
    Pinned(u64),
}

/// The canonical string form: `latest`, `pinned:V`, `at-least:V`. This
/// is the one spelling shared by the CLI's `--consistency` flag and the
/// fleet router's configuration; [`std::str::FromStr`] additionally
/// accepts the bare `pinned` / `at-least` (version 0) so a flag can
/// name the level before a stream has produced any version.
impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Consistency::Latest => write!(f, "latest"),
            Consistency::AtLeastVersion(version) => write!(f, "at-least:{version}"),
            Consistency::Pinned(version) => write!(f, "pinned:{version}"),
        }
    }
}

/// The error [`Consistency`]'s `FromStr` returns: the rejected input
/// plus the accepted grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConsistencyError {
    /// The input that failed to parse.
    pub input: String,
}

impl std::fmt::Display for ParseConsistencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown consistency {:?} (expected latest, pinned[:V] or at-least[:V])",
            self.input
        )
    }
}

impl std::error::Error for ParseConsistencyError {}

impl std::str::FromStr for Consistency {
    type Err = ParseConsistencyError;

    fn from_str(s: &str) -> Result<Consistency, ParseConsistencyError> {
        let reject = || ParseConsistencyError {
            input: s.to_string(),
        };
        let (level, version) = match s.split_once(':') {
            Some((level, version)) => (level, Some(version.parse::<u64>().map_err(|_| reject())?)),
            None => (s, None),
        };
        match (level, version) {
            ("latest", None) => Ok(Consistency::Latest),
            ("latest", Some(_)) => Err(reject()),
            ("pinned", version) => Ok(Consistency::Pinned(version.unwrap_or(0))),
            ("at-least", version) => Ok(Consistency::AtLeastVersion(version.unwrap_or(0))),
            _ => Err(reject()),
        }
    }
}

/// One query plus its serving envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// The SimRank query to answer.
    pub query: Query,
    /// Wall-clock latency bound, measured from `submit` — queue wait
    /// counts against it. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Deterministic work cap in `QueryStats::total_work` units.
    /// `None` = no cap.
    pub work_cap: Option<u64>,
    /// Scheduling class.
    pub priority: Priority,
    /// Version requirement.
    pub consistency: Consistency,
    /// Engine override for A/B comparison: `None` defers to the
    /// service's configured [`EngineChoice`] (the adaptive planner when
    /// that is `Auto`); `Some(..)` forces this request's plan.
    pub engine: Option<EngineChoice>,
}

impl Request {
    /// A request with defaults: no deadline, no work cap, interactive,
    /// latest version.
    pub fn new(query: Query) -> Request {
        Request {
            query,
            deadline: None,
            work_cap: None,
            priority: Priority::default(),
            consistency: Consistency::default(),
            engine: None,
        }
    }

    /// Arms a wall-clock deadline (measured from submission).
    pub fn with_deadline(mut self, deadline: Duration) -> Request {
        self.deadline = Some(deadline);
        self
    }

    /// Arms a deterministic work cap.
    pub fn with_work_cap(mut self, cap: u64) -> Request {
        self.work_cap = Some(cap);
        self
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Request {
        self.priority = priority;
        self
    }

    /// Sets the version requirement.
    pub fn with_consistency(mut self, consistency: Consistency) -> Request {
        self.consistency = consistency;
        self
    }

    /// Forces an engine for this request (A/B override of the service's
    /// configured [`EngineChoice`]).
    pub fn with_engine(mut self, engine: EngineChoice) -> Request {
        self.engine = Some(engine);
        self
    }
}

/// A successfully answered request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The query's answer (shared with the result cache — cloning a
    /// response never copies scores).
    pub output: Arc<QueryOutput>,
    /// The snapshot version the answer was computed at (for cache hits:
    /// the version the cached execution was pinned to, which is equal by
    /// key construction).
    pub version: u64,
    /// True when the answer came from the version-keyed result cache —
    /// bit-identical to a fresh execution at `version` by construction,
    /// with zero probe work spent.
    pub cache_hit: bool,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time spent resolving + executing (cache hits: lookup time only).
    pub exec_time: Duration,
    /// The engine that produced `output` — what the planner resolved an
    /// `auto` request to. For cache hits: the engine of the cached
    /// execution (the stored output's counters carry the provenance).
    pub engine: EngineKind,
}

/// Why the service could not answer a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The query itself failed — validation
    /// (`QueryError::NodeOutOfRange`, …) or a cooperative abort
    /// (`QueryError::DeadlineExceeded` / `WorkBudgetExceeded` with
    /// partial stats).
    Query(QueryError),
    /// `Consistency::Pinned(v)` named a version outside the retention
    /// window.
    VersionNotRetained {
        /// The version the request pinned.
        requested: u64,
        /// Oldest version still retained.
        oldest_retained: u64,
        /// Newest published version.
        newest: u64,
    },
    /// `Consistency::AtLeastVersion(v)` asked for a version the store
    /// has not reached.
    VersionNotReached {
        /// The version floor the request demanded.
        requested: u64,
        /// Newest published version.
        newest: u64,
    },
    /// The service is shutting down; the request was not executed.
    ShuttingDown,
}

impl From<QueryError> for ServiceError {
    fn from(e: QueryError) -> ServiceError {
        ServiceError::Query(e)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Query(e) => write!(f, "{e}"),
            ServiceError::VersionNotRetained {
                requested,
                oldest_retained,
                newest,
            } => write!(
                f,
                "pinned version {requested} is no longer retained \
                 (window: {oldest_retained}..={newest})"
            ),
            ServiceError::VersionNotReached { requested, newest } => write!(
                f,
                "version {requested} not reached yet (newest published: {newest})"
            ),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A handle to an in-flight request ([`crate::QueryService::submit`]).
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Result<Response, ServiceError>>,
}

impl Ticket {
    /// Blocks until the request completes. A dropped service resolves
    /// pending tickets to [`ServiceError::ShuttingDown`].
    pub fn wait(self) -> Result<Response, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShuttingDown))
    }

    /// Non-blocking poll: `Ok(Some(..))` when done, `Ok(None)` while
    /// still in flight.
    // The nested Option<Result<..>> IS the poll protocol; a named
    // alias would hide the shape callers must match on.
    #[allow(clippy::type_complexity)]
    pub fn poll(&self) -> Option<Result<Response, ServiceError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServiceError::ShuttingDown)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_core::QueryStats;

    #[test]
    fn request_builder_sets_every_field() {
        let r = Request::new(Query::TopK { node: 3, k: 5 })
            .with_deadline(Duration::from_millis(20))
            .with_work_cap(1_000)
            .with_priority(Priority::Batch)
            .with_consistency(Consistency::Pinned(7))
            .with_engine(EngineChoice::Index);
        assert_eq!(r.deadline, Some(Duration::from_millis(20)));
        assert_eq!(r.work_cap, Some(1_000));
        assert_eq!(r.priority, Priority::Batch);
        assert_eq!(r.consistency, Consistency::Pinned(7));
        assert_eq!(r.engine, Some(EngineChoice::Index));
        let d = Request::new(Query::SingleSource { node: 0 });
        assert_eq!(d.priority, Priority::Interactive);
        assert_eq!(d.consistency, Consistency::Latest);
        assert_eq!(d.deadline, None);
        assert_eq!(d.engine, None, "no override: the service's choice rules");
    }

    #[test]
    fn service_error_messages_are_actionable() {
        let messages = [
            ServiceError::Query(QueryError::DeadlineExceeded {
                partial: QueryStats::default(),
            })
            .to_string(),
            ServiceError::VersionNotRetained {
                requested: 3,
                oldest_retained: 10,
                newest: 17,
            }
            .to_string(),
            ServiceError::VersionNotReached {
                requested: 99,
                newest: 17,
            }
            .to_string(),
            ServiceError::ShuttingDown.to_string(),
        ];
        assert!(messages[0].contains("deadline"));
        assert!(messages[1].contains("no longer retained"));
        assert!(messages[1].contains("10..=17"));
        assert!(messages[2].contains("not reached"));
        assert!(messages[3].contains("shutting down"));
    }

    #[test]
    fn consistency_string_form_round_trips() {
        let levels = [
            Consistency::Latest,
            Consistency::AtLeastVersion(0),
            Consistency::AtLeastVersion(42),
            Consistency::Pinned(0),
            Consistency::Pinned(u64::MAX),
        ];
        for level in levels {
            assert_eq!(level.to_string().parse::<Consistency>(), Ok(level));
        }
    }

    #[test]
    fn consistency_parse_accepts_bare_levels_and_rejects_noise() {
        assert_eq!("latest".parse(), Ok(Consistency::Latest));
        assert_eq!("pinned".parse(), Ok(Consistency::Pinned(0)));
        assert_eq!("at-least".parse(), Ok(Consistency::AtLeastVersion(0)));
        assert_eq!("pinned:9".parse(), Ok(Consistency::Pinned(9)));
        for bad in [
            "",
            "newest",
            "latest:3",
            "pinned:",
            "pinned:x",
            "at-least:-1",
        ] {
            let err = bad.parse::<Consistency>().unwrap_err();
            assert_eq!(err.input, bad);
            assert!(err.to_string().contains("expected latest"), "{err}");
        }
    }
}
