//! The serving facade: [`ServiceBuilder`] → [`QueryService`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use probesim_core::{
    EngineChoice, EngineKind, EnginePlan, IndexEngine, PlanReason, PlannerInputs, ProbeBudget,
    ProbeSim, ProbeSimConfig, Query, QueryError, QuerySession, QueryStats,
};
use probesim_graph::{Commit, DegreeStats, GraphSnapshot, GraphStore, GraphUpdate, GraphView};

use crate::cache::ResultCache;
use crate::request::{Consistency, Priority, Request, Response, ServiceError, Ticket};

/// Configures and constructs a [`QueryService`].
///
/// ```
/// use probesim_core::{ProbeSimConfig, Query};
/// use probesim_graph::GraphStore;
/// use probesim_service::{Request, ServiceBuilder};
/// use probesim_graph::toy::{toy_graph, A, D, TOY_DECAY};
///
/// let store = GraphStore::from_view(&toy_graph());
/// let service = ServiceBuilder::new(
///     ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(7),
/// )
/// .workers(2)
/// .cache_capacity(64)
/// .build(store);
///
/// let response = service
///     .call(Request::new(Query::TopK { node: A, k: 1 }))
///     .unwrap();
/// assert_eq!(response.output.ranking()[0].0, D);
/// assert!(!response.cache_hit);
/// // The identical query at the same version is served from the cache,
/// // bit-identical by construction.
/// let again = service
///     .call(Request::new(Query::TopK { node: A, k: 1 }))
///     .unwrap();
/// assert!(again.cache_hit);
/// assert_eq!(again.output.scores, response.output.scores);
/// ```
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    config: ProbeSimConfig,
    workers: usize,
    cache_capacity: usize,
    retained_versions: usize,
    default_deadline: Option<Duration>,
    engine_choice: EngineChoice,
    index_max_rows: usize,
}

impl ServiceBuilder {
    /// A builder with the given engine configuration and defaults:
    /// auto-sized worker pool, 1024-entry cache, 8 retained versions, no
    /// default deadline.
    pub fn new(config: ProbeSimConfig) -> ServiceBuilder {
        ServiceBuilder {
            config,
            workers: 0,
            cache_capacity: 1024,
            retained_versions: 8,
            default_deadline: None,
            engine_choice: EngineChoice::Probesim,
            index_max_rows: probesim_core::index::DEFAULT_MAX_ROWS,
        }
    }

    /// Fixed worker-thread count; `0` (the default) auto-sizes to the
    /// machine's available parallelism, capped at 8.
    pub fn workers(mut self, workers: usize) -> ServiceBuilder {
        self.workers = workers;
        self
    }

    /// Result-cache capacity in entries; `0` disables caching.
    pub fn cache_capacity(mut self, capacity: usize) -> ServiceBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// How many published versions stay pinnable
    /// ([`Consistency::Pinned`]); at least 1 (the latest is always
    /// retained).
    pub fn retained_versions(mut self, versions: usize) -> ServiceBuilder {
        self.retained_versions = versions.max(1);
        self
    }

    /// Deadline applied to requests that do not carry their own.
    pub fn default_deadline(mut self, deadline: Duration) -> ServiceBuilder {
        self.default_deadline = Some(deadline);
        self
    }

    /// The service-wide engine policy for requests without a
    /// [`Request::engine`] override: force the index-free engine (the
    /// default — behavior-identical to a service without the index
    /// tier), force the contribution-index engine, or `Auto` for the
    /// adaptive per-query planner ([`probesim_core::plan`]).
    pub fn engine_choice(mut self, choice: EngineChoice) -> ServiceBuilder {
        self.engine_choice = choice;
        self
    }

    /// Row-count capacity of the contribution index (oldest row evicted
    /// first). The index only fills on the index-engine path, so the
    /// default capacity costs nothing on a pure-ProbeSim service.
    pub fn index_max_rows(mut self, max_rows: usize) -> ServiceBuilder {
        self.index_max_rows = max_rows.max(1);
        self
    }

    /// Enables the intra-query parallel sweep
    /// ([`probesim_core::Optimizations::parallel_sweep`]) on every worker
    /// session, with `threads` scoped expansion threads per query (`0`
    /// auto-sizes, capped at 8).
    ///
    /// This budget multiplies with [`ServiceBuilder::workers`]: a service
    /// with `workers(w)` and `sweep_threads(t)` can have up to `w · t`
    /// threads expanding frontiers at once. Prefer inter-query
    /// parallelism (`workers`) for throughput under concurrent load, and
    /// reserve `sweep_threads` for latency-sensitive deployments with
    /// few concurrent queries over large graphs — and size `w · t` to
    /// the machine. Answers are bit-identical either way.
    pub fn sweep_threads(mut self, threads: usize) -> ServiceBuilder {
        self.config.optimizations.parallel_sweep = true;
        self.config.optimizations.sweep_threads = threads;
        self
    }

    /// Builds the service around `store`, taking ownership: the store
    /// becomes the service's single-writer state, its mutation observer
    /// is wired to the result cache's invalidation, and the worker pool
    /// starts immediately.
    pub fn build(self, mut store: GraphStore) -> QueryService {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(8)
        } else {
            self.workers
        };
        let retained_versions = self.retained_versions.max(1);
        let cache = Arc::new(ResultCache::new(self.cache_capacity));
        let index = Arc::new(Mutex::new(
            IndexEngine::new().with_max_rows(self.index_max_rows),
        ));

        // Writer-side invalidation, wired into GraphStore::mutate: every
        // effective mutation drops cache entries whose version fell out
        // of the retention window. Versions are contiguous under the
        // service's per-event publishing, so the floor is exact; if a
        // caller compacts or batches behind our back it is merely
        // conservative (over-invalidation is always safe). The same hook
        // feeds the contribution index's dirty queue: rows built before
        // the new version are now stale and queued for lazy repair
        // (replays never trust them either way — the stamp check is the
        // correctness boundary, the queue is just the repair work-list).
        store.set_mutation_observer({
            let cache = Arc::clone(&cache);
            let index = Arc::clone(&index);
            let window = retained_versions as u64;
            move |version| {
                cache.invalidate_below((version + 1).saturating_sub(window));
                index.lock().expect("index poisoned").note_update(version);
            }
        });

        let first = store.snapshot();
        let shared = Arc::new(Shared {
            engine: ProbeSim::new(self.config),
            engine_choice: self.engine_choice,
            // The planner's skew signal, computed once at build: the
            // store pins the node count, and edge churn moves a Gini
            // coefficient far too slowly to re-derive per query.
            skew: DegreeStats::compute(&first).in_degree_gini,
            index,
            cache,
            default_deadline: self.default_deadline,
            state: Mutex::new(ServeState {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            done_cv: Condvar::new(),
            published: RwLock::new(Published {
                latest: first.clone(),
                retained: VecDeque::from([first]),
            }),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            work_budget_exceeded: AtomicU64::new(0),
            executed_work: AtomicU64::new(0),
        });

        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("probesim-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("invariant: the OS spawns worker threads at service startup")
            })
            .collect();

        QueryService {
            shared,
            store: Mutex::new(store),
            retained_versions,
            workers: handles,
        }
    }
}

/// Aggregate serving counters ([`QueryService::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests accepted by `submit`/`call`.
    pub submitted: u64,
    /// Requests answered (successfully or with an error).
    pub completed: u64,
    /// Responses served from the result cache.
    pub cache_hits: u64,
    /// Cache lookups that missed (fresh executions + disabled cache).
    pub cache_misses: u64,
    /// Requests aborted by their deadline (in queue or mid-probe).
    pub deadline_exceeded: u64,
    /// Requests aborted by their work cap.
    pub work_budget_exceeded: u64,
    /// Total `QueryStats::total_work` spent on fresh executions,
    /// including the partial work of aborted ones. Cache hits add
    /// **zero** here — that is the measurable "bypasses probe work
    /// entirely" guarantee the benchmarks gate.
    pub executed_work: u64,
    /// Live cache entries.
    pub cache_entries: usize,
    /// Requests accepted but not yet answered (`submitted - completed`)
    /// — the router's load signal.
    pub queue_depth: u64,
    /// The newest published store version.
    pub applied_version: u64,
}

struct Published {
    latest: GraphSnapshot,
    /// The most recent versions, oldest first (`latest` is always the
    /// back); [`Consistency::Pinned`] resolves against this window.
    retained: VecDeque<GraphSnapshot>,
}

struct Job {
    request: Request,
    submitted_at: Instant,
    reply: mpsc::Sender<Result<Response, ServiceError>>,
}

struct ServeState {
    interactive: VecDeque<Job>,
    batch: VecDeque<Job>,
    shutdown: bool,
}

impl ServeState {
    fn pop(&mut self) -> Option<Job> {
        self.interactive
            .pop_front()
            .or_else(|| self.batch.pop_front())
    }

    fn is_empty(&self) -> bool {
        self.interactive.is_empty() && self.batch.is_empty()
    }
}

struct Shared {
    engine: ProbeSim,
    /// The engine policy for requests without a per-request override.
    engine_choice: EngineChoice,
    /// In-degree Gini of the graph at build time — the planner's skew
    /// signal ([`PlannerInputs::skew`]).
    skew: f64,
    /// The contribution-index engine. Critical sections stay short —
    /// replay out / install in / freshness probe — and a build-through's
    /// probe run happens outside the lock on the worker's own session.
    /// Shared with the store's mutation observer (`Arc`), which feeds
    /// `note_update` while the writer holds the store lock.
    index: Arc<Mutex<IndexEngine>>,
    cache: Arc<ResultCache>,
    default_deadline: Option<Duration>,
    state: Mutex<ServeState>,
    queue_cv: Condvar,
    /// Signaled (with the state lock held) after every completed
    /// request, so `drain` can block instead of spinning.
    done_cv: Condvar,
    published: RwLock<Published>,
    submitted: AtomicU64,
    completed: AtomicU64,
    deadline_exceeded: AtomicU64,
    work_budget_exceeded: AtomicU64,
    executed_work: AtomicU64,
}

impl Shared {
    fn resolve(&self, consistency: Consistency) -> Result<GraphSnapshot, ServiceError> {
        let published = self.published.read().expect("published slot poisoned");
        let newest = published.latest.version();
        match consistency {
            Consistency::Latest => Ok(published.latest.clone()),
            Consistency::AtLeastVersion(requested) => {
                if newest >= requested {
                    Ok(published.latest.clone())
                } else {
                    Err(ServiceError::VersionNotReached { requested, newest })
                }
            }
            Consistency::Pinned(requested) => published
                .retained
                .iter()
                .rev()
                .find(|snapshot| snapshot.version() == requested)
                .cloned()
                .ok_or_else(|| ServiceError::VersionNotRetained {
                    requested,
                    oldest_retained: published
                        .retained
                        .front()
                        .map_or(newest, GraphSnapshot::version),
                    newest,
                }),
        }
    }
}

fn worker_loop(shared: &Shared) {
    // The pooled session survives across requests *and* versions: a
    // version change rebinds the session to the new snapshot while
    // keeping the O(n) scratch slabs (`QuerySession::rebind` — the
    // store's node count is pinned, so the slabs always fit).
    let mut session: Option<QuerySession<GraphSnapshot>> = None;
    loop {
        let (job, draining) = {
            let mut state = shared.state.lock().expect("serve state poisoned");
            loop {
                if let Some(job) = state.pop() {
                    break (job, state.shutdown);
                }
                if state.shutdown {
                    return;
                }
                state = shared.queue_cv.wait(state).expect("serve state poisoned");
            }
        };
        let result = if draining {
            Err(ServiceError::ShuttingDown)
        } else {
            serve(shared, &mut session, &job)
        };
        match &result {
            Err(ServiceError::Query(QueryError::DeadlineExceeded { .. })) => {
                shared.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::Query(QueryError::WorkBudgetExceeded { .. })) => {
                shared.work_budget_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        // Publish completion under the state lock so a drainer blocked
        // on `done_cv` cannot miss the wakeup between its counter check
        // and its wait.
        {
            let _state = shared.state.lock().expect("serve state poisoned");
            shared.completed.fetch_add(1, Ordering::SeqCst);
            shared.done_cv.notify_all();
        }
        // A dropped ticket is fine — the response is simply discarded.
        let _ = job.reply.send(result);
    }
}

/// The engine provenance stamped into an output's counters —
/// [`QueryStats::planner_engine`] is 1 exactly when the index engine
/// produced the answer (replay or build-through).
fn engine_of(stats: &QueryStats) -> EngineKind {
    if stats.planner_engine > 0 {
        EngineKind::Index
    } else {
        EngineKind::Probesim
    }
}

fn serve(
    shared: &Shared,
    session_slot: &mut Option<QuerySession<GraphSnapshot>>,
    job: &Job,
) -> Result<Response, ServiceError> {
    let queue_wait = job.submitted_at.elapsed();
    let deadline_at = job
        .request
        .deadline
        .or(shared.default_deadline)
        .map(|d| job.submitted_at + d);
    // Queue-expired requests fail fast with zero partial work — the
    // deadline covers the whole request lifetime, not just execution.
    if let Some(deadline) = deadline_at {
        if Instant::now() >= deadline {
            return Err(QueryError::DeadlineExceeded {
                partial: QueryStats::default(),
            }
            .into());
        }
    }
    let snapshot = shared.resolve(job.request.consistency)?;
    let version = snapshot.version();
    let exec_start = Instant::now();
    if let Some(output) = shared.cache.get(version, &job.request.query) {
        // Version-keyed hit: bit-identical to fresh execution at this
        // version by construction, zero probe work spent. The cached
        // counters carry the provenance of the execution that filled the
        // entry, so the reported engine is that execution's engine.
        let engine = engine_of(&output.stats);
        return Ok(Response {
            output,
            version,
            cache_hit: true,
            queue_wait,
            exec_time: exec_start.elapsed(),
            engine,
        });
    }
    // The per-query plan: a forced index-free choice (the builder
    // default) skips the index tier entirely — zero overhead, answers
    // bit-identical to a service without it.
    let choice = job.request.engine.unwrap_or(shared.engine_choice);
    let num_nodes = snapshot.num_nodes();
    let engine_plan = if choice == EngineChoice::Probesim {
        EnginePlan {
            engine: EngineKind::Probesim,
            reason: PlanReason::Forced,
        }
    } else {
        let row_fresh = shared.index.lock().expect("index poisoned").row_fresh(
            job.request.query.node(),
            version,
            num_nodes,
        );
        let inputs = PlannerInputs {
            skew: shared.skew,
            k: match job.request.query {
                Query::TopK { k, .. } => Some(k),
                _ => None,
            },
            epsilon: shared.engine.config().epsilon,
            deadline: deadline_at.map(|d| d.saturating_duration_since(Instant::now())),
            row_fresh,
        };
        probesim_core::plan(choice, &inputs)
    };
    if engine_plan.engine == EngineKind::Index {
        // Replay under a short lock. A miss here (row absent, stale, or
        // raced away) falls through to the build-through below — the
        // stamp check inside `replay` is what guarantees an answer never
        // comes from a different edge set than `version`.
        let replayed = shared.index.lock().expect("index poisoned").replay(
            job.request.query,
            version,
            num_nodes,
        );
        if let Some(output) = replayed {
            shared
                .executed_work
                .fetch_add(output.stats.total_work() as u64, Ordering::Relaxed);
            let output = Arc::new(output);
            shared
                .cache
                .insert(version, &job.request.query, Arc::clone(&output));
            return Ok(Response {
                output,
                version,
                cache_hit: false,
                queue_wait,
                exec_time: exec_start.elapsed(),
                engine: EngineKind::Index,
            });
        }
    }
    let mut session = match session_slot.take() {
        Some(session) if session.graph().version() == version => session,
        Some(session) => session.rebind(snapshot),
        None => shared.engine.session(snapshot),
    };
    let mut budget = ProbeBudget::unlimited();
    if let Some(deadline) = deadline_at {
        budget = budget.with_deadline_at(deadline);
    }
    if let Some(cap) = job.request.work_cap {
        budget = budget.with_work_cap(cap);
    }
    let outcome = session.run_with_budget(job.request.query, budget);
    // The session goes back in the slot on *every* path: the abort-safety
    // contract (drain-to-clean) makes an aborted session as reusable as a
    // successful one.
    *session_slot = Some(session);
    match outcome {
        Ok(mut output) => {
            if engine_plan.engine == EngineKind::Index {
                // Build-through: the probe run above (outside the index
                // lock) both answers the query and becomes the new row.
                // Aborted runs never reach here — partial scores stay
                // out of the table.
                output.stats.index_rows_stale = 1;
                output.stats.planner_engine = 1;
                shared
                    .index
                    .lock()
                    .expect("index poisoned")
                    .install_row(version, &output);
            }
            shared
                .executed_work
                .fetch_add(output.stats.total_work() as u64, Ordering::Relaxed);
            let output = Arc::new(output);
            shared
                .cache
                .insert(version, &job.request.query, Arc::clone(&output));
            Ok(Response {
                output,
                version,
                cache_hit: false,
                queue_wait,
                exec_time: exec_start.elapsed(),
                engine: engine_plan.engine,
            })
        }
        Err(error) => {
            if let QueryError::DeadlineExceeded { partial }
            | QueryError::WorkBudgetExceeded { partial } = &error
            {
                // Aborted work was really spent; account for it.
                shared
                    .executed_work
                    .fetch_add(partial.total_work() as u64, Ordering::Relaxed);
            }
            Err(error.into())
        }
    }
}

/// The unified serving facade: owns the [`GraphStore`], the `ProbeSim`
/// engine, a fixed worker pool and the version-keyed result cache.
///
/// * **Readers** go through [`QueryService::submit`] (a [`Ticket`]) or
///   the blocking [`QueryService::call`]; requests carry deadlines,
///   priorities and consistency levels, and responses report the
///   answering version, the queue/exec latency split and whether the
///   cache served them.
/// * **The writer** goes through [`QueryService::commit`] /
///   [`QueryService::commit_all`]: each effective update mutates the
///   store (firing the cache-invalidation observer inside
///   `GraphStore::mutate`), publishes a fresh snapshot and extends the
///   pinned-version retention window. The returned [`Commit`] token
///   carries the reached version — the exact floor a read-your-writes
///   `AtLeastVersion` read needs.
///
/// Dropping the service shuts the pool down; queued requests resolve to
/// [`ServiceError::ShuttingDown`].
pub struct QueryService {
    shared: Arc<Shared>,
    /// The single-writer store. Behind a mutex so `commit(&self)` works
    /// from a writer thread while readers run; writer throughput is
    /// bounded by the store, not this lock (readers never take it).
    store: Mutex<GraphStore>,
    retained_versions: usize,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("workers", &self.workers.len())
            .field("retained_versions", &self.retained_versions)
            .field("version", &self.version())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl QueryService {
    /// Enqueues a request, returning a [`Ticket`] to wait on. Interactive
    /// requests are dequeued before batch requests.
    pub fn submit(&self, request: Request) -> Ticket {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let job = Job {
            request,
            submitted_at: Instant::now(),
            reply: tx,
        };
        {
            let mut state = self.shared.state.lock().expect("serve state poisoned");
            if state.shutdown {
                let _ = job.reply.send(Err(ServiceError::ShuttingDown));
            } else {
                match request.priority {
                    Priority::Interactive => state.interactive.push_back(job),
                    Priority::Batch => state.batch.push_back(job),
                }
                self.shared.queue_cv.notify_one();
            }
        }
        Ticket { rx }
    }

    /// Submits and blocks for the answer.
    pub fn call(&self, request: Request) -> Result<Response, ServiceError> {
        self.submit(request).wait()
    }

    /// Applies one graph update through the service's writer path.
    /// Effective updates invalidate the affected cache window (inside
    /// `GraphStore::mutate`), publish a fresh snapshot and extend the
    /// retention ring; no-ops change nothing. The returned [`Commit`]
    /// token carries the published version, so
    /// `service.call(request.with_consistency(Consistency::AtLeastVersion(commit.version)))`
    /// is guaranteed to observe the write (read-your-writes).
    pub fn commit(&self, update: GraphUpdate) -> Commit {
        let mut store = self.store.lock().expect("store poisoned");
        let effective = store.apply(update);
        let version = store.version();
        if effective {
            let snapshot = store.snapshot();
            let mut published = self
                .shared
                .published
                .write()
                .expect("published slot poisoned");
            published.retained.push_back(snapshot.clone());
            while published.retained.len() > self.retained_versions {
                published.retained.pop_front();
            }
            published.latest = snapshot;
        }
        Commit {
            version,
            effective: u64::from(effective),
        }
    }

    /// Applies a sequence of updates in order; the returned token
    /// carries the final published version and the total number of
    /// effective updates. Each effective update publishes its own
    /// version (the retention window sees every intermediate state).
    pub fn commit_all<I: IntoIterator<Item = GraphUpdate>>(&self, updates: I) -> Commit {
        let mut last = Commit {
            version: self.version(),
            effective: 0,
        };
        for update in updates {
            let commit = self.commit(update);
            last = Commit {
                version: commit.version,
                effective: last.effective + commit.effective,
            };
        }
        last
    }

    /// The newest published version.
    pub fn version(&self) -> u64 {
        self.shared
            .published
            .read()
            .expect("published slot poisoned")
            .latest
            .version()
    }

    /// A clone of the newest published snapshot (one `Arc` bump).
    pub fn snapshot(&self) -> GraphSnapshot {
        self.shared
            .published
            .read()
            .expect("published slot poisoned")
            .latest
            .clone()
    }

    /// The oldest version still pinnable.
    pub fn oldest_retained_version(&self) -> u64 {
        let published = self.shared.published.read().expect("published poisoned");
        published
            .retained
            .front()
            .map_or_else(|| published.latest.version(), GraphSnapshot::version)
    }

    /// The engine configuration requests run with.
    pub fn config(&self) -> ProbeSimConfig {
        self.shared.engine.config().clone()
    }

    /// The service-wide engine policy ([`ServiceBuilder::engine_choice`]).
    pub fn engine_choice(&self) -> EngineChoice {
        self.shared.engine_choice
    }

    /// The planner's skew signal: the in-degree Gini coefficient of the
    /// graph the service was built on.
    pub fn skew(&self) -> f64 {
        self.shared.skew
    }

    /// Sources currently queued for lazy index repair (grows on
    /// effective commits, drains via [`QueryService::repair_index`] or
    /// when an index-path query rebuilds the row itself).
    pub fn index_dirty_len(&self) -> usize {
        self.shared
            .index
            .lock()
            .expect("index poisoned")
            .dirty_len()
    }

    /// Rows currently cached by the contribution index.
    pub fn index_rows(&self) -> usize {
        self.shared
            .index
            .lock()
            .expect("index poisoned")
            .table()
            .rows()
    }

    /// Drains up to `max` queued stale-row repairs against the newest
    /// published snapshot, off the query path, returning how many rows
    /// were rebuilt. The index lock is only held to pop a candidate and
    /// to install the rebuilt row; the probe run between the two is
    /// unlocked, so queries are never blocked behind a repair. Queries
    /// racing a repair are never wrong, only slower: a not-yet-repaired
    /// row fails its stamp check and the query builds through (which
    /// itself repairs the row — a racing install at the same version
    /// writes identical content, so last-wins is harmless).
    pub fn repair_index(&self, max: usize) -> usize {
        let snapshot = self.snapshot();
        let version = snapshot.version();
        let mut session = self.shared.engine.session(snapshot);
        let mut repaired = 0;
        while repaired < max {
            let candidate = {
                let mut index = self.shared.index.lock().expect("index poisoned");
                index.pop_dirty(version)
            };
            let Some(source) = candidate else {
                break;
            };
            let rebuilt = session.run_with_budget(
                Query::SingleSource { node: source },
                ProbeBudget::unlimited(),
            );
            let mut index = self.shared.index.lock().expect("index poisoned");
            match rebuilt {
                Ok(output) => {
                    index.install_row(version, &output);
                    repaired += 1;
                }
                Err(_) => index.discard_row(source),
            }
        }
        repaired
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Aggregate serving counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            cache_hits: self.shared.cache.hits(),
            cache_misses: self.shared.cache.misses(),
            deadline_exceeded: self.shared.deadline_exceeded.load(Ordering::Relaxed),
            work_budget_exceeded: self.shared.work_budget_exceeded.load(Ordering::Relaxed),
            executed_work: self.shared.executed_work.load(Ordering::Relaxed),
            cache_entries: self.shared.cache.len(),
            queue_depth: self.queue_depth(),
            applied_version: self.version(),
        }
    }

    /// Requests accepted but not yet answered — a cheap atomic read the
    /// fleet router uses for least-loaded selection and admission
    /// control. `completed` is loaded first so a concurrent completion
    /// can only make the result conservative (never negative).
    pub fn queue_depth(&self) -> u64 {
        let completed = self.shared.completed.load(Ordering::Relaxed);
        let submitted = self.shared.submitted.load(Ordering::Relaxed);
        submitted.saturating_sub(completed)
    }

    /// Blocks until every queued request has been answered (drains the
    /// queue without shutting down). Intended for benchmarks that want a
    /// quiesced service before reading counters.
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().expect("serve state poisoned");
        loop {
            // Queue empty and nothing in flight: workers increment
            // `completed` under this lock, so the check cannot race a
            // wakeup.
            if state.is_empty()
                && self.shared.submitted.load(Ordering::SeqCst)
                    == self.shared.completed.load(Ordering::SeqCst)
            {
                return;
            }
            state = self
                .shared
                .done_cv
                .wait(state)
                .expect("serve state poisoned");
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("serve state poisoned");
            state.shutdown = true;
            self.shared.queue_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Anything still queued (racy submits) gets a ShuttingDown reply
        // through its dropped sender — Ticket::wait maps the disconnect.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_core::Query;
    use probesim_graph::toy::{toy_graph, A, TOY_DECAY};

    fn toy_service(cache: usize) -> QueryService {
        ServiceBuilder::new(ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(0xBEEF))
            .workers(2)
            .cache_capacity(cache)
            .retained_versions(4)
            .build(GraphStore::from_view(&toy_graph()))
    }

    #[test]
    fn call_answers_like_a_direct_session() {
        let service = toy_service(16);
        let response = service
            .call(Request::new(Query::SingleSource { node: A }))
            .unwrap();
        assert_eq!(response.version, 0);
        assert!(!response.cache_hit);
        let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(0xBEEF));
        let direct = engine
            .session(&toy_graph())
            .run(Query::SingleSource { node: A })
            .unwrap();
        assert_eq!(response.output.scores, direct.scores);
        assert_eq!(response.output.stats, direct.stats);
    }

    #[test]
    fn sweep_threads_service_answers_bit_identically() {
        // Intra-query parallelism on top of the worker pool must be
        // invisible in the answers: same scores, same counters.
        let sequential = toy_service(0);
        let parallel =
            ServiceBuilder::new(ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(0xBEEF))
                .workers(2)
                .sweep_threads(2)
                .cache_capacity(0)
                .retained_versions(4)
                .build(GraphStore::from_view(&toy_graph()));
        for node in 0..8 {
            let query = Request::new(Query::SingleSource { node });
            let a = sequential.call(query).unwrap();
            let b = parallel.call(query).unwrap();
            assert_eq!(a.output.scores, b.output.scores, "node {node}");
            assert_eq!(a.output.stats, b.output.stats, "node {node}");
        }
    }

    #[test]
    fn repeat_queries_hit_the_cache_with_zero_extra_work() {
        let service = toy_service(16);
        let request = Request::new(Query::TopK { node: A, k: 2 });
        let first = service.call(request).unwrap();
        let work_after_first = service.stats().executed_work;
        assert!(work_after_first > 0);
        let second = service.call(request).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.version, first.version);
        assert_eq!(second.output.scores, first.output.scores);
        assert!(Arc::ptr_eq(&second.output, &first.output));
        assert_eq!(
            service.stats().executed_work,
            work_after_first,
            "cache hit must add zero executed work"
        );
        assert_eq!(service.stats().cache_hits, 1);
    }

    #[test]
    fn mutation_bumps_version_so_latest_is_never_stale() {
        let service = toy_service(16);
        let before = service
            .call(Request::new(Query::SingleSource { node: A }))
            .unwrap();
        assert_eq!(before.version, 0);
        // Cut a's in-edges; Latest must re-execute at the new version.
        assert!(service
            .commit(GraphUpdate::Remove { u: 1, v: A })
            .was_effective());
        assert!(service
            .commit(GraphUpdate::Remove { u: 2, v: A })
            .was_effective());
        assert_eq!(service.version(), 2);
        let after = service
            .call(Request::new(Query::SingleSource { node: A }))
            .unwrap();
        assert_eq!(after.version, 2);
        assert!(!after.cache_hit, "version key prevents stale Latest hits");
        assert_ne!(after.output.scores, before.output.scores);
    }

    #[test]
    fn pinned_consistency_answers_at_the_pinned_version() {
        let service = toy_service(16);
        let v0 = service
            .call(Request::new(Query::SingleSource { node: A }))
            .unwrap();
        service.commit(GraphUpdate::Remove { u: 1, v: A });
        service.commit(GraphUpdate::Remove { u: 2, v: A });
        // Pinned(0) still answers the old edge set — and hits the cache
        // entry the first call populated.
        let pinned = service
            .call(
                Request::new(Query::SingleSource { node: A })
                    .with_consistency(Consistency::Pinned(0)),
            )
            .unwrap();
        assert_eq!(pinned.version, 0);
        assert!(pinned.cache_hit);
        assert_eq!(pinned.output.scores, v0.output.scores);
        // A version beyond the retention window errors.
        for i in 0..8u32 {
            service.commit(GraphUpdate::Remove {
                u: i,
                v: (i + 1) % 8,
            });
        }
        let err = service
            .call(
                Request::new(Query::SingleSource { node: A })
                    .with_consistency(Consistency::Pinned(0)),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::VersionNotRetained { requested: 0, .. }
        ));
    }

    #[test]
    fn at_least_version_gates_on_the_published_clock() {
        let service = toy_service(16);
        let ok = service
            .call(
                Request::new(Query::SingleSource { node: A })
                    .with_consistency(Consistency::AtLeastVersion(0)),
            )
            .unwrap();
        assert_eq!(ok.version, 0);
        let err = service
            .call(
                Request::new(Query::SingleSource { node: A })
                    .with_consistency(Consistency::AtLeastVersion(5)),
            )
            .unwrap_err();
        assert_eq!(
            err,
            ServiceError::VersionNotReached {
                requested: 5,
                newest: 0
            }
        );
        service.commit(GraphUpdate::Insert { u: 0, v: 5 });
        let now = service
            .call(
                Request::new(Query::SingleSource { node: A })
                    .with_consistency(Consistency::AtLeastVersion(1)),
            )
            .unwrap();
        assert_eq!(now.version, 1);
    }

    #[test]
    fn invalid_queries_come_back_as_typed_errors() {
        let service = toy_service(16);
        let err = service
            .call(Request::new(Query::SingleSource { node: 99 }))
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Query(QueryError::NodeOutOfRange { node: 99, .. })
        ));
        let err = service
            .call(Request::new(Query::TopK { node: A, k: 0 }))
            .unwrap_err();
        assert_eq!(err, ServiceError::Query(QueryError::InvalidK { k: 0 }));
    }

    #[test]
    fn expired_deadline_fails_with_partial_stats_and_service_survives() {
        let service = toy_service(16);
        let err = service
            .call(Request::new(Query::SingleSource { node: A }).with_deadline(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Query(QueryError::DeadlineExceeded { .. })
        ));
        assert_eq!(service.stats().deadline_exceeded, 1);
        // The worker's pooled session survived the abort.
        let ok = service
            .call(Request::new(Query::SingleSource { node: A }))
            .unwrap();
        assert!(ok.output.stats.walks > 0);
    }

    #[test]
    fn work_cap_aborts_deterministically_and_reports_partial_work() {
        let service = toy_service(16);
        let err = service
            .call(Request::new(Query::SingleSource { node: A }).with_work_cap(10))
            .unwrap_err();
        let ServiceError::Query(QueryError::WorkBudgetExceeded { partial }) = err else {
            panic!("expected WorkBudgetExceeded, got {err:?}");
        };
        assert!(partial.total_work() > 0, "abort happened mid-execution");
        assert_eq!(service.stats().work_budget_exceeded, 1);
        assert_eq!(
            service.stats().executed_work,
            partial.total_work() as u64,
            "aborted partial work is accounted"
        );
        // Identical request aborts at the identical point.
        let again = service
            .call(Request::new(Query::SingleSource { node: A }).with_work_cap(10))
            .unwrap_err();
        assert_eq!(
            again,
            ServiceError::Query(QueryError::WorkBudgetExceeded { partial })
        );
    }

    #[test]
    fn forced_index_engine_builds_through_then_replays() {
        // Cache disabled so the engine paths themselves are observable.
        let service = toy_service(0);
        let request =
            Request::new(Query::SingleSource { node: A }).with_engine(EngineChoice::Index);
        let engine = ProbeSim::new(ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(0xBEEF));
        let direct = engine
            .session(&toy_graph())
            .run(Query::SingleSource { node: A })
            .unwrap();
        // First call: no row yet — the probe run answers and becomes the row.
        let built = service.call(request).unwrap();
        assert_eq!(built.engine, EngineKind::Index);
        assert_eq!(built.output.stats.index_rows_stale, 1);
        assert!(built.output.stats.walks > 0);
        assert_eq!(built.output.scores, direct.scores);
        assert_eq!(service.index_rows(), 1);
        // Second call: replayed from the row, zero probe work, bit-equal.
        let replayed = service.call(request).unwrap();
        assert!(!replayed.cache_hit);
        assert_eq!(replayed.engine, EngineKind::Index);
        assert_eq!(replayed.output.stats.walks, 0);
        assert!(replayed.output.stats.index_rows_used > 0);
        assert_eq!(replayed.output.scores, direct.scores);
        // One row answers every query kind for its source.
        let topk = service
            .call(Request::new(Query::TopK { node: A, k: 2 }).with_engine(EngineChoice::Index))
            .unwrap();
        assert_eq!(topk.output.stats.walks, 0, "same row, different kind");
        assert_eq!(topk.output.ranking(), direct.ranking()[..2].to_vec());
    }

    #[test]
    fn auto_replays_fresh_rows_and_never_trusts_stale_ones() {
        let service = toy_service(0);
        assert_eq!(service.engine_choice(), EngineChoice::Probesim);
        let request = Request::new(Query::SingleSource { node: A });
        let plain = service.call(request).unwrap();
        assert_eq!(plain.engine, EngineKind::Probesim);
        assert_eq!(plain.output.stats.planner_engine, 0);
        // Build a row, then `auto` replays it: FreshRow beats any skew.
        let built = service
            .call(request.with_engine(EngineChoice::Index))
            .unwrap();
        let auto = service
            .call(request.with_engine(EngineChoice::Auto))
            .unwrap();
        assert_eq!(auto.engine, EngineKind::Index);
        assert!(auto.output.stats.index_rows_used > 0);
        assert_eq!(auto.output.scores, built.output.scores);
        assert_eq!(auto.output.scores, plain.output.scores);
        // An effective commit stales the row; a Latest query must not
        // replay it — the rebuild happens in-line and answers correctly.
        assert!(service
            .commit(GraphUpdate::Remove { u: 1, v: A })
            .was_effective());
        assert_eq!(service.index_dirty_len(), 1);
        let after = service
            .call(request.with_engine(EngineChoice::Index))
            .unwrap();
        assert_eq!(after.version, 1);
        assert_eq!(after.output.stats.index_rows_stale, 1);
        assert_ne!(after.output.scores, plain.output.scores);
        // The query-path rebuild already repaired the only dirty row.
        assert_eq!(service.repair_index(8), 0);
        assert_eq!(service.index_dirty_len(), 0);
    }

    #[test]
    fn repair_index_rebuilds_stale_rows_off_the_query_path() {
        let service = toy_service(0);
        for node in [A, 1] {
            service
                .call(Request::new(Query::SingleSource { node }).with_engine(EngineChoice::Index))
                .unwrap();
        }
        assert!(service
            .commit(GraphUpdate::Insert { u: 0, v: 5 })
            .was_effective());
        assert_eq!(service.index_dirty_len(), 2);
        assert_eq!(service.repair_index(8), 2);
        assert_eq!(service.index_dirty_len(), 0);
        // Repaired rows replay at the new version without a build-through.
        let r = service
            .call(Request::new(Query::SingleSource { node: A }).with_engine(EngineChoice::Index))
            .unwrap();
        assert_eq!(r.version, 1);
        assert_eq!(r.output.stats.index_rows_stale, 0);
        assert!(r.output.stats.index_rows_used > 0);
    }

    #[test]
    fn cache_hits_report_the_engine_that_filled_the_entry() {
        let service = toy_service(16);
        let indexed =
            Request::new(Query::SingleSource { node: A }).with_engine(EngineChoice::Index);
        let first = service.call(indexed).unwrap();
        assert_eq!(first.engine, EngineKind::Index);
        let hit = service.call(indexed).unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.engine, EngineKind::Index);
        // A different source filled by the index-free engine reports it.
        let plain = Request::new(Query::SingleSource { node: 1 });
        assert_eq!(service.call(plain).unwrap().engine, EngineKind::Probesim);
        let hit = service.call(plain).unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.engine, EngineKind::Probesim);
    }

    #[test]
    fn submit_tickets_resolve_out_of_order_submissions() {
        let service = toy_service(64);
        let tickets: Vec<Ticket> = (0..8)
            .map(|v| service.submit(Request::new(Query::SingleSource { node: v })))
            .collect();
        for (v, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait().unwrap();
            assert_eq!(response.output.scores.query(), v as u32);
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
    }

    #[test]
    fn interactive_requests_preempt_queued_batch_requests() {
        // One worker, so queue order is observable: a batch flood
        // submitted first must not starve a later interactive request
        // beyond the single in-flight job.
        let service =
            ServiceBuilder::new(ProbeSimConfig::new(TOY_DECAY, 0.05, 0.01).with_seed(0xBEEF))
                .workers(1)
                .cache_capacity(0)
                .build(GraphStore::from_view(&toy_graph()));
        let batch_tickets: Vec<Ticket> = (0..6)
            .map(|v| {
                service.submit(
                    Request::new(Query::SingleSource { node: v }).with_priority(Priority::Batch),
                )
            })
            .collect();
        let interactive = service.submit(Request::new(Query::SingleSource { node: 7 }));
        let fast = interactive.wait().unwrap();
        // The interactive answer is correct and the batch lane still
        // completes afterwards.
        assert_eq!(fast.output.scores.query(), 7);
        for ticket in batch_tickets {
            assert!(ticket.wait().is_ok());
        }
    }

    #[test]
    fn drop_resolves_pending_tickets_to_shutting_down() {
        let service = toy_service(0);
        let tickets: Vec<Ticket> = (0..4)
            .map(|v| service.submit(Request::new(Query::SingleSource { node: v })))
            .collect();
        drop(service);
        let mut shutdowns = 0;
        for ticket in tickets {
            match ticket.wait() {
                Err(ServiceError::ShuttingDown) => shutdowns += 1,
                Ok(_) => {} // already executed before the drop — fine
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        // At least nothing hung; racy counts are both acceptable.
        assert!(shutdowns <= 4);
    }

    #[test]
    fn drain_quiesces_the_queue() {
        let service = toy_service(8);
        for v in 0..6 {
            let _ = service.submit(Request::new(Query::SingleSource { node: v }));
        }
        service.drain();
        let stats = service.stats();
        assert_eq!(stats.submitted, stats.completed);
    }
}
