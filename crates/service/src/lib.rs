#![warn(missing_docs)]
//! # probesim-service
//!
//! The **fourth tier** of the ProbeSim stack — the serving facade that
//! composes the single-process system behind one handle (the fifth
//! tier, `probesim-fleet`, replicates this service behind a durable
//! update log and a consistency-aware router):
//!
//! 1. **storage** (`probesim-graph`): the versioned [`GraphStore`] — CSR
//!    base + copy-on-write overlay, snapshot isolation, compaction;
//! 2. **probe** (`probesim-core`): the index-free ProbeSim engines
//!    (legacy per-prefix and fused level-synchronous frontiers);
//! 3. **session** (`probesim-core`): pooled scratch, sparse results,
//!    typed errors;
//! 4. **service** (this crate): [`QueryService`] — worker pool, request
//!    queue with priorities, per-request deadlines and work caps,
//!    consistency levels, and a version-keyed result cache.
//!
//! ## The lifecycle of a request
//!
//! [`QueryService::submit`] timestamps the [`Request`] and enqueues it
//! (interactive ahead of batch); a worker dequeues it and:
//!
//! 1. **deadline** — if the request's deadline (queue wait included)
//!    already passed, it fails fast with
//!    `QueryError::DeadlineExceeded` and zero partial work;
//! 2. **resolve** — the [`Consistency`] level picks the snapshot:
//!    `Latest` takes the newest published version, `AtLeastVersion(v)`
//!    additionally demands the clock reached `v`, `Pinned(v)` resolves
//!    inside the retention window or fails;
//! 3. **cache** — `(version, query)` is looked up in the LRU result
//!    cache; a hit returns immediately (`cache_hit: true`,
//!    bit-identical to fresh execution at that version by construction,
//!    zero probe work);
//! 4. **execute** — a miss runs on the worker's pooled session
//!    (rebound across versions without reallocating scratch) under a
//!    [`probesim_core::ProbeBudget`] armed with the remaining deadline
//!    and the work cap; a cooperative abort surfaces as
//!    `DeadlineExceeded`/`WorkBudgetExceeded` with partial counters and
//!    leaves the session reusable;
//! 5. **respond** — the [`Response`] reports the answering version, the
//!    queue/exec latency split and `cache_hit`.
//!
//! Writer side, [`QueryService::commit`] mutates the owned store — which
//! fires the cache-invalidation observer *inside* `GraphStore::mutate` —
//! then publishes a fresh snapshot and extends the pinned-version
//! retention ring, returning a [`Commit`] token whose `version` can be
//! handed straight to `Consistency::AtLeastVersion` for read-your-writes.
//! Because every effective mutation bumps the version, `Latest` can
//! never be served a stale cache entry: the stale entry's key simply no
//! longer matches.
//!
//! ```
//! use std::time::Duration;
//! use probesim_core::{ProbeSimConfig, Query};
//! use probesim_graph::{toy::toy_graph, GraphStore, GraphUpdate};
//! use probesim_service::{Consistency, Priority, Request, ServiceBuilder};
//!
//! let service = ServiceBuilder::new(ProbeSimConfig::new(0.36, 0.05, 0.01).with_seed(7))
//!     .workers(2)
//!     .cache_capacity(256)
//!     .retained_versions(4)
//!     .build(GraphStore::from_view(&toy_graph()));
//!
//! // A deadline-armed interactive query.
//! let response = service
//!     .call(
//!         Request::new(Query::TopK { node: 0, k: 3 })
//!             .with_deadline(Duration::from_millis(250))
//!             .with_priority(Priority::Interactive),
//!     )
//!     .unwrap();
//! assert_eq!(response.version, 0);
//!
//! // The writer keeps updating; a pinned request still reads version 0.
//! let commit = service.commit(GraphUpdate::Insert { u: 0, v: 5 });
//! assert!(commit.was_effective() && commit.version == 1);
//! let pinned = service
//!     .call(Request::new(Query::TopK { node: 0, k: 3 }).with_consistency(Consistency::Pinned(0)))
//!     .unwrap();
//! assert!(pinned.cache_hit, "same version + query => served from cache");
//! ```

pub mod cache;
pub mod request;
pub mod service;

pub use cache::{CacheKey, ResultCache};
pub use request::{
    Consistency, ParseConsistencyError, Priority, Request, Response, ServiceError, Ticket,
};
pub use service::{QueryService, ServiceBuilder, ServiceStats};

// Re-exported so service callers need no direct probesim-graph dep for
// the common writer-path types, nor a probesim-core dep for the engine
// selection types the request API speaks.
pub use probesim_core::{EngineChoice, EngineKind};
pub use probesim_graph::{Commit, GraphSnapshot, GraphStore, GraphUpdate};
