//! TSF — the two-stage random-walk sampling framework (Shao et al. \[24\]).
//!
//! TSF is the index-based competitor for dynamic graphs. Its index is `Rg`
//! **one-way graphs**: for every node, one in-neighbor sampled uniformly at
//! random, so each one-way graph is a functional graph encoding one
//! "frozen" reverse random walk per node. At query time each one-way graph
//! is reused `Rq` times: a fresh random walk is drawn for the query node
//! `u` while every other node `v` deterministically follows its one-way
//! pointer; whenever the two positions coincide at step `i`, `v` earns
//! `c^i`.
//!
//! Two deliberate approximations of the original system are reproduced
//! here because the ProbeSim paper's accuracy comparison hinges on them
//! (Section 2.3):
//!
//! 1. TSF sums meeting probabilities over *all* steps (not first
//!    meetings), over-estimating SimRank;
//! 2. walks through a one-way graph may traverse cycles, which the TSF
//!    correctness argument assumes away.
//!
//! The incremental maintenance story is also reproduced: inserting an edge
//! `(w, v)` re-points `v`'s sampled in-neighbor to `w` with probability
//! `1/|I(v)|` in each one-way graph, keeping every one-way graph uniformly
//! distributed without a rebuild.

use probesim_graph::{GraphView, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentinel for "no in-neighbor" in the parent arrays.
const NONE: NodeId = NodeId::MAX;

/// TSF configuration.
#[derive(Debug, Clone, Copy)]
pub struct TsfConfig {
    /// Decay factor `c`.
    pub decay: f64,
    /// Number of one-way graphs in the index (paper setting: 300).
    pub rg: usize,
    /// Reuses of each one-way graph per query (paper setting: 40).
    pub rq: usize,
    /// Random-walk depth `T`; contributions beyond it are below `c^T`.
    pub depth: usize,
    /// RNG seed for index construction.
    pub seed: u64,
}

impl Default for TsfConfig {
    fn default() -> Self {
        TsfConfig {
            decay: 0.6,
            rg: 300,
            rq: 40,
            depth: 10,
            seed: 0,
        }
    }
}

impl TsfConfig {
    /// The paper's experimental setting (`Rg = 300`, `Rq = 40`, `c = 0.6`).
    pub fn paper() -> Self {
        TsfConfig::default()
    }
}

/// One sampled one-way graph: each node's frozen in-neighbor pointer plus
/// the reversed adjacency (children) used for the query-time descent.
#[derive(Debug, Clone)]
struct OneWayGraph {
    parent: Vec<NodeId>,
    children: Vec<Vec<NodeId>>,
}

impl OneWayGraph {
    fn sample<G: GraphView, R: Rng + ?Sized>(graph: &G, rng: &mut R) -> Self {
        let n = graph.num_nodes();
        let mut parent = vec![NONE; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in graph.nodes() {
            let in_nbrs = graph.in_neighbors(v);
            if in_nbrs.is_empty() {
                continue;
            }
            let p = in_nbrs[rng.gen_range(0..in_nbrs.len())];
            parent[v as usize] = p;
            children[p as usize].push(v);
        }
        OneWayGraph { parent, children }
    }

    fn repoint(&mut self, v: NodeId, new_parent: Option<NodeId>) {
        let old = self.parent[v as usize];
        if old != NONE {
            let kids = &mut self.children[old as usize];
            if let Some(pos) = kids.iter().position(|&c| c == v) {
                kids.swap_remove(pos);
            }
        }
        match new_parent {
            Some(p) => {
                self.parent[v as usize] = p;
                self.children[p as usize].push(v);
            }
            None => self.parent[v as usize] = NONE,
        }
    }
}

/// The TSF index plus query engine.
#[derive(Debug, Clone)]
pub struct Tsf {
    config: TsfConfig,
    one_way: Vec<OneWayGraph>,
    num_nodes: usize,
}

impl Tsf {
    /// Builds the index: `Rg` one-way graphs, O(Rg·n) time and space.
    /// This is the preprocessing ProbeSim does not need.
    pub fn build<G: GraphView>(graph: &G, config: TsfConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let one_way = (0..config.rg)
            .map(|_| OneWayGraph::sample(graph, &mut rng))
            .collect();
        Tsf {
            config,
            one_way,
            num_nodes: graph.num_nodes(),
        }
    }

    /// The configuration used at build time.
    pub fn config(&self) -> &TsfConfig {
        &self.config
    }

    /// Index footprint in bytes: parent pointers plus reversed adjacency
    /// for each one-way graph. This is what Table 4's space column counts;
    /// at `Rg = 300` it is 1–2 orders of magnitude more than the graph,
    /// matching the paper's observation.
    pub fn index_bytes(&self) -> usize {
        let ptr = std::mem::size_of::<NodeId>();
        let vec_header = std::mem::size_of::<Vec<NodeId>>();
        self.one_way
            .iter()
            .map(|g| {
                g.parent.len() * ptr
                    + g.children.len() * vec_header
                    + g.children.iter().map(|c| c.len() * ptr).sum::<usize>()
            })
            .sum()
    }

    /// Answers a single-source query: `s̃(u, v)` for all `v`.
    ///
    /// For each one-way graph and each of the `Rq` reuses, a fresh random
    /// walk `u = u_0, u_1, …, u_T` is sampled from the *full* graph; the
    /// nodes meeting it at step `i` are exactly the depth-`i` descendants
    /// of `u_i` in the one-way graph's reversed adjacency, and each earns
    /// `c^i / (Rg·Rq)`.
    pub fn single_source<G: GraphView>(&self, graph: &G, u: NodeId) -> Vec<f64> {
        let n = self.num_nodes;
        assert!((u as usize) < n, "query node out of range");
        let mut scores = vec![0.0f64; n];
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ (u as u64).wrapping_mul(0xff51_afd7_ed55_8ccd),
        );
        let norm = 1.0 / (self.config.rg * self.config.rq) as f64;
        // Reused BFS level buffers.
        let mut level: Vec<NodeId> = Vec::new();
        let mut next_level: Vec<NodeId> = Vec::new();
        for one_way in &self.one_way {
            for _ in 0..self.config.rq {
                let mut current = u;
                let mut weight = 1.0f64;
                level.clear();
                level.push(u);
                for _step in 1..=self.config.depth {
                    // Advance u's fresh walk one step.
                    let in_nbrs = graph.in_neighbors(current);
                    if in_nbrs.is_empty() {
                        break;
                    }
                    current = in_nbrs[rng.gen_range(0..in_nbrs.len())];
                    weight *= self.config.decay;
                    // Descend one level: nodes whose one-way walk sits at
                    // `current` this step are the children of the previous
                    // level… but the previous level tracked u's walk, not
                    // the one-way structure, so restart the descent from
                    // `current` down `_step` levels would be O(step²).
                    // Instead maintain the descendant frontier of u's walk
                    // prefix incrementally: impossible in general because
                    // the prefix changes head each step. Restart descent:
                    level.clear();
                    level.push(current);
                    for _ in 0.._step {
                        next_level.clear();
                        for &x in &level {
                            next_level.extend_from_slice(&one_way.children[x as usize]);
                        }
                        std::mem::swap(&mut level, &mut next_level);
                        if level.is_empty() {
                            break;
                        }
                    }
                    for &v in &level {
                        if v != u {
                            scores[v as usize] += weight * norm;
                        }
                    }
                    if weight < 1e-12 {
                        break;
                    }
                }
            }
        }
        scores[u as usize] = 1.0;
        scores
    }

    /// Top-k via the single-source scores.
    pub fn top_k<G: GraphView>(&self, graph: &G, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let scores = self.single_source(graph, u);
        probesim_core::top_k_from_scores(&scores, u, k)
    }

    /// Index maintenance for an edge insertion `(w, v)`, to be called
    /// *after* the graph itself was updated. Each one-way graph re-points
    /// `v` to `w` with probability `1/|I(v)|`, preserving uniformity.
    pub fn on_edge_inserted<G: GraphView, R: Rng + ?Sized>(
        &mut self,
        graph: &G,
        w: NodeId,
        v: NodeId,
        rng: &mut R,
    ) {
        let din = graph.in_degree(v);
        debug_assert!(din > 0, "edge ({w}, {v}) must already be in the graph");
        let p = 1.0 / din as f64;
        for one_way in &mut self.one_way {
            if one_way.parent[v as usize] == NONE || rng.gen::<f64>() < p {
                one_way.repoint(v, Some(w));
            }
        }
    }

    /// Index maintenance for an edge deletion `(w, v)`, called after the
    /// graph update. One-way graphs whose pointer used the deleted edge
    /// resample uniformly from the remaining in-neighbors.
    pub fn on_edge_removed<G: GraphView, R: Rng + ?Sized>(
        &mut self,
        graph: &G,
        w: NodeId,
        v: NodeId,
        rng: &mut R,
    ) {
        let in_nbrs = graph.in_neighbors(v);
        for one_way in &mut self.one_way {
            if one_way.parent[v as usize] == w {
                let new = if in_nbrs.is_empty() {
                    None
                } else {
                    Some(in_nbrs[rng.gen_range(0..in_nbrs.len())])
                };
                one_way.repoint(v, new);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::toy::{toy_graph, A, D, TABLE2, TOY_DECAY};
    use probesim_graph::{CsrGraph, DynamicGraph};

    fn toy_tsf(rg: usize, rq: usize) -> (CsrGraph, Tsf) {
        let g = toy_graph();
        let tsf = Tsf::build(
            &g,
            TsfConfig {
                decay: TOY_DECAY,
                rg,
                rq,
                depth: 10,
                seed: 77,
            },
        );
        (g, tsf)
    }

    #[test]
    fn one_way_graphs_sample_real_in_edges() {
        let (g, tsf) = toy_tsf(20, 1);
        for ow in &tsf.one_way {
            for v in g.nodes() {
                let p = ow.parent[v as usize];
                if p != NONE {
                    assert!(g.in_neighbors(v).contains(&p));
                }
                for &child in &ow.children[v as usize] {
                    assert_eq!(ow.parent[child as usize], v);
                }
            }
        }
    }

    #[test]
    fn scores_correlate_with_ground_truth_but_overestimate() {
        // TSF sums all-step meeting probabilities, so estimates are biased
        // upward relative to SimRank — exactly the paper's criticism. The
        // top node (d) should still surface.
        let (g, tsf) = toy_tsf(300, 10);
        let scores = tsf.single_source(&g, A);
        let top = tsf.top_k(&g, A, 1);
        assert_eq!(top[0].0, D);
        // Over-estimation shows as mean signed error > 0 on nonzero nodes.
        let bias: f64 = (1..8).map(|v| scores[v] - TABLE2[v]).sum::<f64>() / 7.0;
        assert!(bias > -0.01, "unexpected underestimation, bias = {bias}");
    }

    #[test]
    fn index_size_scales_with_rg() {
        let (_, small) = toy_tsf(10, 1);
        let (_, big) = toy_tsf(100, 1);
        assert!(big.index_bytes() > 5 * small.index_bytes());
    }

    #[test]
    fn query_is_deterministic_per_seed() {
        let (g, tsf) = toy_tsf(50, 5);
        assert_eq!(tsf.single_source(&g, A), tsf.single_source(&g, A));
    }

    #[test]
    fn insertion_maintenance_matches_rebuild_distribution() {
        // After inserting an edge, the fraction of one-way graphs pointing
        // v at each in-neighbor should stay ≈ uniform.
        let mut g = DynamicGraph::from_edges(4, &[(0, 3), (1, 3)]);
        let mut tsf = Tsf::build(
            &g,
            TsfConfig {
                decay: 0.6,
                rg: 3000,
                rq: 1,
                depth: 5,
                seed: 5,
            },
        );
        let mut rng = StdRng::seed_from_u64(9);
        g.insert_edge(2, 3);
        tsf.on_edge_inserted(&g, 2, 3, &mut rng);
        let mut counts = [0usize; 3];
        for ow in &tsf.one_way {
            let p = ow.parent[3];
            assert!(p != NONE);
            counts[p as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / 3000.0;
            assert!(
                (frac - 1.0 / 3.0).abs() < 0.04,
                "parent {i} has fraction {frac}"
            );
        }
    }

    #[test]
    fn removal_maintenance_repoints_only_affected_graphs() {
        let mut g = DynamicGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let mut tsf = Tsf::build(
            &g,
            TsfConfig {
                decay: 0.6,
                rg: 500,
                rq: 1,
                depth: 5,
                seed: 6,
            },
        );
        let mut rng = StdRng::seed_from_u64(10);
        g.remove_edge(0, 2);
        tsf.on_edge_removed(&g, 0, 2, &mut rng);
        for ow in &tsf.one_way {
            assert_eq!(
                ow.parent[2], 1,
                "must repoint to the only remaining in-edge"
            );
        }
        // Children lists stay consistent.
        for ow in &tsf.one_way {
            assert!(ow.children[1].contains(&2));
            assert!(!ow.children[0].contains(&2));
        }
    }

    #[test]
    fn removal_to_zero_in_degree_clears_pointer() {
        let mut g = DynamicGraph::from_edges(2, &[(0, 1)]);
        let mut tsf = Tsf::build(
            &g,
            TsfConfig {
                decay: 0.6,
                rg: 50,
                rq: 1,
                depth: 5,
                seed: 7,
            },
        );
        let mut rng = StdRng::seed_from_u64(11);
        g.remove_edge(0, 1);
        tsf.on_edge_removed(&g, 0, 1, &mut rng);
        for ow in &tsf.one_way {
            assert_eq!(ow.parent[1], NONE);
            assert!(ow.children[0].is_empty());
        }
    }

    #[test]
    fn zero_in_degree_query_returns_zeros() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let tsf = Tsf::build(
            &g,
            TsfConfig {
                decay: 0.6,
                rg: 20,
                rq: 2,
                depth: 5,
                seed: 1,
            },
        );
        let scores = tsf.single_source(&g, 0);
        assert_eq!(scores[1], 0.0);
        assert_eq!(scores[2], 0.0);
    }
}
