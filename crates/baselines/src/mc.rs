//! The Monte Carlo baseline (Fogaras & Rácz \[7\]; Section 2.2 of the
//! ProbeSim paper).
//!
//! `s(u, v)` equals the probability that independent √c-walks from `u` and
//! `v` meet (same node at the same step). The MC estimator samples `r` walk
//! pairs and reports the meeting fraction; by the Chernoff bound,
//! `r ≥ ln(2/δ)/(2ε²)` walk pairs give `|ŝ − s| ≤ ε` with probability
//! `1 − δ`.
//!
//! Two operating modes:
//!
//! * [`MonteCarlo::pair`] — one (u, v) pair. This is the **pooling
//!   "expert"** of the paper's large-graph experiments (Section 6.2): cheap
//!   enough to run at very high precision on a handful of candidate nodes.
//! * [`MonteCarlo::single_source`] — the index-free MC baseline of the
//!   experiments: walks from `u` are compared against fresh walks from
//!   *every* node, costing Θ(n·r) walk steps per query — exactly the
//!   "considerable query overheads" the paper attributes to this method.

use probesim_graph::{GraphView, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Monte Carlo SimRank estimator over √c-walk pairs.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Decay factor `c`.
    pub decay: f64,
    /// Walk pairs per estimate.
    pub num_walks: usize,
    /// Cap on walk length in nodes (guards against adversarially long
    /// walks; `usize::MAX` for none). Default 64 keeps the tail error below
    /// `c^32 ≈ 1e-8` at `c = 0.6` while bounding memory.
    pub max_walk_nodes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MonteCarlo {
    /// An estimator with the given decay and walk-pair count.
    pub fn new(decay: f64, num_walks: usize) -> Self {
        assert!((0.0..1.0).contains(&decay) && decay > 0.0);
        assert!(num_walks > 0);
        MonteCarlo {
            decay,
            num_walks,
            max_walk_nodes: 64,
            seed: 0,
        }
    }

    /// The walk-pair count guaranteeing `|ŝ − s| ≤ epsilon` with
    /// probability `1 − delta` (two-sided Chernoff–Hoeffding bound).
    pub fn walks_for_guarantee(epsilon: f64, delta: f64) -> usize {
        assert!(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
        ((2.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
    }

    /// An estimator meeting the paper's pooling-expert setting: error below
    /// `epsilon` with confidence `1 − delta`.
    pub fn expert(decay: f64, epsilon: f64, delta: f64) -> Self {
        MonteCarlo::new(decay, Self::walks_for_guarantee(epsilon, delta))
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn rng_for(&self, u: NodeId, v: NodeId) -> StdRng {
        let mix = (u as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((v as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        StdRng::seed_from_u64(self.seed ^ mix)
    }

    /// Estimates `s(u, v)` from `num_walks` independent √c-walk pairs.
    pub fn pair<G: GraphView>(&self, graph: &G, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 1.0;
        }
        let mut rng = self.rng_for(u, v);
        let sqrt_c = self.decay.sqrt();
        let mut meets = 0usize;
        let mut walk_u: Vec<NodeId> = Vec::with_capacity(8);
        for _ in 0..self.num_walks {
            walk_u.clear();
            walk_u.push(u);
            probesim_core::walk::extend_walk(
                graph,
                &mut walk_u,
                sqrt_c,
                self.max_walk_nodes,
                &mut rng,
            );
            if walk_pair_meets(graph, &walk_u, v, sqrt_c, &mut rng) {
                meets += 1;
            }
        }
        meets as f64 / self.num_walks as f64
    }

    /// Estimates `s(u, v)` for every `v`: the index-free MC baseline.
    ///
    /// For each of the `num_walks` trials, one walk is drawn from `u` and
    /// one fresh walk from every other node; `s̃(u, v)` is the fraction of
    /// trials whose walks met.
    pub fn single_source<G: GraphView>(&self, graph: &G, u: NodeId) -> Vec<f64> {
        let n = graph.num_nodes();
        assert!((u as usize) < n);
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (u as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let sqrt_c = self.decay.sqrt();
        let mut meets = vec![0u32; n];
        let mut walk_u: Vec<NodeId> = Vec::with_capacity(8);
        for _ in 0..self.num_walks {
            walk_u.clear();
            walk_u.push(u);
            probesim_core::walk::extend_walk(
                graph,
                &mut walk_u,
                sqrt_c,
                self.max_walk_nodes,
                &mut rng,
            );
            for v in graph.nodes() {
                if v == u {
                    continue;
                }
                if walk_pair_meets(graph, &walk_u, v, sqrt_c, &mut rng) {
                    meets[v as usize] += 1;
                }
            }
        }
        let mut scores: Vec<f64> = meets
            .into_iter()
            .map(|m| m as f64 / self.num_walks as f64)
            .collect();
        scores[u as usize] = 1.0;
        scores
    }
}

/// Walks a fresh √c-walk from `v` step-by-step against the fixed walk
/// `walk_u`, returning true on the first coincident position. The walk
/// from `v` is generated lazily so non-meeting walks exit as soon as either
/// side terminates.
fn walk_pair_meets<G: GraphView, R: Rng + ?Sized>(
    graph: &G,
    walk_u: &[NodeId],
    v: NodeId,
    sqrt_c: f64,
    rng: &mut R,
) -> bool {
    let mut current = v;
    // Position 0: different by construction (v ≠ u checked by callers).
    if walk_u.first() == Some(&current) {
        return true;
    }
    for &u_i in &walk_u[1..] {
        // Extend v's walk by one step, honoring the √c termination.
        if rng.gen::<f64>() >= sqrt_c {
            return false;
        }
        let in_nbrs = graph.in_neighbors(current);
        if in_nbrs.is_empty() {
            return false;
        }
        current = in_nbrs[rng.gen_range(0..in_nbrs.len())];
        if current == u_i {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerMethod;
    use probesim_graph::toy::{toy_graph, A, TABLE2, TOY_DECAY};
    use probesim_graph::CsrGraph;

    #[test]
    fn chernoff_walk_count_formula() {
        // ln(2/0.01) / (2·0.1²) = 264.9…
        assert_eq!(MonteCarlo::walks_for_guarantee(0.1, 0.01), 265);
        assert!(
            MonteCarlo::walks_for_guarantee(0.05, 0.01)
                > MonteCarlo::walks_for_guarantee(0.1, 0.01)
        );
    }

    #[test]
    fn pair_estimates_match_ground_truth_on_toy_graph() {
        let g = toy_graph();
        let mc = MonteCarlo::new(TOY_DECAY, 20_000).with_seed(11);
        for v in 1..8u32 {
            let est = mc.pair(&g, A, v);
            assert!(
                (est - TABLE2[v as usize]).abs() < 0.015,
                "s(a,{v}): MC {est} vs truth {}",
                TABLE2[v as usize]
            );
        }
    }

    #[test]
    fn pair_is_symmetric_in_expectation() {
        let g = toy_graph();
        let mc = MonteCarlo::new(TOY_DECAY, 20_000).with_seed(5);
        let ab = mc.pair(&g, 2, 4);
        let ba = mc.pair(&g, 4, 2);
        assert!((ab - ba).abs() < 0.02);
    }

    #[test]
    fn identical_nodes_have_similarity_one() {
        let g = toy_graph();
        let mc = MonteCarlo::new(TOY_DECAY, 10);
        assert_eq!(mc.pair(&g, 3, 3), 1.0);
    }

    #[test]
    fn single_source_matches_ground_truth() {
        let g = toy_graph();
        let mc = MonteCarlo::new(TOY_DECAY, 8_000).with_seed(3);
        let scores = mc.single_source(&g, A);
        for v in 0..8usize {
            assert!(
                (scores[v] - TABLE2[v]).abs() < 0.02,
                "node {v}: {} vs {}",
                scores[v],
                TABLE2[v]
            );
        }
    }

    #[test]
    fn single_source_on_bigger_graph_agrees_with_power_method() {
        // A small deterministic graph beyond the toy example.
        let edges: Vec<(u32, u32)> = (0..30u32)
            .flat_map(|i| vec![(i, (i + 1) % 30), (i, (i + 7) % 30), ((i + 13) % 30, i)])
            .collect();
        let g = CsrGraph::from_edges(30, &edges);
        let truth = PowerMethod::new(0.6, 40).all_pairs(&g);
        let mc = MonteCarlo::new(0.6, 4_000).with_seed(7);
        let scores = mc.single_source(&g, 0);
        for v in 0..30u32 {
            assert!(
                (scores[v as usize] - truth.get(0, v)).abs() < 0.04,
                "node {v}: {} vs {}",
                scores[v as usize],
                truth.get(0, v)
            );
        }
    }

    #[test]
    fn expert_precision_scales_with_epsilon() {
        let loose = MonteCarlo::expert(0.6, 0.01, 0.001);
        let tight = MonteCarlo::expert(0.6, 0.001, 0.001);
        assert!(tight.num_walks > 50 * loose.num_walks);
    }

    #[test]
    fn deterministic_per_seed_and_pair() {
        let g = toy_graph();
        let mc = MonteCarlo::new(TOY_DECAY, 500).with_seed(9);
        assert_eq!(mc.pair(&g, A, 3), mc.pair(&g, A, 3));
        let other = MonteCarlo::new(TOY_DECAY, 500).with_seed(10);
        // Different seed usually gives a different estimate.
        let a = mc.pair(&g, A, 4);
        let b = other.pair(&g, A, 4);
        assert!((a - b).abs() > 0.0 || a == b); // non-flaky sanity
    }
}
