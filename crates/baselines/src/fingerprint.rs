//! Fingerprint index — the precomputed-walk variant of Monte Carlo
//! (Fogaras & Rácz \[7\], discussed in the paper's Related Work).
//!
//! The index stores `r` √c-walks ("fingerprints") for *every* node; a
//! query replays stored walks instead of sampling fresh ones, estimating
//! `s(u, v)` as the fraction of trials whose stored walks meet. This
//! removes all random-walk generation from the query path but pays the
//! cost the paper calls out: "the index structure incurs tremendous space
//! and preprocessing overheads, which makes it inapplicable on sizable
//! graphs" — `Θ(n·r·E\[ℓ\])` node ids, two-plus orders of magnitude beyond
//! the graph itself at accuracy-relevant `r`.
//!
//! Walks are stored flattened (CSR-style offsets into one id array) so
//! the reported [`FingerprintIndex::index_bytes`] is an honest measure of
//! what the method costs.

use probesim_graph::{GraphView, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the fingerprint index.
#[derive(Debug, Clone, Copy)]
pub struct FingerprintConfig {
    /// Decay factor `c`.
    pub decay: f64,
    /// Stored walks per node (`r`); accuracy follows the MC Chernoff
    /// bound `r ≥ ln(2/δ)/(2ε²)`.
    pub num_walks: usize,
    /// Cap on stored walk length in nodes.
    pub max_walk_nodes: usize,
    /// RNG seed for index construction.
    pub seed: u64,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        FingerprintConfig {
            decay: 0.6,
            num_walks: 100,
            max_walk_nodes: 64,
            seed: 0,
        }
    }
}

/// The prebuilt fingerprint index.
#[derive(Debug, Clone)]
pub struct FingerprintIndex {
    config: FingerprintConfig,
    num_nodes: usize,
    /// `offsets[v * r + j] .. offsets[v * r + j + 1]` is walk `j` of node
    /// `v` in `data` (the start node is implicit, so entries are the walk
    /// *after* position 0).
    offsets: Vec<u64>,
    data: Vec<NodeId>,
}

impl FingerprintIndex {
    /// Builds the index: `r` walks from every node. Θ(n·r) walk samples —
    /// this is the preprocessing ProbeSim exists to avoid.
    pub fn build<G: GraphView>(graph: &G, config: FingerprintConfig) -> Self {
        let n = graph.num_nodes();
        let r = config.num_walks;
        let sqrt_c = config.decay.sqrt();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut offsets: Vec<u64> = Vec::with_capacity(n * r + 1);
        offsets.push(0);
        let mut data: Vec<NodeId> = Vec::new();
        let mut walk_buf: Vec<NodeId> = Vec::with_capacity(8);
        for v in graph.nodes() {
            for _ in 0..r {
                walk_buf.clear();
                walk_buf.push(v);
                probesim_core::walk::extend_walk(
                    graph,
                    &mut walk_buf,
                    sqrt_c,
                    config.max_walk_nodes,
                    &mut rng,
                );
                data.extend_from_slice(&walk_buf[1..]);
                offsets.push(data.len() as u64);
            }
        }
        FingerprintIndex {
            config,
            num_nodes: n,
            offsets,
            data,
        }
    }

    /// The build configuration.
    pub fn config(&self) -> &FingerprintConfig {
        &self.config
    }

    /// Index footprint in bytes (offsets + walk ids).
    pub fn index_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.data.len() * std::mem::size_of::<NodeId>()
    }

    /// Stored walk `j` of node `v`, excluding the implicit start node.
    #[inline]
    fn walk(&self, v: NodeId, j: usize) -> &[NodeId] {
        let idx = v as usize * self.config.num_walks + j;
        &self.data[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }

    /// True when stored walks `j` of `u` and `v` meet (same node at the
    /// same step, comparing positions 1.. since position 0 differs).
    #[inline]
    fn walks_meet(&self, u: NodeId, v: NodeId, j: usize) -> bool {
        self.walk(u, j)
            .iter()
            .zip(self.walk(v, j))
            .any(|(a, b)| a == b)
    }

    /// Estimates `s(u, v)` from the stored fingerprints.
    pub fn pair(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 1.0;
        }
        let r = self.config.num_walks;
        let meets = (0..r).filter(|&j| self.walks_meet(u, v, j)).count();
        meets as f64 / r as f64
    }

    /// Single-source scores against every node — no fresh random walks,
    /// but still Θ(n·r·E\[ℓ\]) comparisons.
    pub fn single_source(&self, u: NodeId) -> Vec<f64> {
        assert!((u as usize) < self.num_nodes, "query node out of range");
        let r = self.config.num_walks;
        let mut meets = vec![0u32; self.num_nodes];
        // Invert the comparison loop: for each trial, mark u's walk
        // positions once, then stream every node's stored walk against it.
        let mut position_of_step: Vec<NodeId> = Vec::new();
        for j in 0..r {
            position_of_step.clear();
            position_of_step.extend_from_slice(self.walk(u, j));
            if position_of_step.is_empty() {
                continue;
            }
            for v in 0..self.num_nodes as NodeId {
                if v == u {
                    continue;
                }
                let met = self
                    .walk(v, j)
                    .iter()
                    .zip(&position_of_step)
                    .any(|(a, b)| a == b);
                if met {
                    meets[v as usize] += 1;
                }
            }
        }
        let mut scores: Vec<f64> = meets.into_iter().map(|m| m as f64 / r as f64).collect();
        scores[u as usize] = 1.0;
        scores
    }

    /// Top-k via the single-source scores.
    pub fn top_k(&self, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let scores = self.single_source(u);
        probesim_core::top_k_from_scores(&scores, u, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::toy::{toy_graph, A, D, TABLE2, TOY_DECAY};
    use probesim_graph::CsrGraph;

    fn toy_index(r: usize) -> FingerprintIndex {
        FingerprintIndex::build(
            &toy_graph(),
            FingerprintConfig {
                decay: TOY_DECAY,
                num_walks: r,
                max_walk_nodes: 64,
                seed: 42,
            },
        )
    }

    #[test]
    fn pair_estimates_match_ground_truth() {
        let idx = toy_index(20_000);
        for v in 1..8u32 {
            let est = idx.pair(A, v);
            assert!(
                (est - TABLE2[v as usize]).abs() < 0.02,
                "s(a,{v}): {est} vs {}",
                TABLE2[v as usize]
            );
        }
    }

    #[test]
    fn single_source_agrees_with_pair() {
        let idx = toy_index(5_000);
        let scores = idx.single_source(A);
        for v in 1..8u32 {
            assert!(
                (scores[v as usize] - idx.pair(A, v)).abs() < 1e-12,
                "node {v}: single-source and pair must replay identical walks"
            );
        }
        assert_eq!(scores[A as usize], 1.0);
    }

    #[test]
    fn top1_is_d_on_toy_graph() {
        let idx = toy_index(8_000);
        assert_eq!(idx.top_k(A, 1)[0].0, D);
    }

    #[test]
    fn index_space_scales_with_walks_and_nodes() {
        let small = toy_index(50);
        let big = toy_index(500);
        assert!(big.index_bytes() > 8 * small.index_bytes());
        // The paper's point: the index dwarfs the graph itself.
        let graph_bytes = toy_graph().memory_bytes();
        assert!(big.index_bytes() > 10 * graph_bytes);
    }

    #[test]
    fn queries_are_deterministic_replays() {
        let idx = toy_index(300);
        assert_eq!(idx.single_source(A), idx.single_source(A));
    }

    #[test]
    fn dead_end_nodes_store_empty_walks() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let idx = FingerprintIndex::build(
            &g,
            FingerprintConfig {
                decay: 0.6,
                num_walks: 50,
                max_walk_nodes: 16,
                seed: 1,
            },
        );
        // Node 0 has no in-edges: all its walks are empty, so it meets
        // nothing.
        let scores = idx.single_source(0);
        assert_eq!(scores[1], 0.0);
        assert_eq!(scores[2], 0.0);
        // Nodes 1 and 2 share the single parent 0: their walks are all
        // exactly [0], so they always meet (s ≈ c in truth; the stored-walk
        // estimator returns the meet fraction 1.0 · ... per trial both
        // walks survive the √c step — fraction ≈ c).
        let s12 = idx.pair(1, 2);
        assert!((s12 - 0.6).abs() < 0.15, "siblings: {s12}");
    }
}
