#![warn(missing_docs)]
//! # probesim-baselines
//!
//! Every comparison algorithm of the ProbeSim paper's evaluation
//! (Section 6), implemented from scratch:
//!
//! * [`power::PowerMethod`] — exact all-pairs SimRank (Jeh & Widom); the
//!   ground-truth oracle for the small-graph experiments (Figures 4–7) and
//!   the semantics TopSim-SM truncates.
//! * [`mc::MonteCarlo`] — the index-free Monte Carlo estimator over
//!   √c-walk pairs; both the "MC" baseline and the pooling "expert" of the
//!   large-graph experiments.
//! * [`tsf::Tsf`] — the Two-stage Sampling Framework (Shao et al.), the
//!   state-of-the-art *index-based* method for dynamic graphs: `Rg` one-way
//!   graphs with incremental maintenance, reproducing both of its known
//!   approximations (all-step meeting counts, cycle blindness).
//! * [`fingerprint::FingerprintIndex`] — the precomputed-walk index of
//!   Fogaras & Rácz (the paper's Related Work \[7\]): query-time walk replay
//!   bought with Θ(n·r·E\[ℓ\]) index space.
//! * [`topsim::TopSim`] — the TopSim-SM family (Lee et al.): exhaustive
//!   depth-`T` walk enumeration equal to the Power Method with `T`
//!   iterations, plus the Trun (degree/η trimming) and Prio (budgeted
//!   expansion) heuristic variants.
//!
//! All engines operate on any [`probesim_graph::GraphView`] and expose
//! `single_source` / `top_k` entry points mirroring
//! [`probesim_core::ProbeSim`], so the evaluation harness can drive them
//! uniformly.

pub mod fingerprint;
pub mod mc;
pub mod power;
pub mod topsim;
pub mod tsf;

pub use fingerprint::{FingerprintConfig, FingerprintIndex};
pub use mc::MonteCarlo;
pub use power::{PowerMethod, SimMatrix};
pub use topsim::{TopSim, TopSimConfig, TopSimVariant};
pub use tsf::{Tsf, TsfConfig};
