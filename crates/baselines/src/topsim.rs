//! The TopSim family (Lee et al. \[14\]): index-free top-k SimRank by
//! exhaustive enumeration of short random walks.
//!
//! Reconstructed from the behavioral description in the ProbeSim paper
//! (Sections 2.3 and 6): TopSim-SM enumerates *all* reverse-walk prefixes
//! from the query node up to depth `T` and treats the reached vertices as
//! meeting points; the estimate it produces "equals the SimRank value
//! approximated using the Power Method with T iterations", with complexity
//! `O(d^{2T})`.
//!
//! Our formulation: the exact truncated SimRank is
//!
//! ```text
//! s_T(u, v) = Σ_{prefix (u1..ui), i ≤ T} Pr[prefix] · P(v, prefix)
//! ```
//!
//! where `Pr[prefix] = Π_j √c/|I(u_j)|` is the probability a √c-walk from
//! `u` realizes the prefix, and `P(v, prefix)` is the same first-meeting
//! probability ProbeSim's deterministic PROBE computes. TopSim-SM therefore
//! enumerates the *complete weighted prefix tree* (instead of sampling
//! walks) and probes every prefix — deterministic, index-free, and exactly
//! the power-method-`T` value, hence an absolute error of at most `c^T`
//! (the paper's point that `T = 3` caps accuracy at `c³`).
//!
//! The two heuristic variants trade accuracy for speed exactly as
//! described:
//!
//! * **Trun-TopSim-SM** skips high-degree meeting points (in-degree above
//!   `1/h`) and trims prefixes whose walk probability falls below `η`;
//! * **Prio-TopSim-SM** expands only the `H` highest-probability prefixes
//!   per level.
//!
//! Both lose the `c^T` guarantee — mirrored by tests showing they
//! under-approximate on adversarial inputs.

use probesim_core::probe::{self, ProbeParams};
use probesim_core::result::QueryStats;
use probesim_core::workspace::ProbeWorkspace;
use probesim_graph::{GraphView, NodeId};

/// Which member of the TopSim family to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopSimVariant {
    /// TopSim-SM: exact power-method-`T` value.
    Exact,
    /// Trun-TopSim-SM: skip meeting points with in-degree > `degree_cap`
    /// (the paper's `1/h`, default 100) and prefixes with probability < `eta`
    /// (default 0.001).
    Truncated {
        /// Maximum in-degree expanded (`1/h`).
        degree_cap: usize,
        /// Minimum prefix probability (`η`).
        eta: f64,
    },
    /// Prio-TopSim-SM: expand only the `expand_budget` highest-probability
    /// prefixes per level (the paper's `H`, default 100).
    Priority {
        /// Prefixes expanded per level (`H`).
        expand_budget: usize,
    },
}

impl TopSimVariant {
    /// The paper's Trun parameters (`1/h = 100`, `η = 0.001`).
    pub fn paper_truncated() -> Self {
        TopSimVariant::Truncated {
            degree_cap: 100,
            eta: 0.001,
        }
    }

    /// The paper's Prio parameter (`H = 100`).
    pub fn paper_priority() -> Self {
        TopSimVariant::Priority { expand_budget: 100 }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            TopSimVariant::Exact => "TopSim-SM",
            TopSimVariant::Truncated { .. } => "Trun-TopSim-SM",
            TopSimVariant::Priority { .. } => "Prio-TopSim-SM",
        }
    }
}

/// TopSim configuration.
#[derive(Debug, Clone, Copy)]
pub struct TopSimConfig {
    /// Decay factor `c`.
    pub decay: f64,
    /// Random-walk depth `T` (paper setting: 3).
    pub depth: usize,
    /// Family member.
    pub variant: TopSimVariant,
}

impl TopSimConfig {
    /// The paper's setting for a given variant: `c = 0.6`, `T = 3`.
    pub fn paper(variant: TopSimVariant) -> Self {
        TopSimConfig {
            decay: 0.6,
            depth: 3,
            variant,
        }
    }
}

/// The TopSim query engine (stateless: index-free like ProbeSim, but with
/// exhaustive deterministic enumeration instead of sampling).
#[derive(Debug, Clone)]
pub struct TopSim {
    config: TopSimConfig,
}

/// One reverse-walk prefix under expansion.
#[derive(Debug, Clone)]
struct Prefix {
    path: Vec<NodeId>,
    probability: f64,
}

impl TopSim {
    /// Creates an engine.
    pub fn new(config: TopSimConfig) -> Self {
        assert!(config.depth >= 1);
        TopSim { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TopSimConfig {
        &self.config
    }

    /// Single-source scores `s̃_T(u, ·)` with query statistics.
    pub fn single_source_with_stats<G: GraphView>(
        &self,
        graph: &G,
        u: NodeId,
    ) -> (Vec<f64>, QueryStats) {
        let n = graph.num_nodes();
        assert!((u as usize) < n, "query node out of range");
        let sqrt_c = self.config.decay.sqrt();
        let params = ProbeParams {
            sqrt_c,
            epsilon_p: 0.0,
        };
        let mut stats = QueryStats::default();
        let mut acc = vec![0.0f64; n];
        let mut ws = ProbeWorkspace::new(n);
        // Level-synchronous expansion of the weighted prefix tree.
        let mut frontier = vec![Prefix {
            path: vec![u],
            probability: 1.0,
        }];
        for _level in 1..=(self.config.depth) {
            let mut next: Vec<Prefix> = Vec::new();
            for prefix in &frontier {
                let tail = *prefix
                    .path
                    .last()
                    .expect("invariant: prefix paths are non-empty");
                if let TopSimVariant::Truncated { degree_cap, .. } = self.config.variant {
                    // Skip high-degree meeting points entirely.
                    if graph.in_degree(tail) > degree_cap {
                        continue;
                    }
                }
                let in_nbrs = graph.in_neighbors(tail);
                if in_nbrs.is_empty() {
                    continue;
                }
                let step_prob = prefix.probability * sqrt_c / in_nbrs.len() as f64;
                if let TopSimVariant::Truncated { eta, .. } = self.config.variant {
                    if step_prob < eta {
                        continue;
                    }
                }
                for &y in in_nbrs {
                    let mut path = Vec::with_capacity(prefix.path.len() + 1);
                    path.extend_from_slice(&prefix.path);
                    path.push(y);
                    next.push(Prefix {
                        path,
                        probability: step_prob,
                    });
                }
            }
            if let TopSimVariant::Priority { expand_budget } = self.config.variant {
                if next.len() > expand_budget {
                    next.sort_unstable_by(|a, b| {
                        b.probability
                            .partial_cmp(&a.probability)
                            .expect("invariant: probabilities are never NaN")
                    });
                    next.truncate(expand_budget);
                }
            }
            // Probe every kept prefix of this level; its scores are the
            // first-meeting mass for meetings at exactly this depth.
            for prefix in &next {
                stats.walks += 1;
                probe::deterministic(
                    graph,
                    &prefix.path,
                    &params,
                    prefix.probability,
                    &mut ws,
                    &mut acc,
                    &mut stats,
                )
                .expect("invariant: a fresh workspace carries an unlimited budget");
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        acc[u as usize] = 1.0;
        (acc, stats)
    }

    /// Single-source scores.
    pub fn single_source<G: GraphView>(&self, graph: &G, u: NodeId) -> Vec<f64> {
        self.single_source_with_stats(graph, u).0
    }

    /// Top-k query.
    pub fn top_k<G: GraphView>(&self, graph: &G, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let scores = self.single_source(graph, u);
        probesim_core::top_k_from_scores(&scores, u, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerMethod;
    use probesim_graph::toy::{toy_graph, A, D, TOY_DECAY};
    use probesim_graph::CsrGraph;

    fn exact_engine(depth: usize) -> TopSim {
        TopSim::new(TopSimConfig {
            decay: TOY_DECAY,
            depth,
            variant: TopSimVariant::Exact,
        })
    }

    #[test]
    fn exact_variant_matches_power_method_with_t_iterations() {
        // The defining property: TopSim-SM == Power Method truncated at T.
        let g = toy_graph();
        for depth in 1..=5 {
            let truth = PowerMethod::new(TOY_DECAY, depth).all_pairs(&g);
            let (scores, _) = exact_engine(depth).single_source_with_stats(&g, A);
            for v in 0..8u32 {
                if v == A {
                    continue;
                }
                assert!(
                    (scores[v as usize] - truth.get(A, v)).abs() < 1e-10,
                    "depth {depth}, node {v}: topsim {} vs power {}",
                    scores[v as usize],
                    truth.get(A, v)
                );
            }
        }
    }

    #[test]
    fn error_is_bounded_by_c_to_the_t() {
        let g = toy_graph();
        let truth = PowerMethod::ground_truth(TOY_DECAY).all_pairs(&g);
        for depth in [2usize, 3, 4] {
            let scores = exact_engine(depth).single_source(&g, A);
            for v in 0..8u32 {
                if v == A {
                    continue;
                }
                let err = (scores[v as usize] - truth.get(A, v)).abs();
                assert!(
                    err <= TOY_DECAY.powi(depth as i32) + 1e-12,
                    "depth {depth} node {v}: err {err}"
                );
            }
        }
    }

    #[test]
    fn truncation_is_one_sided_underestimate() {
        let g = toy_graph();
        let exact = exact_engine(4).single_source(&g, A);
        let trun = TopSim::new(TopSimConfig {
            decay: TOY_DECAY,
            depth: 4,
            variant: TopSimVariant::Truncated {
                degree_cap: 2, // aggressive: skips most of the toy graph
                eta: 0.0,
            },
        })
        .single_source(&g, A);
        let mut dropped = 0;
        for v in 0..8usize {
            if v == A as usize {
                continue;
            }
            assert!(trun[v] <= exact[v] + 1e-12, "node {v} overestimated");
            if trun[v] < exact[v] - 1e-12 {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "aggressive truncation must lose some mass");
    }

    #[test]
    fn eta_trimming_drops_low_probability_prefixes() {
        let g = toy_graph();
        let exact = exact_engine(4).single_source(&g, A);
        let trimmed = TopSim::new(TopSimConfig {
            decay: TOY_DECAY,
            depth: 4,
            variant: TopSimVariant::Truncated {
                degree_cap: usize::MAX,
                eta: 0.2, // prunes everything beyond the first level
            },
        })
        .single_source(&g, A);
        let exact_mass: f64 = exact.iter().sum();
        let trimmed_mass: f64 = trimmed.iter().sum();
        assert!(trimmed_mass < exact_mass);
    }

    #[test]
    fn priority_with_large_budget_equals_exact() {
        let g = toy_graph();
        let exact = exact_engine(3).single_source(&g, A);
        let prio = TopSim::new(TopSimConfig {
            decay: TOY_DECAY,
            depth: 3,
            variant: TopSimVariant::Priority {
                expand_budget: 10_000,
            },
        })
        .single_source(&g, A);
        for v in 0..8usize {
            assert!((exact[v] - prio[v]).abs() < 1e-12, "node {v}");
        }
    }

    #[test]
    fn priority_with_tiny_budget_loses_probability_mass() {
        let g = toy_graph();
        let exact = exact_engine(3).single_source(&g, A);
        let prio = TopSim::new(TopSimConfig {
            decay: TOY_DECAY,
            depth: 3,
            variant: TopSimVariant::Priority { expand_budget: 1 },
        })
        .single_source(&g, A);
        // Dropped prefixes mean strictly less first-meeting mass overall,
        // and never more per node.
        for v in 0..8usize {
            assert!(prio[v] <= exact[v] + 1e-12, "node {v} overestimated");
        }
        let exact_mass: f64 = (0..8).filter(|&v| v != A as usize).map(|v| exact[v]).sum();
        let prio_mass: f64 = (0..8).filter(|&v| v != A as usize).map(|v| prio[v]).sum();
        assert!(
            prio_mass < exact_mass - 1e-9,
            "budget-1 expansion kept all mass: {prio_mass} vs {exact_mass}"
        );
    }

    #[test]
    fn top1_on_toy_graph_is_d() {
        let g = toy_graph();
        let top = exact_engine(3).top_k(&g, A, 2);
        assert_eq!(top[0].0, D);
    }

    #[test]
    fn dead_end_query_yields_zeros() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let scores = exact_engine(3).single_source(&g, 0);
        assert_eq!(scores[1], 0.0);
        assert_eq!(scores[2], 0.0);
    }

    #[test]
    fn variant_names_match_paper() {
        assert_eq!(TopSimVariant::Exact.name(), "TopSim-SM");
        assert_eq!(TopSimVariant::paper_truncated().name(), "Trun-TopSim-SM");
        assert_eq!(TopSimVariant::paper_priority().name(), "Prio-TopSim-SM");
    }
}
