//! The Power Method (Jeh & Widom 2002) — exact all-pairs SimRank.
//!
//! Iterates the *correct* matrix formulation of SimRank (Equation 10 of the
//! paper): `S ← (c·Pᵀ·S·P) ∨ I`, where `P` is the column-normalized
//! in-neighbor transition matrix and `∨` is element-wise max. After `t`
//! iterations every entry is within `c^t` of the fixed point, so the
//! experiment harness uses it as ground truth on small graphs exactly as
//! the paper does ("the power method with 55 iterations … at most 1e-12
//! absolute error").
//!
//! Cost is Θ(n·m) time per iteration and Θ(n²) memory — the reason the
//! paper (and this reproduction) only uses it on small graphs.

use probesim_graph::{GraphView, NodeId};

/// Dense symmetric matrix of SimRank values.
#[derive(Debug, Clone)]
pub struct SimMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SimMatrix {
    fn identity(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        SimMatrix { n, data }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the 0-node matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `s(u, v)`.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        self.data[u as usize * self.n + v as usize]
    }

    /// The single-source row `s(u, ·)`.
    #[inline]
    pub fn row(&self, u: NodeId) -> &[f64] {
        let u = u as usize;
        &self.data[u * self.n..(u + 1) * self.n]
    }
}

/// Exact SimRank via power iteration.
#[derive(Debug, Clone)]
pub struct PowerMethod {
    /// Decay factor `c`.
    pub decay: f64,
    /// Iteration count; the result is within `c^iterations` of exact, so
    /// callers pick `iterations = ⌈log_c(tolerance)⌉` for a target
    /// tolerance.
    pub iterations: usize,
}

impl PowerMethod {
    /// A solver with the given decay and iteration count.
    pub fn new(decay: f64, iterations: usize) -> Self {
        assert!((0.0..1.0).contains(&decay) && decay > 0.0);
        PowerMethod { decay, iterations }
    }

    /// The paper's ground-truth setting: 55 iterations (error ≤ c^55,
    /// below 1e-12 for c = 0.6).
    pub fn ground_truth(decay: f64) -> Self {
        PowerMethod::new(decay, 55)
    }

    /// The smallest iteration count whose `c^t` error bound beats `tol`.
    pub fn iterations_for_tolerance(decay: f64, tol: f64) -> usize {
        assert!(tol > 0.0 && tol < 1.0);
        (tol.ln() / decay.ln()).ceil() as usize
    }

    /// Computes all-pairs SimRank. Θ(n²) memory — intended for graphs of a
    /// few thousand nodes.
    pub fn all_pairs<G: GraphView>(&self, graph: &G) -> SimMatrix {
        let n = graph.num_nodes();
        let mut s = SimMatrix::identity(n);
        if n == 0 {
            return s;
        }
        let mut tmp = vec![0.0f64; n * n];
        for _ in 0..self.iterations {
            // tmp = S · P  (tmp[r][v] = (1/|I(v)|) Σ_{y ∈ I(v)} S[r][y]).
            for r in 0..n {
                let s_row = &s.data[r * n..(r + 1) * n];
                let tmp_row = &mut tmp[r * n..(r + 1) * n];
                for v in graph.nodes() {
                    let in_nbrs = graph.in_neighbors(v);
                    let cell = &mut tmp_row[v as usize];
                    if in_nbrs.is_empty() {
                        *cell = 0.0;
                        continue;
                    }
                    let mut acc = 0.0;
                    for &y in in_nbrs {
                        acc += s_row[y as usize];
                    }
                    *cell = acc / in_nbrs.len() as f64;
                }
            }
            // S ← c · Pᵀ · tmp, then ∨ I: row u is the mean of tmp rows of
            // u's in-neighbors, scaled by c. Row-wise adds vectorize well.
            for u in graph.nodes() {
                let in_nbrs = graph.in_neighbors(u);
                let u = u as usize;
                let s_row = &mut s.data[u * n..(u + 1) * n];
                if in_nbrs.is_empty() {
                    s_row.fill(0.0);
                    s_row[u] = 1.0;
                    continue;
                }
                let scale = self.decay / in_nbrs.len() as f64;
                // First in-neighbor initializes the row, the rest add in.
                let first = in_nbrs[0] as usize;
                s_row.copy_from_slice(&tmp[first * n..(first + 1) * n]);
                for &x in &in_nbrs[1..] {
                    let x = x as usize;
                    let t_row = &tmp[x * n..(x + 1) * n];
                    for v in 0..n {
                        s_row[v] += t_row[v];
                    }
                }
                for cell in s_row.iter_mut() {
                    *cell *= scale;
                }
                s_row[u] = 1.0;
            }
        }
        s
    }

    /// The single-source row `s(u, ·)`; computes all pairs internally.
    pub fn single_source<G: GraphView>(&self, graph: &G, u: NodeId) -> Vec<f64> {
        self.all_pairs(graph).row(u).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::toy::{toy_graph, A, TABLE2, TOY_DECAY};
    use probesim_graph::CsrGraph;

    #[test]
    fn toy_graph_reproduces_table2() {
        // The headline golden test: Table 2 of the paper, c' = 0.25.
        let g = toy_graph();
        let s = PowerMethod::ground_truth(TOY_DECAY).all_pairs(&g);
        let expected = TABLE2;
        for v in 0..8u32 {
            let got = s.get(A, v);
            assert!(
                (got - expected[v as usize]).abs() < 6e-4,
                "s(a,{v}) = {got}, table says {}",
                expected[v as usize]
            );
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let g = toy_graph();
        let s = PowerMethod::new(TOY_DECAY, 30).all_pairs(&g);
        for u in 0..8u32 {
            for v in 0..8u32 {
                assert!(
                    (s.get(u, v) - s.get(v, u)).abs() < 1e-12,
                    "asymmetry at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn diagonal_is_one_and_range_is_valid() {
        let g = toy_graph();
        let s = PowerMethod::new(TOY_DECAY, 30).all_pairs(&g);
        for u in 0..8u32 {
            assert_eq!(s.get(u, u), 1.0);
            for v in 0..8u32 {
                let val = s.get(u, v);
                assert!((0.0..=1.0).contains(&val));
                if u != v {
                    // Off-diagonal SimRank is bounded by the decay.
                    assert!(val <= TOY_DECAY + 1e-12);
                }
            }
        }
    }

    #[test]
    fn satisfies_the_simrank_fixed_point_equation() {
        let g = toy_graph();
        let s = PowerMethod::new(TOY_DECAY, 60).all_pairs(&g);
        // Check Equation 1 on every off-diagonal pair.
        for u in 0..8u32 {
            for v in 0..8u32 {
                if u == v {
                    continue;
                }
                let iu = g.in_neighbors(u);
                let iv = g.in_neighbors(v);
                let expected = if iu.is_empty() || iv.is_empty() {
                    0.0
                } else {
                    let mut total = 0.0;
                    for &x in iu {
                        for &y in iv {
                            total += s.get(x, y);
                        }
                    }
                    TOY_DECAY * total / (iu.len() * iv.len()) as f64
                };
                assert!(
                    (s.get(u, v) - expected).abs() < 1e-9,
                    "fixed point violated at ({u},{v}): {} vs {expected}",
                    s.get(u, v)
                );
            }
        }
    }

    #[test]
    fn zero_in_degree_nodes_have_zero_similarity() {
        // 0 -> 1 -> 2; node 0 has no in-edges.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = PowerMethod::new(0.6, 20).all_pairs(&g);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(0, 2), 0.0);
        assert_eq!(s.get(0, 0), 1.0);
    }

    #[test]
    fn siblings_are_similar() {
        // 2 and 3 share the single parent 0 -> siblings with s = c.
        let g = CsrGraph::from_edges(4, &[(0, 2), (0, 3), (1, 0)]);
        let s = PowerMethod::new(0.6, 40).all_pairs(&g);
        assert!((s.get(2, 3) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn more_iterations_never_decrease_accuracy() {
        let g = toy_graph();
        let s5 = PowerMethod::new(TOY_DECAY, 5).all_pairs(&g);
        let s40 = PowerMethod::new(TOY_DECAY, 40).all_pairs(&g);
        let s60 = PowerMethod::new(TOY_DECAY, 60).all_pairs(&g);
        // s40 and s60 agree to the c^40 bound; s5 may differ more.
        let mut d_40_60 = 0.0f64;
        let mut d_5_60 = 0.0f64;
        for u in 0..8u32 {
            for v in 0..8u32 {
                d_40_60 = d_40_60.max((s40.get(u, v) - s60.get(u, v)).abs());
                d_5_60 = d_5_60.max((s5.get(u, v) - s60.get(u, v)).abs());
            }
        }
        assert!(d_40_60 < TOY_DECAY.powi(38));
        assert!(d_40_60 <= d_5_60);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = PowerMethod::new(0.6, 5).all_pairs(&g);
        assert!(s.is_empty());
    }
}
