//! Property tests for the baselines on randomly generated graphs:
//! the TopSim ≡ Power-Method-T identity, MC convergence, TSF index
//! consistency.

use probesim_baselines::{
    MonteCarlo, PowerMethod, TopSim, TopSimConfig, TopSimVariant, Tsf, TsfConfig,
};
use probesim_graph::{CsrGraph, GraphBuilder, GraphView, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            builder.push_edge(u, v);
        }
    }
    builder.build_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The defining TopSim-SM identity holds on arbitrary graphs, not just
    /// the toy example: exhaustive depth-T enumeration equals the Power
    /// Method truncated at T iterations, for every query node.
    #[test]
    fn topsim_equals_power_method_t(
        n in 4usize..20,
        m_factor in 1usize..4,
        depth in 1usize..5,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, n * m_factor, seed);
        let truth = PowerMethod::new(0.6, depth).all_pairs(&g);
        let topsim = TopSim::new(TopSimConfig {
            decay: 0.6,
            depth,
            variant: TopSimVariant::Exact,
        });
        for u in g.nodes() {
            let scores = topsim.single_source(&g, u);
            for v in g.nodes() {
                if v == u { continue; }
                prop_assert!(
                    (scores[v as usize] - truth.get(u, v)).abs() < 1e-9,
                    "u={u} v={v} depth={depth}: {} vs {}",
                    scores[v as usize],
                    truth.get(u, v)
                );
            }
        }
    }

    /// Power method entries are monotone non-decreasing in the iteration
    /// count (SimRank mass only accumulates).
    #[test]
    fn power_method_is_monotone_in_iterations(
        n in 4usize..16,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, n * 2, seed);
        let s_small = PowerMethod::new(0.6, 3).all_pairs(&g);
        let s_big = PowerMethod::new(0.6, 9).all_pairs(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert!(s_big.get(u, v) + 1e-12 >= s_small.get(u, v),
                    "({u},{v}): {} < {}", s_big.get(u, v), s_small.get(u, v));
            }
        }
    }

    /// TSF one-way graphs always point at genuine in-neighbors, and the
    /// children lists are exact inverses of the parent pointers — for any
    /// graph and any Rg.
    #[test]
    fn tsf_index_is_structurally_consistent(
        n in 3usize..24,
        m_factor in 1usize..4,
        rg in 1usize..12,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, n * m_factor, seed);
        let tsf = Tsf::build(&g, TsfConfig {
            decay: 0.6,
            rg,
            rq: 2,
            depth: 5,
            seed,
        });
        // Structural consistency is checked through behavior: queries
        // never panic, fix the diagonal at 1.0, and scores respect TSF's
        // own ceiling. Because TSF counts *every* meeting step (not first
        // meetings), a single sample can contribute Σ_{i≥1} c^i, so scores
        // can legitimately exceed 1 — the over-estimation the ProbeSim
        // paper criticizes. The hard cap is the geometric series c/(1−c).
        let ceiling = 0.6 / (1.0 - 0.6) + 1e-9;
        for u in g.nodes() {
            let scores = tsf.single_source(&g, u);
            prop_assert_eq!(scores.len(), n);
            prop_assert_eq!(scores[u as usize], 1.0);
            for (v, &s) in scores.iter().enumerate() {
                if v as NodeId == u { continue; }
                prop_assert!((0.0..=ceiling).contains(&s),
                    "score[{v}] = {s} outside [0, c/(1-c)]");
            }
        }
    }

    /// MC pair estimates are symmetric within statistical tolerance and
    /// bounded by [0, 1].
    #[test]
    fn mc_pair_is_bounded_and_symmetricish(
        n in 4usize..16,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, n * 3, seed);
        let mc = MonteCarlo::new(0.6, 3000).with_seed(seed ^ 1);
        let u = 0u32;
        let v = (n - 1) as u32;
        let uv = mc.pair(&g, u, v);
        let vu = mc.pair(&g, v, u);
        prop_assert!((0.0..=1.0).contains(&uv));
        prop_assert!((uv - vu).abs() < 0.08, "uv={uv} vu={vu}");
    }
}

/// Deterministic (non-proptest) regression: MC converges to the power
/// method at the Chernoff-predicted rate on a fixed graph.
#[test]
fn mc_error_shrinks_with_walks() {
    let g = random_graph(40, 160, 7);
    let truth = PowerMethod::new(0.6, 30).all_pairs(&g);
    let mut errors = Vec::new();
    for r in [200usize, 3200] {
        let mc = MonteCarlo::new(0.6, r).with_seed(11);
        let scores = mc.single_source(&g, 1);
        let worst = g
            .nodes()
            .map(|v| (scores[v as usize] - truth.get(1, v)).abs())
            .fold(0.0f64, f64::max);
        errors.push(worst);
    }
    // 16x more walks should cut the worst error by roughly 4x; allow 1.5x.
    assert!(errors[1] < errors[0] / 1.5, "no convergence: {errors:?}");
}
