//! Property tests for the graph substrate: CSR/DynamicGraph equivalence
//! under arbitrary update sequences, builder normalization laws, and I/O
//! round-trips.

use probesim_graph::{io, CsrGraph, DynamicGraph, GraphBuilder, GraphView, NodeId};
use proptest::prelude::*;

/// An arbitrary sequence of edge operations on a fixed node range.
#[derive(Debug, Clone)]
enum Op {
    Insert(NodeId, NodeId),
    Remove(NodeId, NodeId),
}

fn arb_ops(n: u32, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0..n, 0..n, any::<bool>()).prop_map(|(u, v, ins)| {
            if ins {
                Op::Insert(u, v)
            } else {
                Op::Remove(u, v)
            }
        }),
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DynamicGraph under any op sequence equals a reference
    /// set-of-edges model, and its snapshot equals a CSR built from the
    /// final edge set.
    #[test]
    fn dynamic_graph_matches_reference_model(ops in arb_ops(12, 120)) {
        let n = 12usize;
        let mut g = DynamicGraph::new(n);
        let mut reference: std::collections::BTreeSet<(NodeId, NodeId)> = Default::default();
        for op in &ops {
            match *op {
                Op::Insert(u, v) if u != v => {
                    let inserted = g.insert_edge(u, v);
                    prop_assert_eq!(inserted, reference.insert((u, v)));
                }
                Op::Remove(u, v) => {
                    let removed = g.remove_edge(u, v);
                    prop_assert_eq!(removed, reference.remove(&(u, v)));
                }
                _ => {}
            }
        }
        prop_assert_eq!(g.num_edges(), reference.len());
        for v in g.nodes() {
            let in_ref: Vec<NodeId> = reference.iter()
                .filter(|&&(_, t)| t == v).map(|&(s, _)| s).collect();
            prop_assert_eq!(g.in_neighbors(v), &in_ref[..]);
            let out_ref: Vec<NodeId> = reference.iter()
                .filter(|&&(s, _)| s == v).map(|&(_, t)| t).collect();
            prop_assert_eq!(g.out_neighbors(v), &out_ref[..]);
        }
        let edge_vec: Vec<(NodeId, NodeId)> = reference.into_iter().collect();
        prop_assert_eq!(g.snapshot(), CsrGraph::from_edges(n, &edge_vec));
    }

    /// Builder normalization is idempotent: rebuilding a cleaned graph
    /// from its own edges changes nothing.
    #[test]
    fn builder_is_idempotent(
        edges in prop::collection::vec((0u32..10, 0u32..10), 0..60),
        undirected in any::<bool>(),
    ) {
        let first = GraphBuilder::new(10)
            .undirected(undirected)
            .extend_edges(edges)
            .build_csr();
        let second = GraphBuilder::new(10)
            .extend_edges(first.edges())
            .build_csr();
        prop_assert_eq!(first, second);
    }

    /// Undirected builds are symmetric by construction.
    #[test]
    fn undirected_builds_are_symmetric(
        edges in prop::collection::vec((0u32..10, 0u32..10), 0..40),
    ) {
        let g = GraphBuilder::new(10).undirected(true).extend_edges(edges).build_csr();
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                prop_assert!(g.has_edge(v, u), "missing reverse of ({u},{v})");
            }
            prop_assert_eq!(g.in_neighbors(u), g.out_neighbors(u));
        }
    }

    /// Transpose is an involution and swaps degrees.
    #[test]
    fn transpose_involution(
        edges in prop::collection::vec((0u32..9, 0u32..9), 0..40),
    ) {
        let g = GraphBuilder::new(9).extend_edges(edges).build_csr();
        let t = g.transpose();
        prop_assert_eq!(t.transpose(), g.clone());
        for v in g.nodes() {
            prop_assert_eq!(g.in_degree(v), t.out_degree(v));
            prop_assert_eq!(g.out_degree(v), t.in_degree(v));
        }
    }

    /// Text edge-list round trip preserves the edge multiset up to the
    /// dense relabeling (which is the identity when ids are already dense
    /// and appear in order).
    #[test]
    fn text_io_round_trip(
        edges in prop::collection::vec((0u32..8, 0u32..8), 1..40),
    ) {
        let g = GraphBuilder::new(8).extend_edges(edges).build_csr();
        prop_assume!(g.num_edges() > 0);
        let mut buf = Vec::new();
        io::write_edge_list_text(&mut buf, &g).expect("write");
        let (g2, labels) = io::read_edge_list_text(std::io::Cursor::new(buf)).expect("read");
        // Relabel g2 back through `labels` and compare edge sets.
        let mut original: Vec<(u64, u64)> = g.edges().iter()
            .map(|&(u, v)| (u as u64, v as u64)).collect();
        let mut relabeled: Vec<(u64, u64)> = g2.edges().iter()
            .map(|&(u, v)| (labels[u as usize], labels[v as usize])).collect();
        original.sort_unstable();
        relabeled.sort_unstable();
        prop_assert_eq!(original, relabeled);
    }
}
