//! The versioned graph store: single-writer updates, lock-free
//! multi-reader snapshots, background compaction.
//!
//! ProbeSim's serving story — index-free queries racing a stream of edge
//! updates — needs a storage engine where **readers never block on
//! writers**. [`crate::DynamicGraph`] cannot provide that: `insert_edge`
//! takes `&mut self`, so a service must strictly alternate updates and
//! queries on one thread. [`GraphStore`] splits the two roles:
//!
//! * the **writer** owns the store (`&mut self` for
//!   [`GraphStore::apply`] / [`GraphStore::apply_all`]) and mutates a
//!   per-node copy-on-write [`OverlayGraph`] over an immutable
//!   `Arc<CsrGraph>` base;
//! * **readers** hold [`GraphSnapshot`]s — immutable, versioned,
//!   `Arc`-cheap to clone, `Send + Sync`, implementing [`GraphView`] —
//!   published by [`GraphStore::snapshot`] and valid forever, no matter
//!   what the writer does next;
//! * when the touched fraction of the overlay crosses the
//!   [`CompactionPolicy`] threshold, [`GraphStore::compact`] folds the
//!   overlay into a fresh CSR base through the
//!   [`CsrGraph::from_edge_iter`] streaming path. Compaction changes the
//!   representation, never the logical graph: published snapshots keep
//!   their old `Arc`s and the store's [version](GraphStore::version) is
//!   unchanged, so a reader cannot tell a compaction happened.
//!
//! The version is bumped on every *effective* mutation (an insert of a
//! present edge or a removal of an absent one is a no-op), so two
//! snapshots with equal versions carry identical edge sets — the
//! invariant the snapshot-isolation tests pin down bit-for-bit.

use std::sync::Arc;

use crate::dynamic::GraphUpdate;
use crate::overlay::{resolve, FrozenAdj, OverlayGraph};
use crate::view::GraphView;
use crate::{CsrGraph, Edge, NodeId};

/// When [`GraphStore`] folds its overlay back into a fresh CSR base.
///
/// The overlay's per-query overhead grows with the number of
/// materialized adjacency lists (hash probes on the hot neighbor lookup,
/// O(touched) snapshot publication), so a long-running writer should
/// periodically pay one O(n + m) rebuild to return the cold path to pure
/// CSR. Compaction triggers after an effective update when **both**
/// bounds are exceeded:
///
/// * `touched_lists >= min_touched_lists` — tiny overlays are cheap no
///   matter the fraction; don't rebuild a 1M-node graph because 10 of
///   its lists were touched, and
/// * `touched_lists > max_touched_fraction * 2n` — the fraction of the
///   `2n` adjacency lists (out + in) that have been materialized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Fraction of the `2n` adjacency lists allowed to be materialized
    /// before a rebuild (default 0.25).
    pub max_touched_fraction: f64,
    /// Overlays smaller than this never trigger a rebuild (default 256
    /// lists).
    pub min_touched_lists: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_touched_fraction: 0.25,
            min_touched_lists: 256,
        }
    }
}

impl CompactionPolicy {
    /// A policy that never auto-compacts (explicit
    /// [`GraphStore::compact`] still works).
    pub fn disabled() -> Self {
        CompactionPolicy {
            max_touched_fraction: f64::INFINITY,
            min_touched_lists: usize::MAX,
        }
    }

    /// True when an overlay with `touched` materialized lists over an
    /// `n`-node base should be folded down.
    pub fn should_compact(&self, touched: usize, n: usize) -> bool {
        touched >= self.min_touched_lists
            && (touched as f64) > self.max_touched_fraction * (2 * n.max(1)) as f64
    }
}

/// A directed graph under single-writer edge updates, publishing
/// immutable versioned [`GraphSnapshot`]s that any number of reader
/// threads query concurrently.
///
/// # Example
///
/// ```
/// use probesim_graph::{GraphStore, GraphUpdate, GraphView};
///
/// let mut store = GraphStore::new(4);
/// store.apply_all([
///     GraphUpdate::Insert { u: 0, v: 1 },
///     GraphUpdate::Insert { u: 2, v: 1 },
/// ]);
/// let before = store.snapshot();
///
/// // The writer keeps going; `before` is frozen at its version.
/// store.apply(GraphUpdate::Remove { u: 0, v: 1 });
/// let after = store.snapshot();
///
/// assert_eq!(before.in_neighbors(1), &[0, 2]);
/// assert_eq!(after.in_neighbors(1), &[2]);
/// assert!(before.version() < after.version());
/// ```
pub struct GraphStore {
    overlay: OverlayGraph,
    version: u64,
    policy: CompactionPolicy,
    compactions: u64,
    /// When set, every compaction rebuilds the base **degree-ordered**
    /// (relabeled by current descending out-degree behind a
    /// [`crate::NodeRemap`]) instead of preserving the base's existing
    /// labeling — so a long-lived store keeps its hub rows packed as
    /// the degree distribution drifts. See
    /// [`GraphStore::set_degree_order_refresh`].
    refresh_degree_order: bool,
    /// The last published snapshot, handed back verbatim while no
    /// mutation or compaction intervenes: a version-unchanged
    /// `snapshot()` is one `Arc` bump instead of two map freezes (the
    /// read-heavy serving pattern publishes far more often than it
    /// writes). Behind a `Mutex` only so `snapshot(&self)` stays shared
    /// and the store stays `Sync`; the writer clears it with
    /// `get_mut` (no locking) before touching the overlay, which also
    /// releases the cache's `Arc`s so COW sees only real snapshot
    /// holders.
    published: std::sync::Mutex<Option<GraphSnapshot>>,
    /// Writer-side mutation hook: called with the new version after
    /// every *effective* mutation (see
    /// [`GraphStore::set_mutation_observer`]). The serving tier wires
    /// its version-keyed result cache's invalidation in here, so a cache
    /// can never outlive the edge set it was keyed on by mistake — the
    /// callback runs on the writer thread, inside the mutation, before
    /// any reader can observe the new version via a fresh snapshot.
    observer: Option<MutationObserver>,
}

/// The callback type [`GraphStore::set_mutation_observer`] installs:
/// invoked with the store's new version after each effective mutation.
pub type MutationObserver = std::sync::Arc<dyn Fn(u64) + Send + Sync>;

/// The receipt a mutation entry point returns ([`GraphStore::commit`],
/// `QueryService::commit`, `Fleet::commit`): the store version after
/// the operation and how many of its events were effective. `version`
/// identifies the exact edge set the write produced (equal version ⇒
/// identical edge set), so it slots directly into
/// `Consistency::AtLeastVersion(commit.version)` for read-your-writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Commit {
    /// The store version after the operation (unchanged when nothing
    /// was effective).
    pub version: u64,
    /// How many events changed the graph (0 or 1 for single-update
    /// commits).
    pub effective: u64,
}

impl Commit {
    /// Whether at least one event changed the graph.
    pub fn was_effective(&self) -> bool {
        self.effective > 0
    }
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphStore")
            .field("overlay", &self.overlay)
            .field("version", &self.version)
            .field("policy", &self.policy)
            .field("compactions", &self.compactions)
            .field("observer", &self.observer.as_ref().map(|_| "Fn(u64)"))
            .finish_non_exhaustive()
    }
}

impl Clone for GraphStore {
    fn clone(&self) -> Self {
        GraphStore {
            overlay: self.overlay.clone(),
            version: self.version,
            policy: self.policy,
            compactions: self.compactions,
            refresh_degree_order: self.refresh_degree_order,
            // The clone republishes lazily.
            published: std::sync::Mutex::new(None),
            // Shared on purpose: over-notifying an observer is always
            // safe (invalidation is conservative), silently dropping it
            // on clone would not be.
            observer: self.observer.clone(),
        }
    }
}

impl GraphStore {
    /// An empty store with `n` nodes and the default
    /// [`CompactionPolicy`].
    pub fn new(n: usize) -> Self {
        Self::from_csr(CsrGraph::from_edges(n, &[]))
    }

    /// A store whose initial base is `base` (version 0).
    pub fn from_csr(base: CsrGraph) -> Self {
        Self::from_arc(Arc::new(base))
    }

    /// A store whose initial base is `base`, already representing the
    /// state reached at `version` — the checkpoint-recovery
    /// constructor. The next effective mutation produces
    /// `version + 1`, so a replica restored from a checkpoint at LSN
    /// `v` re-joins the log's LSN ≡ version lockstep without replaying
    /// the prefix.
    pub fn from_csr_at(base: CsrGraph, version: u64) -> Self {
        let mut store = Self::from_csr(base);
        store.version = version;
        store
    }

    /// A store sharing an already-`Arc`ed base.
    pub fn from_arc(base: Arc<CsrGraph>) -> Self {
        GraphStore {
            overlay: OverlayGraph::new(base),
            version: 0,
            policy: CompactionPolicy::default(),
            compactions: 0,
            refresh_degree_order: false,
            published: std::sync::Mutex::new(None),
            observer: None,
        }
    }

    /// Builds the initial base from an edge list (taken as-is, like
    /// [`CsrGraph::from_edges`]).
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        Self::from_csr(CsrGraph::from_edges(n, edges))
    }

    /// Promotes any [`GraphView`] (a live [`crate::DynamicGraph`], a
    /// [`CsrGraph`], …) to a store by streaming its adjacency into a
    /// fresh CSR base — no intermediate edge `Vec`.
    pub fn from_view<G: GraphView>(graph: &G) -> Self {
        Self::from_csr(CsrGraph::from_edge_iter(
            graph.num_nodes(),
            graph.edges_iter(),
        ))
    }

    /// Like [`GraphStore::from_view`], but the base is built
    /// **degree-ordered** ([`CsrGraph::degree_ordered_from`]): hub rows
    /// pack the front of the CSR for locality. The store's mutation API
    /// keeps taking external ids (they are translated at this boundary),
    /// and sessions translate queries through
    /// [`GraphView::node_remap`] — callers never see internal labels.
    pub fn from_view_degree_ordered<G: GraphView>(graph: &G) -> Self {
        Self::from_csr(CsrGraph::degree_ordered_from(graph))
    }

    /// Replaces the compaction policy.
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets whether each compaction re-derives the degree ordering from
    /// the *current* out-degrees (relabeling the fresh base) instead of
    /// preserving the existing labeling. Off by default. Turning it on
    /// for an unrelabeled store makes the next compaction adopt a
    /// degree-ordered layout; published snapshots are unaffected (their
    /// `Arc`s keep the old base alive).
    pub fn set_degree_order_refresh(&mut self, on: bool) {
        self.refresh_degree_order = on;
    }

    /// Builder form of [`GraphStore::set_degree_order_refresh`].
    pub fn with_degree_order_refresh(mut self, on: bool) -> Self {
        self.refresh_degree_order = on;
        self
    }

    /// Installs a writer-side mutation observer: `f(new_version)` runs
    /// after every **effective** mutation (no-op events never fire it),
    /// on the writer thread, before the new version is observable
    /// through a fresh snapshot.
    ///
    /// This is the invalidation hook for version-keyed derived state —
    /// the serving tier's result cache drops entries for versions that
    /// fell out of its retention window here. At most one observer is
    /// installed; a second call replaces the first.
    pub fn set_mutation_observer(&mut self, f: impl Fn(u64) + Send + Sync + 'static) {
        self.observer = Some(Arc::new(f));
    }

    /// Removes the mutation observer, if any.
    pub fn clear_mutation_observer(&mut self) {
        self.observer = None;
    }

    /// The active compaction policy.
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// The current version: the number of effective mutations applied
    /// since construction. Compaction does not change it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// How many compactions have folded the overlay so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Materialized adjacency lists in the live overlay (see
    /// [`OverlayGraph::touched_lists`]).
    pub fn touched_lists(&self) -> usize {
        self.overlay.touched_lists()
    }

    /// Fraction of the `2n` adjacency lists materialized in the overlay.
    pub fn touched_fraction(&self) -> f64 {
        self.overlay.touched_fraction()
    }

    /// The current base CSR (changes identity on compaction — tests use
    /// this to observe that a fold happened).
    pub fn base(&self) -> &Arc<CsrGraph> {
        self.overlay.base()
    }

    /// Inserts the directed edge `u -> v`; `false` if already present.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.mutate(GraphUpdate::Insert { u, v })
    }

    /// Removes the directed edge `u -> v`; `false` if absent.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.mutate(GraphUpdate::Remove { u, v })
    }

    /// Applies one update event, bumping the version when it changed the
    /// graph and auto-compacting per the policy. Returns `true` when the
    /// event was effective. Thin wrapper over [`GraphStore::commit`] for
    /// call sites that only care about effectiveness.
    pub fn apply(&mut self, update: GraphUpdate) -> bool {
        self.mutate(update)
    }

    /// Applies a sequence of updates, returning how many were effective.
    pub fn apply_all<I: IntoIterator<Item = GraphUpdate>>(&mut self, updates: I) -> usize {
        updates
            .into_iter()
            .filter(|&update| self.apply(update))
            .count()
    }

    /// Applies one update event and returns the [`Commit`] token: the
    /// store version after the event and whether it was effective. A
    /// writer can hand `commit.version` straight to a
    /// `Consistency::AtLeastVersion` read to observe its own write.
    pub fn commit(&mut self, update: GraphUpdate) -> Commit {
        let effective = self.mutate(update);
        Commit {
            version: self.version,
            effective: u64::from(effective),
        }
    }

    /// Applies a batch in order; the returned token carries the final
    /// version and the total number of effective updates.
    pub fn commit_all<I: IntoIterator<Item = GraphUpdate>>(&mut self, updates: I) -> Commit {
        let mut effective = 0;
        for update in updates {
            effective += u64::from(self.mutate(update));
        }
        Commit {
            version: self.version,
            effective,
        }
    }

    fn mutate(&mut self, update: GraphUpdate) -> bool {
        let (u, v) = update.edge();
        let n = self.num_nodes();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of bounds for n = {n}"
        );
        // Mutations address edges by external id; translate once here if
        // the base is degree-ordered (internal storage labels).
        let (u, v) = match self.overlay.base().node_remap() {
            Some(r) => (r.internal(u), r.internal(v)),
            None => (u, v),
        };
        // Decide effectiveness first: a no-op event (duplicate insert,
        // absent remove) must neither touch the overlay nor invalidate
        // the cached publication.
        if self.overlay.has_edge(u, v) == update.is_insert() {
            return false;
        }
        // Fully drop the cached publication *before* the overlay edit:
        // its `Arc` references would otherwise force `Arc::make_mut` to
        // copy lists no external snapshot holds.
        *self.published.get_mut().expect("snapshot cache poisoned") = None;
        let changed = if update.is_insert() {
            self.overlay.insert_edge(u, v)
        } else {
            self.overlay.remove_edge(u, v)
        };
        debug_assert!(changed, "effectiveness was just established");
        self.version += 1;
        if self
            .policy
            .should_compact(self.overlay.touched_lists(), self.num_nodes())
        {
            self.compact();
        }
        if let Some(observer) = &self.observer {
            observer(self.version);
        }
        changed
    }

    /// Folds the overlay into a fresh CSR base via the streaming
    /// [`CsrGraph::from_edge_iter`] path. The logical graph and the
    /// version are unchanged; published snapshots keep their old `Arc`s
    /// and are never stalled. A degree-ordered base keeps its labeling
    /// (unless [`GraphStore::set_degree_order_refresh`] is on, in which
    /// case the ordering is re-derived from current degrees). Returns
    /// `false` (and does nothing) when the overlay is already empty and
    /// no relabeling refresh is pending.
    pub fn compact(&mut self) -> bool {
        if self.overlay.touched_lists() == 0 && !self.refresh_degree_order {
            return false;
        }
        // The cached publication points at the pre-fold representation;
        // republish from the fresh base so old overlay Arcs can drop.
        *self.published.get_mut().expect("snapshot cache poisoned") = None;
        let n = self.num_nodes();
        let base_remap = self.overlay.base().node_remap().cloned();
        let folded = if self.refresh_degree_order {
            // Externalize the live edge set, then relabel it by current
            // out-degree. The extra intermediate CSR keeps the ordering
            // derivation in external space regardless of the old labels.
            let external = match &base_remap {
                None => CsrGraph::from_edge_iter(n, self.overlay.edges_iter()),
                Some(r) => {
                    let r = Arc::clone(r);
                    CsrGraph::from_edge_iter(
                        n,
                        self.overlay
                            .edges_iter()
                            .map(move |(u, v)| (r.external(u), r.external(v))),
                    )
                }
            };
            CsrGraph::degree_ordered_from(&external)
        } else {
            match &base_remap {
                None => CsrGraph::from_edge_iter(n, self.overlay.edges_iter()),
                Some(r) => {
                    let map = Arc::clone(r);
                    CsrGraph::from_external_edge_iter(
                        n,
                        self.overlay
                            .edges_iter()
                            .map(move |(u, v)| (map.external(u), map.external(v))),
                        Some(Arc::clone(r)),
                    )
                }
            }
        };
        debug_assert_eq!(folded.num_edges(), self.num_edges());
        self.overlay = OverlayGraph::new(Arc::new(folded));
        self.compactions += 1;
        true
    }

    /// Publishes the current state as an immutable [`GraphSnapshot`].
    ///
    /// O(touched) `Arc` clones — no adjacency data is copied — and only
    /// when something changed since the last publish: repeated
    /// `snapshot()` calls between mutations return the same cached
    /// publication for one `Arc` bump (the read-heavy serving pattern).
    /// The snapshot stays valid and bit-identical no matter how many
    /// updates or compactions follow.
    pub fn snapshot(&self) -> GraphSnapshot {
        let mut published = self.published.lock().expect("snapshot cache poisoned");
        if let Some(snapshot) = &*published {
            return snapshot.clone();
        }
        let (out, inn) = self.overlay.freeze();
        let snapshot = GraphSnapshot {
            inner: Arc::new(SnapshotState {
                version: self.version,
                base: Arc::clone(self.overlay.base()),
                out,
                inn,
                num_edges: self.num_edges(),
            }),
        };
        *published = Some(snapshot.clone());
        snapshot
    }

    /// True when the directed edge exists in the current live state.
    /// Like the mutation API, `u` and `v` are **external** ids.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match self.overlay.base().node_remap() {
            Some(r) => self.overlay.has_edge(r.internal(u), r.internal(v)),
            None => self.overlay.has_edge(u, v),
        }
    }

    /// Iterates the live edges in `(source, target)` order, sorted,
    /// without allocating.
    pub fn edges_iter(&self) -> impl Iterator<Item = Edge> + Clone + '_ {
        self.overlay.edges_iter()
    }
}

/// The writer-side live view: querying a `GraphStore` directly reads the
/// overlay (single-threaded convenience; concurrent readers use
/// [`GraphSnapshot`]s).
impl GraphView for GraphStore {
    /// A store's node count is pinned to its base's `n` — edges mutate,
    /// the vertex set never does (growth stays on `DynamicGraph`).
    const STABLE_NODE_COUNT: bool = true;

    #[inline]
    fn num_nodes(&self) -> usize {
        self.overlay.num_nodes()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.overlay.num_edges()
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.overlay.in_neighbors(v)
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.overlay.out_neighbors(v)
    }

    #[inline]
    fn node_remap(&self) -> Option<&Arc<crate::relabel::NodeRemap>> {
        self.overlay.base().node_remap()
    }
}

struct SnapshotState {
    version: u64,
    base: Arc<CsrGraph>,
    out: FrozenAdj,
    inn: FrozenAdj,
    num_edges: usize,
}

/// An immutable, versioned view of a [`GraphStore`] at one publish
/// point.
///
/// Cloning is one `Arc` bump, so a snapshot can be handed to any number
/// of reader threads (`Send + Sync`); each reads exactly the edge set
/// that existed at [`GraphSnapshot::version`], no matter what the writer
/// does afterwards. The node count is fixed at construction, so
/// [`GraphView::STABLE_NODE_COUNT`] is `true` and a
/// `probesim_core::QuerySession` bound to an owned snapshot can never
/// observe a resize.
#[derive(Clone)]
pub struct GraphSnapshot {
    inner: Arc<SnapshotState>,
}

impl GraphSnapshot {
    /// The store version this snapshot was published at.
    pub fn version(&self) -> u64 {
        self.inner.version
    }

    /// True when the directed edge exists in this snapshot. Ids are in
    /// the snapshot's storage space (internal when the base is
    /// degree-ordered — such rows sort by external key, and the search
    /// compares accordingly).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match self.inner.base.node_remap() {
            None => self.out_neighbors(u).binary_search(&v).is_ok(),
            Some(r) => self
                .out_neighbors(u)
                .binary_search_by_key(&r.external(v), |&t| r.external(t))
                .is_ok(),
        }
    }

    /// Materializes this snapshot as a standalone [`CsrGraph`] (the
    /// scratch-rebuild the isolation tests compare against).
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_edge_iter(self.num_nodes(), self.edges_iter())
    }
}

impl std::fmt::Debug for GraphSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphSnapshot")
            .field("version", &self.inner.version)
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.inner.num_edges)
            .field(
                "touched_lists",
                &(self.inner.out.len() + self.inner.inn.len()),
            )
            .finish()
    }
}

impl GraphView for GraphSnapshot {
    /// A snapshot's node count is fixed at publication — sessions bound
    /// to an owned snapshot skip the resize guard at compile time.
    const STABLE_NODE_COUNT: bool = true;

    #[inline]
    fn num_nodes(&self) -> usize {
        self.inner.base.num_nodes()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.inner.num_edges
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let state = &*self.inner;
        resolve(&state.inn, v, state.base.in_neighbors(v))
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let state = &*self.inner;
        resolve(&state.out, v, state.base.out_neighbors(v))
    }

    #[inline]
    fn node_remap(&self) -> Option<&Arc<crate::relabel::NodeRemap>> {
        self.inner.base.node_remap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynamicGraph;

    fn assert_same_graph<A: GraphView, B: GraphView>(a: &A, b: &B) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.nodes() {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v), "out({v})");
            assert_eq!(a.in_neighbors(v), b.in_neighbors(v), "in({v})");
        }
    }

    #[test]
    fn from_csr_at_seeds_the_version() {
        let mut store = GraphStore::from_csr_at(CsrGraph::from_edges(3, &[(0, 1)]), 17);
        assert_eq!(store.version(), 17);
        assert_eq!(store.snapshot().version(), 17);
        let commit = store.commit(GraphUpdate::Insert { u: 1, v: 2 });
        assert!(commit.was_effective());
        assert_eq!(commit.version, 18);
        assert_eq!(store.snapshot().version(), 18);
    }

    #[test]
    fn snapshots_are_send_sync_and_cheap_to_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<GraphSnapshot>();
        let store = GraphStore::from_edges(3, &[(0, 1), (1, 2)]);
        let snap = store.snapshot();
        let clone = snap.clone();
        assert!(Arc::ptr_eq(&snap.inner, &clone.inner));
    }

    #[test]
    fn unchanged_snapshots_are_republished_from_the_cache() {
        let mut store = GraphStore::from_edges(4, &[(0, 1), (1, 2)]);
        let a = store.snapshot();
        let b = store.snapshot();
        assert!(
            Arc::ptr_eq(&a.inner, &b.inner),
            "no mutation between publishes => same publication"
        );
        // A no-op event keeps the cached publication valid.
        store.insert_edge(0, 1);
        let still = store.snapshot();
        assert!(Arc::ptr_eq(&b.inner, &still.inner), "no-op kept the cache");
        store.insert_edge(2, 3);
        let c = store.snapshot();
        assert!(!Arc::ptr_eq(&b.inner, &c.inner));
        assert_eq!(c.num_edges(), 3);
        // Compaction republishes too (fresh base), same logical graph.
        store.compact();
        let d = store.snapshot();
        assert!(!Arc::ptr_eq(&c.inner, &d.inner));
        assert_eq!(d.version(), c.version());
        assert_same_graph(&c, &d);
        // The cache's own Arcs must not defeat COW: with every external
        // snapshot dropped, mutating a touched node twice between
        // publishes edits in place (observable only as correctness here).
        drop((a, b, c, d));
        store.insert_edge(0, 2);
        store.insert_edge(0, 3);
        assert_eq!(store.out_neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn version_counts_effective_mutations_only() {
        let mut store = GraphStore::new(3);
        assert_eq!(store.version(), 0);
        assert!(store.insert_edge(0, 1));
        assert!(!store.insert_edge(0, 1)); // duplicate: no version bump
        assert!(!store.remove_edge(1, 2)); // absent: no version bump
        assert!(store.remove_edge(0, 1));
        assert_eq!(store.version(), 2);
    }

    #[test]
    fn snapshot_isolation_under_continued_writes() {
        let mut store = GraphStore::from_edges(4, &[(0, 1), (1, 2)]);
        let v0 = store.snapshot();
        store.insert_edge(2, 3);
        let v1 = store.snapshot();
        store.remove_edge(0, 1);
        store.insert_edge(3, 0);
        let v2 = store.snapshot();

        assert_eq!(v0.num_edges(), 2);
        assert_eq!(v1.num_edges(), 3);
        assert_eq!(v2.num_edges(), 3);
        assert!(v0.version() < v1.version() && v1.version() < v2.version());
        assert!(v0.has_edge(0, 1) && v1.has_edge(0, 1) && !v2.has_edge(0, 1));
        assert!(!v0.has_edge(2, 3) && v1.has_edge(2, 3) && v2.has_edge(2, 3));
        // Each snapshot equals a scratch CSR of its own edge set.
        for snap in [&v0, &v1, &v2] {
            assert_same_graph(snap, &snap.to_csr());
        }
        // And the live store equals the latest snapshot.
        assert_same_graph(&store, &v2);
    }

    #[test]
    fn compaction_preserves_the_graph_and_snapshots() {
        let mut store = GraphStore::new(6).with_policy(CompactionPolicy::disabled());
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)] {
            store.insert_edge(u, v);
        }
        let before = store.snapshot();
        let version = store.version();
        let old_base = Arc::clone(store.base());
        assert!(store.touched_lists() > 0);

        assert!(store.compact());
        assert_eq!(store.compactions(), 1);
        assert_eq!(store.version(), version, "compaction is not a mutation");
        assert_eq!(store.touched_lists(), 0, "overlay folded");
        assert!(
            !Arc::ptr_eq(store.base(), &old_base),
            "base must be a fresh CSR"
        );
        // Logical graph unchanged; old snapshot still reads its version.
        assert_same_graph(&store, &before);
        let after = store.snapshot();
        assert_eq!(after.version(), before.version());
        assert_same_graph(&after, &before);
        // An empty overlay declines to compact again.
        assert!(!store.compact());
        assert_eq!(store.compactions(), 1);
    }

    #[test]
    fn auto_compaction_respects_the_policy() {
        let policy = CompactionPolicy {
            max_touched_fraction: 0.2,
            min_touched_lists: 4,
        };
        assert!(!policy.should_compact(3, 4)); // below min_touched_lists
        assert!(policy.should_compact(4, 4)); // 4 > 0.2 * 8
        assert!(!policy.should_compact(4, 100)); // 4 <= 0.2 * 200

        let mut store = GraphStore::new(8).with_policy(policy);
        let mut compacted_at = None;
        for i in 0..7u32 {
            store.insert_edge(i, i + 1);
            if store.compactions() > 0 && compacted_at.is_none() {
                compacted_at = Some(i);
            }
        }
        assert!(
            store.compactions() > 0,
            "policy should have auto-compacted (touched {} of 16 lists)",
            store.touched_lists()
        );
        // Still the right graph afterwards.
        let expect = DynamicGraph::from_edges(8, &(0..7).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert_same_graph(&store, &expect);
    }

    #[test]
    fn store_matches_dynamic_graph_under_a_shared_update_stream() {
        let mut store =
            GraphStore::from_edges(5, &[(0, 1), (3, 4)]).with_policy(CompactionPolicy {
                max_touched_fraction: 0.1,
                min_touched_lists: 2,
            });
        let mut dynamic = DynamicGraph::from_edges(5, &[(0, 1), (3, 4)]);
        let updates = [
            GraphUpdate::Insert { u: 1, v: 2 },
            GraphUpdate::Insert { u: 0, v: 1 }, // no-op
            GraphUpdate::Remove { u: 3, v: 4 },
            GraphUpdate::Insert { u: 4, v: 0 },
            GraphUpdate::Remove { u: 2, v: 2 }, // no-op
            GraphUpdate::Insert { u: 2, v: 3 },
        ];
        let a = store.apply_all(updates);
        let b = dynamic.apply_all(updates);
        assert_eq!(a, b);
        assert_eq!(store.version(), a as u64);
        assert_same_graph(&store, &dynamic);
        assert!(store.edges_iter().eq(dynamic.edges_iter()));
        assert!(store.compactions() > 0, "aggressive policy must compact");
    }

    #[test]
    fn snapshot_taken_before_compaction_stays_bit_stable() {
        let mut store = GraphStore::new(5).with_policy(CompactionPolicy::disabled());
        store.apply_all((0..4).map(|i| GraphUpdate::Insert { u: i, v: i + 1 }));
        let snap = store.snapshot();
        let edges_before: Vec<Edge> = snap.edges_iter().collect();
        store.compact();
        store.apply_all((0..4).map(|i| GraphUpdate::Remove { u: i, v: i + 1 }));
        store.compact();
        assert_eq!(store.num_edges(), 0);
        let edges_after: Vec<Edge> = snap.edges_iter().collect();
        assert_eq!(edges_before, edges_after);
        assert_same_graph(&snap, &snap.to_csr());
    }

    #[test]
    fn mutation_observer_fires_on_effective_mutations_only() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let seen = Arc::new(AtomicU64::new(0));
        let fired = Arc::new(AtomicU64::new(0));
        let mut store = GraphStore::new(4);
        store.set_mutation_observer({
            let seen = Arc::clone(&seen);
            let fired = Arc::clone(&fired);
            move |version| {
                seen.store(version, Ordering::SeqCst);
                fired.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(store.insert_edge(0, 1));
        assert_eq!(seen.load(Ordering::SeqCst), 1);
        assert!(!store.insert_edge(0, 1), "duplicate insert is a no-op");
        assert_eq!(fired.load(Ordering::SeqCst), 1, "no-op must not fire");
        assert!(store.remove_edge(0, 1));
        assert_eq!(seen.load(Ordering::SeqCst), 2);
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        // Compaction is not a mutation and never fires the observer.
        store.insert_edge(1, 2);
        store.compact();
        assert_eq!(fired.load(Ordering::SeqCst), 3);
        // Clearing stops notifications; mutations still work.
        store.clear_mutation_observer();
        assert!(store.insert_edge(2, 3));
        assert_eq!(fired.load(Ordering::SeqCst), 3);
        assert_eq!(store.version(), 4);
    }

    #[test]
    fn empty_store_smoke() {
        let store = GraphStore::new(0);
        assert_eq!(store.num_nodes(), 0);
        assert_eq!(store.snapshot().num_edges(), 0);
        assert_eq!(store.touched_fraction(), 0.0);
        let store = GraphStore::new(3);
        let snap = store.snapshot();
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.in_neighbors(2), &[] as &[NodeId]);
        assert_eq!(snap.edges_iter().count(), 0);
    }
}
