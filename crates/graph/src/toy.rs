//! The paper's running-example graph (Figure 1).
//!
//! The edge set is not printed in the paper; we reverse-engineered it from
//! the worked examples and then verified it end-to-end:
//!
//! * every intermediate PROBE score of the Section 3.2 walkthrough for the
//!   walk `(a, b, a, b)` matches (`Score(c,1)=0.167`, `Score(f,2)=0.115`,
//!   `H3 = {b:0.011, c:0.033, e:0.038, f:0.019}`, …), and
//! * the Power Method on this graph with `c = 0.25` reproduces every entry
//!   of Table 2 to the table's printed precision
//!   (`s(a,·) = 1.0, 0.0096, 0.049, 0.131, 0.070, 0.041, 0.051, 0.051`).
//!
//! Derived in-neighbor sets:
//!
//! ```text
//! I(a) = {b, c}     I(b) = {a, e}     I(c) = {a, b, g}  I(d) = {b}
//! I(e) = {b, g}     I(f) = {c, d, e, h}
//! I(g) = {c, d, e}  I(h) = {c, d, e}
//! ```

use crate::{CsrGraph, NodeId};

/// Node `a` of the toy graph, the query node of Table 2.
pub const A: NodeId = 0;
/// Node `b`.
pub const B: NodeId = 1;
/// Node `c`.
pub const C: NodeId = 2;
/// Node `d`.
pub const D: NodeId = 3;
/// Node `e`.
pub const E: NodeId = 4;
/// Node `f`.
pub const F: NodeId = 5;
/// Node `g`.
pub const G: NodeId = 6;
/// Node `h`.
pub const H: NodeId = 7;

/// The decay factor used by the paper's running example (`c' = 0.25`, so
/// `√c' = 0.5`).
pub const TOY_DECAY: f64 = 0.25;

/// Table 2 of the paper: SimRank similarities with respect to node `a`,
/// computed by the Power Method within 1e-5 error (values as printed).
pub const TABLE2: [f64; 8] = [1.0, 0.0096, 0.049, 0.131, 0.070, 0.041, 0.051, 0.051];

/// Human-readable labels, index = node id.
pub const LABELS: [&str; 8] = ["a", "b", "c", "d", "e", "f", "g", "h"];

/// The directed edge list of the Figure 1 toy graph.
pub fn toy_edges() -> Vec<(NodeId, NodeId)> {
    vec![
        // I(a) = {b, c}
        (B, A),
        (C, A),
        // I(b) = {a, e}
        (A, B),
        (E, B),
        // I(c) = {a, b, g}
        (A, C),
        (B, C),
        (G, C),
        // I(d) = {b}
        (B, D),
        // I(e) = {b, g}
        (B, E),
        (G, E),
        // I(f) = {c, d, e, h}
        (C, F),
        (D, F),
        (E, F),
        (H, F),
        // I(g) = {c, d, e}
        (C, G),
        (D, G),
        (E, G),
        // I(h) = {c, d, e}
        (C, H),
        (D, H),
        (E, H),
    ]
}

/// The Figure 1 toy graph as a [`CsrGraph`].
pub fn toy_graph() -> CsrGraph {
    CsrGraph::from_edges(8, &toy_edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphView;

    #[test]
    fn degrees_match_derivation() {
        let g = toy_graph();
        let in_degs: Vec<usize> = g.nodes().map(|v| g.in_degree(v)).collect();
        assert_eq!(in_degs, vec![2, 2, 3, 1, 2, 4, 3, 3]);
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    fn out_neighbors_of_b_match_probe_walkthrough() {
        // The Section 3.2 walkthrough: "Following the out-edges of b, the
        // algorithm finds a ... c ... d and e".
        let g = toy_graph();
        assert_eq!(g.out_neighbors(B), &[A, C, D, E]);
    }

    #[test]
    fn level2_frontier_matches_walkthrough() {
        // "the algorithm finds a, f, g and h from the out-neighbours of c, d
        // and e" (b omitted as the avoided node).
        let g = toy_graph();
        let mut found: Vec<NodeId> = [C, D, E]
            .iter()
            .flat_map(|&x| g.out_neighbors(x).iter().copied())
            .collect();
        found.sort_unstable();
        found.dedup();
        assert_eq!(found, vec![A, B, F, G, H]);
    }

    #[test]
    fn walk_a_b_a_b_is_realizable() {
        // The example √c-walk (a, b, a, b) follows in-edges: each successive
        // node must be an in-neighbor of the previous one.
        let g = toy_graph();
        assert!(g.in_neighbors(A).contains(&B));
        assert!(g.in_neighbors(B).contains(&A));
    }

    #[test]
    fn g_and_h_are_structurally_symmetric() {
        let g = toy_graph();
        assert_eq!(g.in_neighbors(G), g.in_neighbors(H));
    }
}
