//! FxHash-style hashing.
//!
//! The SimRank algorithms hash `u32` node ids millions of times per query
//! (score maps in PROBE, frontier sets, walk tries). The standard library's
//! SipHash is designed for HashDoS resistance that we do not need on internal
//! integer keys, and it shows up heavily in profiles. We implement the
//! well-known Fx multiply-rotate hash (the one used inside rustc) locally
//! because `rustc-hash` is not in the approved offline dependency set — the
//! algorithm is ~20 lines.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fibonacci-style multiplication constant (2^64 / φ), the same
/// constant rustc's FxHasher uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher for integer-like keys.
///
/// Not HashDoS-resistant; use only on keys that are not attacker-controlled
/// (node ids, internal counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time; the tail is folded in as a
        // zero-extended word. Good enough for the short keys we hash.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Convenience constructor: an empty [`FxHashMap`] with room for `cap`
/// entries.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Convenience constructor: an empty [`FxHashSet`] with room for `cap`
/// entries.
pub fn fx_set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one("probesim"), hash_one("probesim"));
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a guarantee in general, but these must differ for a sane mixer.
        let hashes: Vec<u64> = (0u32..1000).map(hash_one).collect();
        let unique: FxHashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(unique.len(), 1000);
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, f64> = fx_map_with_capacity(8);
        m.insert(1, 0.5);
        m.insert(2, 0.25);
        *m.entry(1).or_insert(0.0) += 0.5;
        assert_eq!(m[&1], 1.0);

        let mut s: FxHashSet<u32> = fx_set_with_capacity(8);
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }

    #[test]
    fn avalanche_on_low_bits() {
        // Consecutive integers should not land in consecutive buckets for
        // typical table sizes; check spread over 64 buckets.
        let mut buckets = [0u32; 64];
        for i in 0u32..6400 {
            buckets[(hash_one(i) % 64) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        assert!(max < 4 * min.max(1), "poor spread: min={min} max={max}");
    }

    #[test]
    fn string_hashing_handles_tails() {
        // Exercise the chunked `write` path with lengths around the 8-byte
        // boundary.
        for len in 0..20 {
            let s: String = "x".repeat(len);
            let h1 = hash_one(s.as_str());
            let h2 = hash_one(s.as_str());
            assert_eq!(h1, h2);
        }
        assert_ne!(hash_one("aaaaaaaa"), hash_one("aaaaaaab"));
    }
}
