//! Edge-list ingestion and cleaning.
//!
//! The paper evaluates on "directed simple graphs" (no self-loops, no
//! parallel edges); undirected datasets such as HepTh are symmetrized.
//! [`GraphBuilder`] performs that normalization once, so the query-time
//! structures can stay permissive and fast.

use crate::{CsrGraph, DynamicGraph, Edge, NodeId};

/// Builds a clean [`CsrGraph`] (or [`DynamicGraph`]) from raw edges.
///
/// # Example
///
/// ```
/// use probesim_graph::{GraphBuilder, GraphView};
///
/// let g = GraphBuilder::new(3)
///     .undirected(true)
///     .add_edge(0, 1)
///     .add_edge(1, 2)
///     .add_edge(1, 2) // duplicate, removed
///     .add_edge(2, 2) // self-loop, removed
///     .build_csr();
/// assert_eq!(g.num_edges(), 4); // 0<->1, 1<->2
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<Edge>,
    undirected: bool,
    keep_self_loops: bool,
    keep_duplicates: bool,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_nodes: n,
            edges: Vec::new(),
            undirected: false,
            keep_self_loops: false,
            keep_duplicates: false,
        }
    }

    /// When true, every added edge `(u, v)` also contributes `(v, u)`.
    /// Matches how the paper treats undirected datasets.
    pub fn undirected(mut self, yes: bool) -> Self {
        self.undirected = yes;
        self
    }

    /// When true, self-loops are kept (default: removed, per the "simple
    /// graph" assumption in the paper's problem definition).
    pub fn keep_self_loops(mut self, yes: bool) -> Self {
        self.keep_self_loops = yes;
        self
    }

    /// When true, parallel edges are kept (default: de-duplicated).
    pub fn keep_duplicates(mut self, yes: bool) -> Self {
        self.keep_duplicates = yes;
        self
    }

    /// Adds one directed edge. Endpoints must be `< n`.
    pub fn add_edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.push_edge(u, v);
        self
    }

    /// Adds one directed edge through a mutable reference (loop-friendly).
    pub fn push_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u}, {v}) out of bounds for n = {}",
            self.num_nodes
        );
        self.edges.push((u, v));
    }

    /// Adds many edges at once.
    pub fn extend_edges<I: IntoIterator<Item = Edge>>(mut self, iter: I) -> Self {
        for (u, v) in iter {
            self.push_edge(u, v);
        }
        self
    }

    /// Number of raw (pre-cleaning) edges accumulated so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    fn cleaned_edges(&self) -> Vec<Edge> {
        let mut edges: Vec<Edge> =
            Vec::with_capacity(self.edges.len() * if self.undirected { 2 } else { 1 });
        for &(u, v) in &self.edges {
            if u == v && !self.keep_self_loops {
                continue;
            }
            edges.push((u, v));
            if self.undirected && u != v {
                edges.push((v, u));
            }
        }
        if !self.keep_duplicates {
            edges.sort_unstable();
            edges.dedup();
        }
        edges
    }

    /// Finalizes into an immutable [`CsrGraph`].
    pub fn build_csr(&self) -> CsrGraph {
        CsrGraph::from_edges(self.num_nodes, &self.cleaned_edges())
    }

    /// Finalizes into a mutable [`DynamicGraph`].
    pub fn build_dynamic(&self) -> DynamicGraph {
        DynamicGraph::from_edges(self.num_nodes, &self.cleaned_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphView;

    #[test]
    fn deduplicates_by_default() {
        let g = GraphBuilder::new(2)
            .add_edge(0, 1)
            .add_edge(0, 1)
            .build_csr();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn keeps_duplicates_when_asked() {
        let g = GraphBuilder::new(2)
            .keep_duplicates(true)
            .add_edge(0, 1)
            .add_edge(0, 1)
            .build_csr();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn removes_self_loops_by_default() {
        let g = GraphBuilder::new(2)
            .add_edge(1, 1)
            .add_edge(0, 1)
            .build_csr();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn keeps_self_loops_when_asked() {
        let g = GraphBuilder::new(2)
            .keep_self_loops(true)
            .add_edge(1, 1)
            .build_csr();
        assert!(g.has_edge(1, 1));
    }

    #[test]
    fn undirected_symmetrizes() {
        let g = GraphBuilder::new(3)
            .undirected(true)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build_csr();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1));
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn undirected_dedup_of_both_orientations() {
        // (0,1) and (1,0) both given: symmetrization + dedup must yield 2.
        let g = GraphBuilder::new(2)
            .undirected(true)
            .add_edge(0, 1)
            .add_edge(1, 0)
            .build_csr();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn extend_and_raw_count() {
        let b = GraphBuilder::new(4).extend_edges(vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(b.raw_edge_count(), 3);
        assert_eq!(b.build_csr().num_edges(), 3);
    }

    #[test]
    fn builds_equivalent_dynamic_and_csr() {
        let b = GraphBuilder::new(4).extend_edges(vec![(0, 1), (1, 2), (0, 3)]);
        let c = b.build_csr();
        let d = b.build_dynamic();
        assert_eq!(c, d.snapshot());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_edge_panics() {
        let _ = GraphBuilder::new(1).add_edge(0, 1);
    }
}
