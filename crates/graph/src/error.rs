//! Error type for graph ingestion and I/O.

use std::fmt;

/// Errors produced while parsing, reading or writing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Offending text.
        content: String,
    },
    /// An edge endpoint fell outside the declared node range.
    NodeOutOfRange {
        /// The bad node id.
        node: u64,
        /// The declared node count.
        num_nodes: usize,
    },
    /// A binary graph file had a bad magic number or truncated payload.
    Corrupt(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, content } => {
                write!(f, "cannot parse edge on line {line}: {content:?}")
            }
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range (n = {num_nodes})")
            }
            GraphError::Corrupt(msg) => write!(f, "corrupt graph file: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GraphError::Parse {
            line: 3,
            content: "a b".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::NodeOutOfRange {
            node: 10,
            num_nodes: 5,
        };
        assert!(e.to_string().contains("10"));
        let e = GraphError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
