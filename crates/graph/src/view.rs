//! The [`GraphView`] trait: the read interface every SimRank algorithm in
//! this workspace is generic over.
//!
//! Both the immutable [`crate::CsrGraph`] and the mutable
//! [`crate::DynamicGraph`] implement it, which is what lets ProbeSim answer
//! queries on a live, updating graph with zero preprocessing.

use std::sync::Arc;

use crate::relabel::NodeRemap;
use crate::{Edge, NodeId};

/// Read-only access to a directed graph with dense node ids `0..n`.
///
/// `in_neighbors(v)` are the sources of edges pointing *at* `v` (the set
/// `I(v)` in the paper); `out_neighbors(v)` are the targets of edges leaving
/// `v` (`O(v)`). Both are returned as slices so hot loops can iterate without
/// allocation or virtual dispatch (callers are generic, not trait objects).
pub trait GraphView {
    /// Whether `num_nodes` is guaranteed constant for the entire
    /// lifetime of a value of this type (no `&mut` growth paths, no
    /// interior mutability).
    ///
    /// `probesim_core::QuerySession` sizes its scratch slabs for the
    /// node count at construction; for graphs that set this to `true`
    /// (immutable types like [`crate::CsrGraph`] and
    /// [`crate::GraphSnapshot`]) the per-run resize guard compiles away
    /// and `QueryError::GraphResized` becomes structurally impossible.
    /// Leave it `false` (the default) for any view whose node count
    /// could change behind a shared borrow.
    const STABLE_NODE_COUNT: bool = false;

    /// Number of nodes `n`. Valid ids are `0..n`.
    fn num_nodes(&self) -> usize;

    /// Number of directed edges `m`.
    fn num_edges(&self) -> usize;

    /// The in-neighbors `I(v)` of `v` (sources of incoming edges).
    fn in_neighbors(&self, v: NodeId) -> &[NodeId];

    /// The out-neighbors `O(v)` of `v` (targets of outgoing edges).
    fn out_neighbors(&self, v: NodeId) -> &[NodeId];

    /// `|I(v)|`.
    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// `|O(v)|`.
    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// True when `v` has at least one incoming edge. Query nodes in the
    /// paper's experiments are sampled "uniformly at random from those with
    /// nonzero in-degrees".
    #[inline]
    fn has_in_edges(&self, v: NodeId) -> bool {
        self.in_degree(v) > 0
    }

    /// Iterator over all node ids.
    #[inline]
    fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Iterates all edges in `(source, target)` order, sorted by source
    /// then target (adjacency lists are sorted by contract), without
    /// allocating. Re-iterable (`Clone`), so it feeds
    /// [`crate::CsrGraph::from_edge_iter`]'s two passes directly — the
    /// one edge-streaming path shared by compaction, snapshot rebuilds
    /// and the workload fingerprints. (Concrete graph types may shadow
    /// this with an equivalent inherent method; the contract is the
    /// same.)
    fn edges_iter(&self) -> impl Iterator<Item = Edge> + Clone + '_ {
        (0..self.num_nodes() as NodeId)
            .flat_map(|u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// The external ⇄ internal node relabeling this view stores its
    /// adjacency under, when it was built degree-ordered
    /// ([`crate::CsrGraph::degree_ordered_from`]). `None` (the default)
    /// means ids in this view *are* the caller's external ids.
    ///
    /// Sessions translate queries through this exactly once at the
    /// boundary; algorithms themselves stay label-oblivious.
    #[inline]
    fn node_remap(&self) -> Option<&Arc<NodeRemap>> {
        None
    }
}

impl<G: GraphView + ?Sized> GraphView for &G {
    // A shared borrow cannot make an unstable count stable, nor the
    // reverse: forward the referent's guarantee.
    const STABLE_NODE_COUNT: bool = G::STABLE_NODE_COUNT;

    #[inline]
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    #[inline]
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }
    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        (**self).in_neighbors(v)
    }
    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        (**self).out_neighbors(v)
    }
    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        (**self).in_degree(v)
    }
    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        (**self).out_degree(v)
    }
    #[inline]
    fn node_remap(&self) -> Option<&Arc<NodeRemap>> {
        (**self).node_remap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    #[test]
    fn blanket_ref_impl_forwards() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let r: &CsrGraph = &g;
        fn takes_view<G: GraphView>(g: G) -> (usize, usize) {
            (g.num_nodes(), g.num_edges())
        }
        assert_eq!(takes_view(r), (3, 2));
        assert_eq!(takes_view(r), (3, 2)); // blanket impl also covers &&CsrGraph
    }

    #[test]
    fn nodes_iterates_all_ids() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let ids: Vec<u32> = g.nodes().collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
