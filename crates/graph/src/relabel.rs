//! Bidirectional node relabeling for cache-conscious CSR layouts.
//!
//! Power-law graphs concentrate most probe traffic on a few hub rows.
//! Relabeling nodes by descending out-degree packs those hot rows (and
//! the hot prefix of the offset arrays) into a few cache lines, which
//! is where a memory-bound frontier sweep spends its time. The remap is
//! **invisible at the API boundary**: query inputs and outputs keep
//! external ids, and sessions translate through [`NodeRemap`] exactly
//! once per query.
//!
//! The one rule that makes relabeled execution *bit-identical* to
//! unrelabeled execution (not merely equivalent) lives in the CSR
//! builder, not here: relabeled adjacency rows keep their neighbors in
//! **external-ascending order** (sorted by external key, not by the
//! internal id values). Every traversal in the probe engine is either
//! positional (walk sampling picks `row[rng.gen_range(..)]`) or
//! insertion-ordered, so preserving row order preserves the exact
//! floating-point association and RNG consumption sequence of the
//! unrelabeled graph.

use crate::view::GraphView;
use crate::NodeId;

/// A bijective external ⇄ internal node-id mapping.
///
/// "External" ids are the caller-visible labels (`0..n`, stable across
/// relabeling); "internal" ids are the storage positions the CSR
/// actually uses. Both directions are dense `u32` arrays, so each
/// translation is one load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRemap {
    /// `to_internal[external] = internal`.
    to_internal: Vec<NodeId>,
    /// `to_external[internal] = external`.
    to_external: Vec<NodeId>,
}

impl NodeRemap {
    /// Builds a remap from the `to_internal` direction, deriving the
    /// inverse. Panics (debug) if `to_internal` is not a permutation of
    /// `0..len`.
    pub fn from_to_internal(to_internal: Vec<NodeId>) -> Self {
        let n = to_internal.len();
        let mut to_external = vec![0 as NodeId; n];
        let mut seen = vec![false; n];
        for (ext, &int) in to_internal.iter().enumerate() {
            debug_assert!(
                (int as usize) < n && !seen[int as usize],
                "invariant: relabeling must be a permutation of 0..n"
            );
            seen[int as usize] = true;
            to_external[int as usize] = ext as NodeId;
        }
        NodeRemap {
            to_internal,
            to_external,
        }
    }

    /// The identity mapping over `n` nodes (useful in tests; real
    /// identity layouts carry no remap at all).
    pub fn identity(n: usize) -> Self {
        let ids: Vec<NodeId> = (0..n as NodeId).collect();
        NodeRemap {
            to_internal: ids.clone(),
            to_external: ids,
        }
    }

    /// The degree-ordered relabeling of `graph`: internal id 0 is the
    /// node with the highest out-degree, ties broken by ascending
    /// external id (so the ordering — hence the layout — is fully
    /// deterministic).
    pub fn by_descending_out_degree<G: GraphView + ?Sized>(graph: &G) -> Self {
        let n = graph.num_nodes();
        let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
        // Stable sort + ascending-id input order gives the deterministic
        // tie-break for free.
        by_degree.sort_by_key(|&u| std::cmp::Reverse(graph.out_degree(u)));
        let mut to_internal = vec![0 as NodeId; n];
        for (int, &ext) in by_degree.iter().enumerate() {
            to_internal[ext as usize] = int as NodeId;
        }
        NodeRemap {
            to_internal,
            to_external: by_degree,
        }
    }

    /// Number of nodes covered by the mapping.
    pub fn len(&self) -> usize {
        self.to_internal.len()
    }

    /// True when the mapping covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.to_internal.is_empty()
    }

    /// External → internal.
    #[inline]
    pub fn internal(&self, external: NodeId) -> NodeId {
        self.to_internal[external as usize]
    }

    /// Internal → external.
    #[inline]
    pub fn external(&self, internal: NodeId) -> NodeId {
        self.to_external[internal as usize]
    }

    /// Internal ids listed in external-ascending order — the scan order
    /// that makes a dense sweep over a relabeled graph visit nodes in
    /// the same external sequence as an unrelabeled `0..n` loop.
    #[inline]
    pub fn internal_order(&self) -> &[NodeId] {
        &self.to_internal
    }

    /// True when the mapping is the identity (no translation needed).
    pub fn is_identity(&self) -> bool {
        self.to_internal
            .iter()
            .enumerate()
            .all(|(i, &v)| i as NodeId == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    #[test]
    fn round_trips_both_directions() {
        let remap = NodeRemap::from_to_internal(vec![2, 0, 3, 1]);
        for ext in 0..4 {
            assert_eq!(remap.external(remap.internal(ext)), ext);
        }
        for int in 0..4 {
            assert_eq!(remap.internal(remap.external(int)), int);
        }
        assert_eq!(remap.len(), 4);
        assert!(!remap.is_identity());
        assert!(NodeRemap::identity(4).is_identity());
    }

    #[test]
    fn degree_order_puts_hubs_first_with_ascending_tie_break() {
        // out-degrees: 0 -> 1, 1 -> 3, 2 -> 0, 3 -> 1.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (1, 3), (3, 2)]);
        let remap = NodeRemap::by_descending_out_degree(&g);
        // hub 1 first, then the degree-1 tie {0, 3} in ascending external
        // order, then the sink 2.
        assert_eq!(remap.external(0), 1);
        assert_eq!(remap.external(1), 0);
        assert_eq!(remap.external(2), 3);
        assert_eq!(remap.external(3), 2);
        assert_eq!(remap.internal_order(), &[1, 0, 3, 2]);
    }

    #[test]
    fn empty_graph_remap_is_empty() {
        let g = CsrGraph::from_edges(0, &[]);
        let remap = NodeRemap::by_descending_out_degree(&g);
        assert!(remap.is_empty());
        assert!(remap.is_identity());
    }
}
