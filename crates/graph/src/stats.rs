//! Degree statistics and structural summaries.
//!
//! The paper's discussion repeatedly relies on structural properties —
//! average in-degree `d` drives TopSim's `O(d^{2T})` cost, "locally dense"
//! graphs (Wiki-Vote, Twitter) stress the priority heuristics, and power-law
//! in-degree distributions are why randomized PROBE "tends to only visit the
//! nodes that can be reached ... with non-negligible probabilities".
//! [`DegreeStats`] lets experiment harnesses report those properties for the
//! synthetic stand-in datasets.

use crate::view::GraphView;

/// Summary statistics of a graph's degree structure.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Mean in-degree (= mean out-degree = m / n).
    pub mean_degree: f64,
    /// Largest in-degree.
    pub max_in_degree: usize,
    /// Largest out-degree.
    pub max_out_degree: usize,
    /// Number of nodes with zero in-degree (ineligible as query nodes in
    /// the paper's experiments).
    pub zero_in_degree: usize,
    /// Number of nodes with zero out-degree.
    pub zero_out_degree: usize,
    /// Gini coefficient of the in-degree distribution, in `[0, 1)`;
    /// a skew proxy (power-law graphs score high, regular graphs near 0).
    pub in_degree_gini: f64,
}

impl DegreeStats {
    /// Computes statistics in O(n log n).
    pub fn compute<G: GraphView>(graph: &G) -> Self {
        let n = graph.num_nodes();
        let m = graph.num_edges();
        let mut in_degs: Vec<usize> = Vec::with_capacity(n);
        let mut max_out = 0usize;
        let mut zero_in = 0usize;
        let mut zero_out = 0usize;
        for v in graph.nodes() {
            let din = graph.in_degree(v);
            let dout = graph.out_degree(v);
            if din == 0 {
                zero_in += 1;
            }
            if dout == 0 {
                zero_out += 1;
            }
            max_out = max_out.max(dout);
            in_degs.push(din);
        }
        let max_in = in_degs.iter().copied().max().unwrap_or(0);
        DegreeStats {
            num_nodes: n,
            num_edges: m,
            mean_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            max_in_degree: max_in,
            max_out_degree: max_out,
            zero_in_degree: zero_in,
            zero_out_degree: zero_out,
            in_degree_gini: gini(&mut in_degs),
        }
    }

    /// Fraction of nodes eligible as query nodes (nonzero in-degree).
    pub fn query_eligible_fraction(&self) -> f64 {
        if self.num_nodes == 0 {
            return 0.0;
        }
        1.0 - self.zero_in_degree as f64 / self.num_nodes as f64
    }
}

/// Gini coefficient of a non-negative sample; sorts the slice.
fn gini(values: &mut [usize]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    values.sort_unstable();
    let total: f64 = values.iter().map(|&v| v as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    // G = (2 Σ_i i·x_i) / (n Σ x) − (n + 1)/n, with 1-based ranks i.
    let weighted: f64 = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    #[test]
    fn stats_on_star_graph() {
        // 0 <- 1..5: node 0 has in-degree 5, everyone else 0.
        let edges: Vec<(u32, u32)> = (1..=5).map(|u| (u, 0)).collect();
        let g = CsrGraph::from_edges(6, &edges);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.num_nodes, 6);
        assert_eq!(s.num_edges, 5);
        assert_eq!(s.max_in_degree, 5);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.zero_in_degree, 5);
        assert_eq!(s.zero_out_degree, 1);
        assert!((s.query_eligible_fraction() - 1.0 / 6.0).abs() < 1e-12);
        // Extreme concentration => high Gini.
        assert!(s.in_degree_gini > 0.8, "gini = {}", s.in_degree_gini);
    }

    #[test]
    fn stats_on_cycle_are_uniform() {
        let edges: Vec<(u32, u32)> = (0..8).map(|u| (u, (u + 1) % 8)).collect();
        let g = CsrGraph::from_edges(8, &edges);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.mean_degree, 1.0);
        assert_eq!(s.zero_in_degree, 0);
        assert!(s.in_degree_gini.abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.query_eligible_fraction(), 0.0);
    }

    #[test]
    fn gini_handles_all_zero() {
        let mut v = vec![0, 0, 0];
        assert_eq!(gini(&mut v), 0.0);
    }
}
