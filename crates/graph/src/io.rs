//! Graph readers and writers.
//!
//! Two formats:
//!
//! * **Text edge lists** — the SNAP-style format of the paper's datasets:
//!   one `source target` pair per whitespace-separated line, `#` comments.
//!   Node ids may be arbitrary `u64` values; they are densified to `0..n`.
//! * **Binary** — a compact little-endian format (`PSIM` magic, node/edge
//!   counts, then `u32` pairs), used to cache generated datasets between
//!   benchmark runs.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::hash::FxHashMap;
use crate::view::GraphView;
use crate::{CsrGraph, Edge, GraphError, NodeId};

/// Magic bytes that open every binary graph file.
const MAGIC: &[u8; 4] = b"PSIM";
/// Format version, bumped on layout changes.
const VERSION: u32 = 1;

/// Little-endian append helpers (the `bytes::BufMut` subset this file
/// needs, implemented on `Vec<u8>` so the format has no external deps).
trait PutExt {
    fn put_slice(&mut self, bytes: &[u8]);
    fn put_u32_le(&mut self, value: u32);
    fn put_u64_le(&mut self, value: u64);
}

impl PutExt for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
    #[inline]
    fn put_u32_le(&mut self, value: u32) {
        self.extend_from_slice(&value.to_le_bytes());
    }
    #[inline]
    fn put_u64_le(&mut self, value: u64) {
        self.extend_from_slice(&value.to_le_bytes());
    }
}

/// Little-endian consuming reads over a byte slice (the `bytes::Buf`
/// subset this file needs). Each `get_*` advances the slice; callers
/// check [`TakeExt::remaining`] before reading.
trait TakeExt {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
}

impl TakeExt for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }
    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }
}

/// Reads a whitespace-separated edge list, densifying arbitrary `u64` node
/// ids to `0..n` in first-appearance order.
///
/// Lines starting with `#` or `%` are comments; blank lines are skipped.
/// Returns the graph together with the original labels (index = dense id).
pub fn read_edge_list_text<R: BufRead>(reader: R) -> Result<(CsrGraph, Vec<u64>), GraphError> {
    let mut labels: Vec<u64> = Vec::new();
    let mut dense: FxHashMap<u64, NodeId> = FxHashMap::default();
    let mut edges: Vec<Edge> = Vec::new();
    let mut intern = |raw: u64, labels: &mut Vec<u64>| -> NodeId {
        *dense.entry(raw).or_insert_with(|| {
            let id = labels.len() as NodeId;
            labels.push(raw);
            id
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64, GraphError> {
            tok.and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| GraphError::Parse {
                    line: lineno + 1,
                    content: trimmed.to_string(),
                })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let du = intern(u, &mut labels);
        let dv = intern(v, &mut labels);
        edges.push((du, dv));
    }
    Ok((CsrGraph::from_edges(labels.len(), &edges), labels))
}

/// Reads a text edge list from a file path. See [`read_edge_list_text`].
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<(CsrGraph, Vec<u64>), GraphError> {
    let file = File::open(path)?;
    read_edge_list_text(BufReader::new(file))
}

/// Writes a graph as a text edge list (`u v` per line, dense ids).
pub fn write_edge_list_text<W: Write, G: GraphView>(
    mut writer: W,
    graph: &G,
) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# probesim edge list: n={} m={}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for u in graph.nodes() {
        for &v in graph.out_neighbors(u) {
            writeln!(writer, "{u}\t{v}")?;
        }
    }
    Ok(())
}

/// Serializes a graph into the binary format.
pub fn write_binary<W: Write, G: GraphView>(mut writer: W, graph: &G) -> Result<(), GraphError> {
    let mut header = Vec::with_capacity(4 + 4 + 8 + 8);
    header.put_slice(MAGIC);
    header.put_u32_le(VERSION);
    header.put_u64_le(graph.num_nodes() as u64);
    header.put_u64_le(graph.num_edges() as u64);
    writer.write_all(&header)?;
    let mut buf = Vec::with_capacity(8 * 1024);
    for u in graph.nodes() {
        for &v in graph.out_neighbors(u) {
            buf.put_u32_le(u);
            buf.put_u32_le(v);
            if buf.len() >= 8 * 1024 {
                writer.write_all(&buf)?;
                buf.clear();
            }
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Deserializes a graph from the binary format.
pub fn read_binary<R: Read>(mut reader: R) -> Result<CsrGraph, GraphError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut cur = &raw[..];
    if cur.remaining() < 24 {
        return Err(GraphError::Corrupt("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    cur.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Corrupt(format!("bad magic {magic:?}")));
    }
    let version = cur.get_u32_le();
    if version != VERSION {
        return Err(GraphError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let n = cur.get_u64_le() as usize;
    let m = cur.get_u64_le() as usize;
    // checked_mul: a corrupt header with a huge edge count must become a
    // Corrupt error, not an overflow panic (or a wrapped-to-0 size check
    // in release builds followed by a capacity-overflow abort).
    let edge_bytes = m
        .checked_mul(8)
        .ok_or_else(|| GraphError::Corrupt(format!("edge count {m} overflows the format")))?;
    if cur.remaining() < edge_bytes {
        return Err(GraphError::Corrupt(format!(
            "expected {edge_bytes} edge bytes, found {}",
            cur.remaining()
        )));
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = cur.get_u32_le();
        let v = cur.get_u32_le();
        if u as usize >= n {
            return Err(GraphError::NodeOutOfRange {
                node: u as u64,
                num_nodes: n,
            });
        }
        if v as usize >= n {
            return Err(GraphError::NodeOutOfRange {
                node: v as u64,
                num_nodes: n,
            });
        }
        edges.push((u, v));
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Writes the binary format to a file path.
pub fn write_binary_file<P: AsRef<Path>, G: GraphView>(
    path: P,
    graph: &G,
) -> Result<(), GraphError> {
    let file = File::create(path)?;
    write_binary(BufWriter::new(file), graph)
}

/// Reads the binary format from a file path.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    let file = File::open(path)?;
    read_binary(BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn text_round_trip() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (3, 0)]);
        let mut out = Vec::new();
        write_edge_list_text(&mut out, &g).unwrap();
        let (g2, labels) = read_edge_list_text(Cursor::new(out)).unwrap();
        assert_eq!(g2.num_edges(), 3);
        // Ids are re-densified in first-appearance order; edge multiset is
        // preserved up to relabeling.
        assert_eq!(labels.len(), 4);
        assert_eq!(g2.num_nodes(), 4);
    }

    #[test]
    fn text_parses_comments_and_blank_lines() {
        let text = "# header\n% also comment\n\n10 20\n20 30\n";
        let (g, labels) = read_edge_list_text(Cursor::new(text)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(labels, vec![10, 20, 30]);
        assert!(g.has_edge(0, 1)); // 10 -> 20
        assert!(g.has_edge(1, 2)); // 20 -> 30
    }

    #[test]
    fn text_rejects_garbage() {
        let text = "1 2\nnot an edge\n";
        let err = read_edge_list_text(Cursor::new(text)).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn text_rejects_missing_target() {
        let err = read_edge_list_text(Cursor::new("5\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn binary_round_trip() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (4, 0), (2, 2)]);
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        let g2 = read_binary(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(Cursor::new(b"NOPE00000000000000000000000".to_vec())).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        buf.truncate(buf.len() - 4);
        let err = read_binary(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)));
    }

    #[test]
    fn binary_rejects_overflowing_edge_count() {
        // Header claims m = 2^62 edges; the size check must fail cleanly
        // instead of wrapping.
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(1);
        buf.put_u64_le(1u64 << 62);
        let err = read_binary(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn binary_rejects_out_of_range_node() {
        // Hand-craft a file claiming n=1 but containing node id 7.
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(1);
        buf.put_u64_le(1);
        buf.put_u32_le(0);
        buf.put_u32_le(7);
        let err = read_binary(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 7, .. }));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("probesim_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = CsrGraph::from_edges(3, &[(0, 1), (2, 1)]);
        write_binary_file(&path, &g).unwrap();
        let g2 = read_binary_file(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
