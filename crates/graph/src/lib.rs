#![warn(missing_docs)]
//! # probesim-graph
//!
//! Graph substrate for the ProbeSim SimRank library.
//!
//! This crate provides everything the SimRank algorithms need from a graph:
//!
//! * [`CsrGraph`] — an immutable, cache-friendly compressed-sparse-row graph
//!   storing *both* out-adjacency and in-adjacency (SimRank walks follow
//!   in-edges; PROBE traversals follow out-edges).
//! * [`DynamicGraph`] — a mutable adjacency-list graph supporting edge
//!   insertion and deletion. ProbeSim is index-free, so queries can run
//!   directly against a live [`DynamicGraph`]; a [`CsrGraph`] snapshot can be
//!   taken at any time for maximum query throughput.
//! * [`GraphView`] — the trait both implement; every algorithm in the
//!   workspace is generic over it.
//! * [`GraphBuilder`] — edge-list ingestion with de-duplication, self-loop
//!   removal and undirected symmetrization.
//! * [`io`] — plain-text and binary edge-list readers/writers.
//! * [`toy`] — the 8-node running-example graph of the paper (Figure 1),
//!   reverse-engineered from the worked PROBE example and validated against
//!   Table 2.
//! * [`hash`] — an FxHash-style hasher used throughout the workspace
//!   (integer-keyed hash maps are on every hot path; SipHash would dominate
//!   the profile).
//!
//! ## Conventions
//!
//! Nodes are dense `u32` identifiers in `0..n`. An edge `(u, v)` is directed
//! from `u` to `v`: `u ∈ I(v)` (u is an in-neighbor of v) and `v ∈ O(u)`.

pub mod builder;
pub mod csr;
pub mod dynamic;
pub mod error;
pub mod hash;
pub mod io;
pub mod stats;
pub mod toy;
pub mod view;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use dynamic::{DynamicGraph, GraphUpdate};
pub use error::GraphError;
pub use hash::{FxHashMap, FxHashSet};
pub use stats::DegreeStats;
pub use view::GraphView;

/// Dense node identifier. Graphs in this workspace address nodes as
/// `0..n`; `u32` keeps adjacency arrays compact (the paper's largest graph
/// has 68M nodes, well within `u32`).
pub type NodeId = u32;

/// A directed edge `(source, target)`; the walk-generating algorithms treat
/// `source` as an in-neighbor of `target`.
pub type Edge = (NodeId, NodeId);
