#![warn(missing_docs)]
//! # probesim-graph
//!
//! Graph substrate for the ProbeSim SimRank library.
//!
//! This crate provides everything the SimRank algorithms need from a graph:
//!
//! * [`CsrGraph`] — an immutable, cache-friendly compressed-sparse-row graph
//!   storing *both* out-adjacency and in-adjacency (SimRank walks follow
//!   in-edges; PROBE traversals follow out-edges).
//! * [`DynamicGraph`] — a mutable adjacency-list graph supporting edge
//!   insertion and deletion. ProbeSim is index-free, so queries can run
//!   directly against a live [`DynamicGraph`]; a [`CsrGraph`] snapshot can be
//!   taken at any time for maximum query throughput.
//! * [`GraphStore`] — the versioned store: an immutable CSR base plus a
//!   per-node copy-on-write [`OverlayGraph`], publishing `Arc`-cheap
//!   [`GraphSnapshot`]s that reader threads query while the single
//!   writer keeps applying updates, with threshold-driven compaction
//!   back into a fresh CSR.
//! * [`GraphView`] — the trait both implement; every algorithm in the
//!   workspace is generic over it.
//! * [`GraphBuilder`] — edge-list ingestion with de-duplication, self-loop
//!   removal and undirected symmetrization.
//! * [`io`] — plain-text and binary edge-list readers/writers.
//! * [`toy`] — the 8-node running-example graph of the paper (Figure 1),
//!   reverse-engineered from the worked PROBE example and validated against
//!   Table 2.
//! * [`hash`] — an FxHash-style hasher used throughout the workspace
//!   (integer-keyed hash maps are on every hot path; SipHash would dominate
//!   the profile).
//!
//! ## Storage tiers
//!
//! Three representations cover the read/write spectrum; all implement
//! [`GraphView`], so every algorithm runs on any of them unchanged and
//! returns bit-for-bit identical estimates for identical edge sets:
//!
//! | Tier | Mutability | Concurrency | Use when |
//! |---|---|---|---|
//! | [`CsrGraph`] | immutable | share `&` freely | static workloads, maximum query throughput |
//! | [`DynamicGraph`] | `&mut` insert/remove | single thread, alternate updates and queries | simple scripts, growing node sets (`add_nodes`) |
//! | [`GraphStore`] | single writer | readers hold [`GraphSnapshot`]s, never block | serving queries *while* updates stream in |
//!
//! The store's overlay keeps untouched nodes on the base's CSR slices
//! (cold path: one emptiness check), materializes a touched node's
//! adjacency as its own sorted vec, and folds back into a fresh CSR when
//! the touched fraction crosses the [`CompactionPolicy`] threshold —
//! without invalidating any published snapshot.
//!
//! ## Conventions
//!
//! Nodes are dense `u32` identifiers in `0..n`. An edge `(u, v)` is directed
//! from `u` to `v`: `u ∈ I(v)` (u is an in-neighbor of v) and `v ∈ O(u)`.

pub mod builder;
pub mod csr;
pub mod dynamic;
pub mod error;
pub mod hash;
pub mod io;
pub mod overlay;
pub mod relabel;
pub mod stats;
pub mod store;
pub mod toy;
pub mod view;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use dynamic::{DynamicGraph, GraphUpdate};
pub use error::GraphError;
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use overlay::OverlayGraph;
pub use relabel::NodeRemap;
pub use stats::DegreeStats;
pub use store::{Commit, CompactionPolicy, GraphSnapshot, GraphStore, MutationObserver};
pub use view::GraphView;

/// Dense node identifier. Graphs in this workspace address nodes as
/// `0..n`; `u32` keeps adjacency arrays compact (the paper's largest graph
/// has 68M nodes, well within `u32`).
pub type NodeId = u32;

/// A directed edge `(source, target)`; the walk-generating algorithms treat
/// `source` as an in-neighbor of `target`.
pub type Edge = (NodeId, NodeId);
