//! Immutable compressed-sparse-row graph.
//!
//! [`CsrGraph`] stores both directions of adjacency: SimRank's √c-walks
//! follow *in*-edges, while ProbeSim's PROBE traversal and TSF's reversed
//! one-way graphs follow *out*-edges, so both must be O(1)-indexable.
//! Neighbor lists are sorted, enabling `has_edge` by binary search and
//! deterministic iteration order.
//!
//! A CSR can optionally be built **degree-ordered**
//! ([`CsrGraph::degree_ordered_from`]): nodes are relabeled by
//! descending out-degree behind a [`NodeRemap`] so hub rows pack the
//! front of the arrays for locality, while rows keep their neighbors in
//! **external-ascending order** — the invariant that makes relabeled
//! traversal bit-identical to unrelabeled (see [`crate::relabel`]).

use std::sync::Arc;

use crate::relabel::NodeRemap;
use crate::view::GraphView;
use crate::{Edge, NodeId};

/// An immutable directed graph in CSR form with both out- and in-adjacency.
///
/// Construction is O(n + m) via counting sort. Memory is
/// `2m · 4 bytes + 2(n+1) · 8 bytes` — an index-free footprint, matching the
/// paper's point that ProbeSim "does not increase the size of an original
/// graph".
///
/// # Example
///
/// ```
/// use probesim_graph::{CsrGraph, GraphView};
///
/// // a -> b, a -> c, c -> b
/// let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (2, 1)]);
/// assert_eq!(g.out_neighbors(0), &[1, 2]);
/// assert_eq!(g.in_neighbors(1), &[0, 2]);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(1, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    num_nodes: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
    /// When present, node ids in the arrays are *internal* (degree-
    /// ordered) labels and this maps them back to the caller's external
    /// ids. `None` means the two spaces coincide.
    remap: Option<Arc<NodeRemap>>,
}

impl CsrGraph {
    /// Builds a graph with `n` nodes from a directed edge list.
    ///
    /// Edges are taken as-is (no de-duplication; use
    /// [`crate::GraphBuilder`] for cleaning). Panics if an endpoint is
    /// `>= n`.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        Self::from_edge_iter(n, edges.iter().copied())
    }

    /// Builds a graph with `n` nodes from any re-iterable edge source,
    /// without materializing an intermediate `Vec<Edge>` — the
    /// constructor behind [`CsrGraph::from_edges`] and
    /// [`crate::DynamicGraph::snapshot`].
    ///
    /// The iterator is consumed twice (degree-counting pass, then fill
    /// pass), so it must be `Clone` and yield the same edges both times.
    /// Panics if an endpoint is `>= n`.
    pub fn from_edge_iter<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = Edge>,
        I::IntoIter: Clone,
    {
        Self::from_external_edge_iter(n, edges, None)
    }

    /// Builds a degree-ordered CSR from any graph view whose ids are
    /// external (i.e. the view itself carries no remap): nodes are
    /// relabeled by descending out-degree behind a [`NodeRemap`], so hub
    /// adjacency packs the front of the arrays. Query callers keep using
    /// external ids; [`crate::relabel`] explains the boundary.
    pub fn degree_ordered_from<G: GraphView + ?Sized>(graph: &G) -> Self {
        debug_assert!(
            graph.node_remap().is_none(),
            "invariant: degree_ordered_from takes an external-id view"
        );
        let remap = Arc::new(NodeRemap::by_descending_out_degree(graph));
        Self::from_external_edge_iter(graph.num_nodes(), graph.edges_iter(), Some(remap))
    }

    /// The core two-pass counting-sort builder. `edges` yields
    /// **external** endpoints; when `remap` is present they are stored
    /// under internal labels, with every adjacency run kept in
    /// external-ascending order (the bit-identity invariant of
    /// [`crate::relabel`]). The iterator is consumed twice.
    pub(crate) fn from_external_edge_iter<I>(
        n: usize,
        edges: I,
        remap: Option<Arc<NodeRemap>>,
    ) -> Self
    where
        I: IntoIterator<Item = Edge>,
        I::IntoIter: Clone,
    {
        let edges = edges.into_iter();
        let int = |x: NodeId| match &remap {
            Some(r) => r.internal(x),
            None => x,
        };
        let mut m = 0usize;
        let mut out_offsets = vec![0usize; n + 1];
        let mut in_offsets = vec![0usize; n + 1];
        for (u, v) in edges.clone() {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u}, {v}) out of bounds for n = {n}"
            );
            out_offsets[int(u) as usize + 1] += 1;
            in_offsets[int(v) as usize + 1] += 1;
            m += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut out_targets = vec![0 as NodeId; m];
        let mut in_sources = vec![0 as NodeId; m];
        // Cursor copies so we can fill in one pass.
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for (u, v) in edges {
            let (iu, iv) = (int(u) as usize, int(v) as usize);
            out_targets[out_cursor[iu]] = int(v);
            out_cursor[iu] += 1;
            in_sources[in_cursor[iv]] = int(u);
            in_cursor[iv] += 1;
        }
        // Sort each adjacency run for determinism and binary-search
        // lookups. Relabeled runs sort by *external* key: traversal is
        // positional, so preserving the external order of every row is
        // what keeps relabeled execution bit-identical.
        for v in 0..n {
            let out_run = &mut out_targets[out_offsets[v]..out_offsets[v + 1]];
            let in_run = &mut in_sources[in_offsets[v]..in_offsets[v + 1]];
            match &remap {
                Some(r) => {
                    out_run.sort_unstable_by_key(|&t| r.external(t));
                    in_run.sort_unstable_by_key(|&s| r.external(s));
                }
                None => {
                    out_run.sort_unstable();
                    in_run.sort_unstable();
                }
            }
        }
        CsrGraph {
            num_nodes: n,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            remap,
        }
    }

    /// True when the directed edge `u -> v` exists (ids in this graph's
    /// storage space). O(log deg(u)); relabeled rows binary-search by
    /// external key since that is their sort order.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match &self.remap {
            None => self.out_neighbors(u).binary_search(&v).is_ok(),
            Some(r) => self
                .out_neighbors(u)
                .binary_search_by_key(&r.external(v), |&t| r.external(t))
                .is_ok(),
        }
    }

    /// All edges in `(source, target)` order, sorted by source then target.
    pub fn edges(&self) -> Vec<Edge> {
        self.edges_iter().collect()
    }

    /// Iterates all edges in `(source, target)` order (sorted by source
    /// then target) without allocating — the non-allocating counterpart
    /// of [`CsrGraph::edges`].
    pub fn edges_iter(&self) -> impl Iterator<Item = Edge> + Clone + '_ {
        (0..self.num_nodes as NodeId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// The transpose graph (every edge reversed). O(n + m); reuses the
    /// already-sorted adjacency arrays by swapping directions (a remap,
    /// if any, is direction-agnostic and carries over).
    pub fn transpose(&self) -> CsrGraph {
        CsrGraph {
            num_nodes: self.num_nodes,
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
            remap: self.remap.clone(),
        }
    }

    /// Iterates all edges with **external** endpoints. For unrelabeled
    /// graphs this is [`CsrGraph::edges_iter`]; for relabeled graphs the
    /// endpoints are translated back, yielding the edge set the caller
    /// originally supplied (grouped by internal source — not globally
    /// sorted). Used by store compaction to rebuild without losing the
    /// external id space.
    pub fn external_edges_iter(&self) -> impl Iterator<Item = Edge> + Clone + '_ {
        self.edges_iter().map(move |(u, v)| match &self.remap {
            Some(r) => (r.external(u), r.external(v)),
            None => (u, v),
        })
    }

    /// Approximate resident memory of the structure in bytes. Used by the
    /// Table 4 space-overhead accounting.
    pub fn memory_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>()
            + self.in_offsets.len() * std::mem::size_of::<usize>()
            + self.out_targets.len() * std::mem::size_of::<NodeId>()
            + self.in_sources.len() * std::mem::size_of::<NodeId>()
            + self
                .remap
                .as_ref()
                .map_or(0, |r| 2 * r.len() * std::mem::size_of::<NodeId>())
    }
}

impl GraphView for CsrGraph {
    /// A CSR graph is immutable after construction: its node count can
    /// never change while any borrow of it is alive.
    const STABLE_NODE_COUNT: bool = true;

    #[inline]
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    #[inline]
    fn node_remap(&self) -> Option<&Arc<NodeRemap>> {
        self.remap.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn sizes() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn adjacency_is_sorted_and_correct() {
        let g = CsrGraph::from_edges(4, &[(0, 2), (0, 1), (3, 1), (2, 1)]);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(1), &[0, 2, 3]);
        assert_eq!(g.in_neighbors(0), &[] as &[NodeId]);
        assert_eq!(g.out_neighbors(1), &[] as &[NodeId]);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
        assert!(!g.has_in_edges(0));
        assert!(g.has_in_edges(3));
    }

    #[test]
    fn has_edge_lookup() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(3, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_round_trip() {
        let edges = vec![(0, 1), (0, 2), (1, 3), (2, 3)];
        let g = CsrGraph::from_edges(4, &edges);
        assert_eq!(g.edges(), edges);
        let g2 = CsrGraph::from_edges(4, &g.edges());
        assert_eq!(g, g2);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.out_neighbors(3), &[1, 2]);
        assert_eq!(t.in_neighbors(1), &[3]);
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn parallel_edges_preserved() {
        // CSR itself is permissive; cleaning lives in GraphBuilder.
        let g = CsrGraph::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        let g = CsrGraph::from_edges(5, &[]);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.in_neighbors(4), &[] as &[NodeId]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn degree_ordered_rows_keep_external_order() {
        // out-degrees: 0 -> 1, 1 -> 3, 2 -> 0, 3 -> 2; hub 1 becomes
        // internal 0, then 3, then 0, then 2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (1, 3), (3, 2), (3, 0)]);
        let d = CsrGraph::degree_ordered_from(&g);
        let remap = d
            .node_remap()
            .expect("degree order carries a remap")
            .clone();
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.num_edges(), 6);
        for ext in 0..4u32 {
            // Each relabeled row is the unrelabeled row mapped
            // elementwise — same (external) order, so positional
            // traversal is unchanged.
            let expect_out: Vec<NodeId> = g
                .out_neighbors(ext)
                .iter()
                .map(|&v| remap.internal(v))
                .collect();
            assert_eq!(d.out_neighbors(remap.internal(ext)), expect_out);
            let expect_in: Vec<NodeId> = g
                .in_neighbors(ext)
                .iter()
                .map(|&v| remap.internal(v))
                .collect();
            assert_eq!(d.in_neighbors(remap.internal(ext)), expect_in);
        }
        // has_edge works in internal space despite external-key row order.
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(
                    d.has_edge(remap.internal(u), remap.internal(v)),
                    g.has_edge(u, v),
                    "({u}, {v})"
                );
            }
        }
        // External edge iteration recovers the original edge set.
        let mut ext_edges: Vec<Edge> = d.external_edges_iter().collect();
        ext_edges.sort_unstable();
        assert_eq!(ext_edges, g.edges());
    }

    #[test]
    fn memory_accounting_scales_with_m() {
        let small = CsrGraph::from_edges(10, &[(0, 1)]);
        let big = CsrGraph::from_edges(10, &(0..9).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
