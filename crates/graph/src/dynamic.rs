//! Mutable adjacency-list graph with edge insertion and deletion.
//!
//! ProbeSim's headline property is being *index-free*: a query needs nothing
//! but the current graph, so it "can naturally support real-time SimRank
//! queries on graphs with frequent updates". [`DynamicGraph`] is that live
//! graph: `insert_edge` / `remove_edge` are O(deg) (sorted-vector adjacency),
//! and all query algorithms run against it directly through [`GraphView`].
//!
//! [`DynamicGraph::snapshot`] produces an immutable [`CsrGraph`] when a
//! read-optimized copy is preferred (e.g. for long benchmark runs).
//!
//! `DynamicGraph` is the **non-concurrent convenience tier**: updates and
//! queries must alternate on one thread (`insert_edge` takes `&mut
//! self`). A service that answers queries *while* updates stream in
//! should use [`crate::GraphStore`], whose published
//! [`crate::GraphSnapshot`]s let reader threads proceed without ever
//! blocking on the writer.

use crate::view::GraphView;
use crate::{CsrGraph, Edge, NodeId};

/// One edge-level mutation of a [`DynamicGraph`].
///
/// Update streams — recorded workloads, the sliding-window generators in
/// `probesim-datasets`, benchmark scenarios — are sequences of these
/// events, applied with [`DynamicGraph::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphUpdate {
    /// Insert the directed edge `u -> v`.
    Insert {
        /// Edge source.
        u: NodeId,
        /// Edge target.
        v: NodeId,
    },
    /// Remove the directed edge `u -> v`.
    Remove {
        /// Edge source.
        u: NodeId,
        /// Edge target.
        v: NodeId,
    },
}

impl GraphUpdate {
    /// The `(source, target)` endpoints of the affected edge.
    #[inline]
    pub fn edge(self) -> Edge {
        match self {
            GraphUpdate::Insert { u, v } | GraphUpdate::Remove { u, v } => (u, v),
        }
    }

    /// True for [`GraphUpdate::Insert`].
    #[inline]
    pub fn is_insert(self) -> bool {
        matches!(self, GraphUpdate::Insert { .. })
    }
}

/// A directed graph under edge-level updates.
///
/// Adjacency lists are kept sorted so membership checks are O(log deg) and
/// iteration order is deterministic — the same contract as [`CsrGraph`].
///
/// # Example
///
/// ```
/// use probesim_graph::{DynamicGraph, GraphView};
///
/// let mut g = DynamicGraph::new(3);
/// assert!(g.insert_edge(0, 1));
/// assert!(g.insert_edge(2, 1));
/// assert!(!g.insert_edge(0, 1)); // already present
/// assert_eq!(g.in_neighbors(1), &[0, 2]);
/// assert!(g.remove_edge(0, 1));
/// assert_eq!(g.in_neighbors(1), &[2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    out: Vec<Vec<NodeId>>,
    inn: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl DynamicGraph {
    /// An empty graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        DynamicGraph {
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds from an edge list (edges taken as-is, like
    /// [`CsrGraph::from_edges`]; duplicates are ignored).
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut g = DynamicGraph::new(n);
        for &(u, v) in edges {
            g.insert_edge(u, v);
        }
        g
    }

    /// Inserts the directed edge `u -> v`. Returns `false` if it already
    /// existed (the graph stays simple). Panics on out-of-range endpoints.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let n = self.num_nodes();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of bounds for n = {n}"
        );
        let out_u = &mut self.out[u as usize];
        match out_u.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                out_u.insert(pos, v);
                let in_v = &mut self.inn[v as usize];
                let ipos = in_v.binary_search(&u).unwrap_err();
                in_v.insert(ipos, u);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Removes the directed edge `u -> v`. Returns `false` if absent.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let n = self.num_nodes();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of bounds for n = {n}"
        );
        let out_u = &mut self.out[u as usize];
        match out_u.binary_search(&v) {
            Ok(pos) => {
                out_u.remove(pos);
                let in_v = &mut self.inn[v as usize];
                let ipos = in_v
                    .binary_search(&u)
                    .expect("invariant: in/out adjacency stay synchronized");
                in_v.remove(ipos);
                self.num_edges -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// True when the directed edge exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out[u as usize].binary_search(&v).is_ok()
    }

    /// Applies one update event. Returns `true` when the event changed the
    /// graph (the edge was actually inserted / removed).
    pub fn apply(&mut self, update: GraphUpdate) -> bool {
        match update {
            GraphUpdate::Insert { u, v } => self.insert_edge(u, v),
            GraphUpdate::Remove { u, v } => self.remove_edge(u, v),
        }
    }

    /// Applies a sequence of update events, returning how many changed the
    /// graph.
    pub fn apply_all<I: IntoIterator<Item = GraphUpdate>>(&mut self, updates: I) -> usize {
        updates
            .into_iter()
            .filter(|&update| self.apply(update))
            .count()
    }

    /// Iterates the current edges in `(source, target)` order, sorted,
    /// without allocating. [`DynamicGraph::snapshot`], the churn tests and
    /// the benchmark scenario engine rebuild CSR views through this
    /// instead of materializing a throwaway `Vec` per rebuild.
    pub fn edges_iter(&self) -> impl Iterator<Item = Edge> + Clone + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, targets)| targets.iter().map(move |&v| (u as NodeId, v)))
    }

    /// Appends `extra` isolated nodes, returning the id of the first new
    /// node. Supports growing streams where new entities appear over time.
    pub fn add_nodes(&mut self, extra: usize) -> NodeId {
        let first = self.num_nodes() as NodeId;
        self.out.extend((0..extra).map(|_| Vec::new()));
        self.inn.extend((0..extra).map(|_| Vec::new()));
        first
    }

    /// An immutable CSR copy of the current state. Streams the adjacency
    /// straight into the CSR builder — no intermediate edge `Vec`.
    pub fn snapshot(&self) -> CsrGraph {
        CsrGraph::from_edge_iter(self.num_nodes(), self.edges_iter())
    }
}

impl GraphView for DynamicGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.out.len()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.inn[v as usize]
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.out[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut g = DynamicGraph::new(4);
        assert!(g.insert_edge(0, 1));
        assert!(g.insert_edge(0, 2));
        assert!(g.insert_edge(3, 1));
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.in_neighbors(1), &[0, 3]);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.in_neighbors(1), &[3]);
        assert_eq!(g.out_neighbors(0), &[2]);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut g = DynamicGraph::new(2);
        assert!(g.insert_edge(0, 1));
        assert!(!g.insert_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn adjacency_stays_sorted() {
        let mut g = DynamicGraph::new(5);
        for u in [3, 1, 4, 2, 0] {
            g.insert_edge(u, 0);
        }
        assert_eq!(g.in_neighbors(0), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn snapshot_matches_live_graph() {
        let mut g = DynamicGraph::new(4);
        g.insert_edge(0, 1);
        g.insert_edge(1, 2);
        g.insert_edge(2, 3);
        g.remove_edge(1, 2);
        let snap = g.snapshot();
        assert_eq!(snap.num_edges(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(snap.in_neighbors(v), g.in_neighbors(v));
            assert_eq!(snap.out_neighbors(v), g.out_neighbors(v));
        }
    }

    #[test]
    fn add_nodes_grows_graph() {
        let mut g = DynamicGraph::new(2);
        let first = g.add_nodes(3);
        assert_eq!(first, 2);
        assert_eq!(g.num_nodes(), 5);
        assert!(g.insert_edge(4, 0));
    }

    #[test]
    fn from_edges_ignores_duplicates() {
        let g = DynamicGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        let mut g = DynamicGraph::new(1);
        g.insert_edge(0, 1);
    }

    #[test]
    fn apply_mirrors_insert_and_remove() {
        let mut by_hand = DynamicGraph::new(4);
        let mut by_apply = DynamicGraph::new(4);
        let updates = [
            GraphUpdate::Insert { u: 0, v: 1 },
            GraphUpdate::Insert { u: 2, v: 1 },
            GraphUpdate::Insert { u: 0, v: 1 }, // duplicate: no-op
            GraphUpdate::Remove { u: 2, v: 1 },
            GraphUpdate::Remove { u: 3, v: 0 }, // absent: no-op
        ];
        let changed = by_apply.apply_all(updates);
        assert_eq!(changed, 3);
        by_hand.insert_edge(0, 1);
        by_hand.insert_edge(2, 1);
        by_hand.remove_edge(2, 1);
        assert!(by_apply.edges_iter().eq(by_hand.edges_iter()));
        assert_eq!(by_apply.num_edges(), 1);
    }

    #[test]
    fn edges_iter_streams_sorted_without_allocating() {
        let mut g = DynamicGraph::new(5);
        for (u, v) in [(4, 0), (1, 3), (0, 2), (1, 0), (3, 3)] {
            g.insert_edge(u, v);
        }
        g.remove_edge(1, 3);
        let collected: Vec<Edge> = g.edges_iter().collect();
        assert_eq!(collected, vec![(0, 2), (1, 0), (3, 3), (4, 0)]);
        assert_eq!(collected.len(), g.num_edges());
        // The iterator is Clone (CsrGraph::from_edge_iter walks it twice).
        let twice: Vec<Edge> = g.edges_iter().clone().collect();
        assert_eq!(twice, collected);
        assert_eq!(CsrGraph::from_edge_iter(5, g.edges_iter()), g.snapshot());
    }

    #[test]
    fn edges_round_trip_through_from_edges() {
        let mut g = DynamicGraph::new(5);
        for (u, v) in [(4, 0), (1, 3), (0, 2), (1, 0)] {
            g.insert_edge(u, v);
        }
        let rebuilt = DynamicGraph::from_edges(5, &g.edges_iter().collect::<Vec<_>>());
        assert!(rebuilt.edges_iter().eq(g.edges_iter()));
        let update = GraphUpdate::Remove { u: 1, v: 3 };
        assert_eq!(update.edge(), (1, 3));
        assert!(!update.is_insert());
        assert!(GraphUpdate::Insert { u: 0, v: 1 }.is_insert());
    }
}
