//! Per-node copy-on-write adjacency overlay over an immutable CSR base.
//!
//! [`OverlayGraph`] is the mutable half of the versioned store
//! ([`crate::store::GraphStore`]): it owns an `Arc<CsrGraph>` base plus a
//! map of *touched* adjacency lists. A node that has never been mutated
//! resolves straight to the base's CSR slice — the cold path costs one
//! emptiness check and one hash probe, no copying — while the first
//! mutation of a node materializes that one adjacency list as an owned
//! sorted `Vec` (wrapped in an `Arc` so published snapshots can keep the
//! old value alive for free).
//!
//! The copy-on-write discipline is per node *and* per publish: snapshot
//! publication (`freeze`, crate-internal — reached through
//! [`crate::GraphStore::snapshot`]) hands out `Arc` clones of the
//! touched lists, and the next mutation of a frozen list goes through
//! [`Arc::make_mut`], which clones the `Vec` only when a snapshot still
//! holds it. A writer that mutates the same node repeatedly between
//! publishes therefore pays the clone once, then edits in place.

use std::sync::Arc;

use crate::hash::FxHashMap;
use crate::view::GraphView;
use crate::{CsrGraph, NodeId};

/// One materialized adjacency list, shared between the live overlay and
/// any published snapshots.
pub(crate) type AdjArc = Arc<Vec<NodeId>>;

/// The frozen, immutable view of an overlay at publish time: `Arc`
/// clones of every touched list, keyed by node.
pub(crate) type FrozenAdj = FxHashMap<NodeId, AdjArc>;

/// Overlay-or-base adjacency resolution — the one lookup path shared by
/// the live [`OverlayGraph`] and published [`crate::GraphSnapshot`]s, so
/// the two read surfaces cannot drift apart. Cold path (no touched
/// lists) is a single emptiness check straight to the base slice.
#[inline]
pub(crate) fn resolve<'a>(map: &'a FrozenAdj, v: NodeId, base: &'a [NodeId]) -> &'a [NodeId] {
    if map.is_empty() {
        return base;
    }
    match map.get(&v) {
        Some(list) => list,
        None => base,
    }
}

/// A mutable graph represented as an immutable [`CsrGraph`] base plus a
/// per-node copy-on-write delta.
///
/// Adjacency lists (both directions) stay sorted and deduplicated — the
/// same [`GraphView`] contract as [`CsrGraph`] and
/// [`crate::DynamicGraph`] — so every query algorithm runs against an
/// overlay unchanged, and answers are bit-for-bit identical to a
/// from-scratch CSR rebuild of the same edge set.
///
/// The node count is fixed at the base's `n`: the overlay mutates edges,
/// not the vertex set (the growing-stream path stays on
/// [`crate::DynamicGraph::add_nodes`]).
#[derive(Debug, Clone)]
pub struct OverlayGraph {
    base: Arc<CsrGraph>,
    out: FxHashMap<NodeId, AdjArc>,
    inn: FxHashMap<NodeId, AdjArc>,
    num_edges: usize,
}

impl OverlayGraph {
    /// An overlay with no touched nodes over `base`.
    pub fn new(base: Arc<CsrGraph>) -> Self {
        let num_edges = base.num_edges();
        OverlayGraph {
            base,
            out: FxHashMap::default(),
            inn: FxHashMap::default(),
            num_edges,
        }
    }

    /// The immutable base this overlay deltas against.
    pub fn base(&self) -> &Arc<CsrGraph> {
        &self.base
    }

    /// Number of materialized adjacency lists (out-lists + in-lists).
    /// Each is one touched `(node, direction)` pair; an untouched graph
    /// reports 0. The compaction policy thresholds on this against `2n`.
    pub fn touched_lists(&self) -> usize {
        self.out.len() + self.inn.len()
    }

    /// Fraction of the `2n` adjacency lists that have been materialized.
    pub fn touched_fraction(&self) -> f64 {
        let n = self.base.num_nodes();
        if n == 0 {
            0.0
        } else {
            self.touched_lists() as f64 / (2 * n) as f64
        }
    }

    /// The out-adjacency of `u`: the overlay's list if touched, else the
    /// base's CSR slice.
    #[inline]
    pub fn out_slice(&self, u: NodeId) -> &[NodeId] {
        resolve(&self.out, u, self.base.out_neighbors(u))
    }

    /// The in-adjacency of `v`: overlay if touched, else base.
    #[inline]
    pub fn in_slice(&self, v: NodeId) -> &[NodeId] {
        resolve(&self.inn, v, self.base.in_neighbors(v))
    }

    /// The sort key of a stored node id: adjacency lists over a
    /// degree-ordered base are kept in external-ascending order (the
    /// relabeling bit-identity invariant, see [`crate::relabel`]), so
    /// binary searches must compare external ids there.
    #[inline]
    fn sort_key(&self, x: NodeId) -> NodeId {
        match self.base.node_remap() {
            Some(r) => r.external(x),
            None => x,
        }
    }

    /// True when the directed edge `u -> v` exists. O(log deg(u)).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_slice(u)
            .binary_search_by_key(&self.sort_key(v), |&t| self.sort_key(t))
            .is_ok()
    }

    /// Materializes (on first touch) and returns the mutable out-list of
    /// `u`. `Arc::make_mut` clones the `Vec` only when a published
    /// snapshot still shares it.
    fn touch_out(&mut self, u: NodeId) -> &mut Vec<NodeId> {
        let base = &self.base;
        Arc::make_mut(
            self.out
                .entry(u)
                .or_insert_with(|| Arc::new(base.out_neighbors(u).to_vec())),
        )
    }

    /// Same as [`Self::touch_out`] for the in-list of `v`.
    fn touch_in(&mut self, v: NodeId) -> &mut Vec<NodeId> {
        let base = &self.base;
        Arc::make_mut(
            self.inn
                .entry(v)
                .or_insert_with(|| Arc::new(base.in_neighbors(v).to_vec())),
        )
    }

    /// Inserts the directed edge `u -> v`. Returns `false` when it
    /// already existed. Panics on out-of-range endpoints, mirroring
    /// [`crate::DynamicGraph::insert_edge`].
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let n = self.num_nodes();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of bounds for n = {n}"
        );
        // Pre-check so a no-op duplicate insert does not materialize
        // (and permanently touch) the node's adjacency lists. The found
        // position stays valid after touch_out: materialization copies
        // the identical content.
        let (ku, kv) = (self.sort_key(u), self.sort_key(v));
        let pos = match self
            .out_slice(u)
            .binary_search_by_key(&kv, |&t| self.sort_key(t))
        {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        let remap = self.base.node_remap().cloned();
        let key = |x: NodeId| match &remap {
            Some(r) => r.external(x),
            None => x,
        };
        self.touch_out(u).insert(pos, v);
        let in_v = self.touch_in(v);
        let ipos = in_v.binary_search_by_key(&ku, |&s| key(s)).unwrap_err();
        in_v.insert(ipos, u);
        self.num_edges += 1;
        true
    }

    /// Removes the directed edge `u -> v`. Returns `false` when absent.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let n = self.num_nodes();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of bounds for n = {n}"
        );
        let (ku, kv) = (self.sort_key(u), self.sort_key(v));
        let pos = match self
            .out_slice(u)
            .binary_search_by_key(&kv, |&t| self.sort_key(t))
        {
            Err(_) => return false,
            Ok(pos) => pos,
        };
        let remap = self.base.node_remap().cloned();
        let key = |x: NodeId| match &remap {
            Some(r) => r.external(x),
            None => x,
        };
        self.touch_out(u).remove(pos);
        let in_v = self.touch_in(v);
        let ipos = in_v
            .binary_search_by_key(&ku, |&s| key(s))
            .expect("invariant: in/out adjacency stay synchronized");
        in_v.remove(ipos);
        self.num_edges -= 1;
        true
    }

    /// `Arc` clones of the touched lists, for snapshot publication.
    /// O(touched) pointer bumps; no adjacency data is copied.
    pub(crate) fn freeze(&self) -> (FrozenAdj, FrozenAdj) {
        (self.out.clone(), self.inn.clone())
    }
}

impl GraphView for OverlayGraph {
    /// The overlay mutates edges over a fixed base: `num_nodes` is the
    /// base's `n` forever.
    const STABLE_NODE_COUNT: bool = true;

    #[inline]
    fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.in_slice(v)
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.out_slice(v)
    }

    #[inline]
    fn node_remap(&self) -> Option<&Arc<crate::relabel::NodeRemap>> {
        self.base.node_remap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynamicGraph;

    fn base() -> Arc<CsrGraph> {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Arc::new(CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]))
    }

    #[test]
    fn untouched_overlay_is_the_base() {
        let overlay = OverlayGraph::new(base());
        assert_eq!(overlay.num_nodes(), 4);
        assert_eq!(overlay.num_edges(), 4);
        assert_eq!(overlay.out_neighbors(0), &[1, 2]);
        assert_eq!(overlay.in_neighbors(3), &[1, 2]);
        assert_eq!(overlay.touched_lists(), 0);
        assert_eq!(overlay.touched_fraction(), 0.0);
        // The cold path returns the base's own slice, not a copy.
        assert!(std::ptr::eq(
            overlay.out_slice(0).as_ptr(),
            overlay.base().out_neighbors(0).as_ptr()
        ));
    }

    #[test]
    fn noop_updates_do_not_touch_the_overlay() {
        let mut overlay = OverlayGraph::new(base());
        // Duplicate insert of a base edge and removal of an absent edge:
        // neither may materialize an adjacency list.
        assert!(!overlay.insert_edge(0, 1));
        assert!(!overlay.remove_edge(3, 0));
        assert_eq!(overlay.touched_lists(), 0);
        assert_eq!(overlay.num_edges(), 4);
    }

    #[test]
    fn insert_and_remove_stay_sorted_and_counted() {
        let mut overlay = OverlayGraph::new(base());
        assert!(overlay.insert_edge(3, 0));
        assert!(!overlay.insert_edge(3, 0));
        assert!(overlay.insert_edge(3, 1));
        assert_eq!(overlay.num_edges(), 6);
        assert_eq!(overlay.out_neighbors(3), &[0, 1]);
        assert_eq!(overlay.in_neighbors(1), &[0, 3]);
        assert!(overlay.remove_edge(0, 1));
        assert!(!overlay.remove_edge(0, 1));
        assert_eq!(overlay.num_edges(), 5);
        assert_eq!(overlay.in_neighbors(1), &[3]);
        // Untouched node 2 still reads from the base.
        assert_eq!(overlay.out_neighbors(2), &[3]);
        assert_eq!(overlay.touched_lists(), 4); // out(3), in(0), in(1), out(0)
    }

    #[test]
    fn matches_dynamic_graph_under_the_same_updates() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0), (3, 1)];
        let mut overlay = OverlayGraph::new(Arc::new(CsrGraph::from_edges(5, &edges)));
        let mut dynamic = DynamicGraph::from_edges(5, &edges);
        let script = [
            (true, 4, 0),
            (true, 0, 3),
            (false, 1, 2),
            (true, 1, 2),
            (false, 3, 1),
            (true, 2, 4),
        ];
        for (insert, u, v) in script {
            let a = if insert {
                overlay.insert_edge(u, v)
            } else {
                overlay.remove_edge(u, v)
            };
            let b = if insert {
                dynamic.insert_edge(u, v)
            } else {
                dynamic.remove_edge(u, v)
            };
            assert_eq!(a, b, "effect of ({insert}, {u}, {v}) diverged");
        }
        assert_eq!(overlay.num_edges(), dynamic.num_edges());
        for v in dynamic.nodes() {
            assert_eq!(overlay.out_neighbors(v), dynamic.out_neighbors(v));
            assert_eq!(overlay.in_neighbors(v), dynamic.in_neighbors(v));
        }
        assert!(overlay.edges_iter().eq(dynamic.edges_iter()));
    }

    #[test]
    fn frozen_lists_survive_later_mutation() {
        let mut overlay = OverlayGraph::new(base());
        overlay.insert_edge(3, 0);
        let (out, _inn) = overlay.freeze();
        let frozen = out.get(&3).unwrap().clone();
        assert_eq!(frozen.as_slice(), &[0]);
        // Mutating after the freeze clones the shared Vec (make_mut):
        overlay.insert_edge(3, 2);
        assert_eq!(overlay.out_neighbors(3), &[0, 2]);
        assert_eq!(frozen.as_slice(), &[0], "frozen list mutated in place");
        // With the freeze dropped, further edits go in place again.
        drop(frozen);
        drop(out);
        overlay.insert_edge(3, 1);
        assert_eq!(overlay.out_neighbors(3), &[0, 1, 2]);
    }

    #[test]
    fn edges_iter_feeds_csr_rebuild() {
        let mut overlay = OverlayGraph::new(base());
        overlay.insert_edge(3, 0);
        overlay.remove_edge(0, 2);
        let rebuilt = CsrGraph::from_edge_iter(4, overlay.edges_iter());
        assert_eq!(rebuilt.num_edges(), overlay.num_edges());
        for v in overlay.nodes() {
            assert_eq!(rebuilt.out_neighbors(v), overlay.out_neighbors(v));
            assert_eq!(rebuilt.in_neighbors(v), overlay.in_neighbors(v));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        let mut overlay = OverlayGraph::new(base());
        overlay.insert_edge(0, 4);
    }
}
