//! End-to-end fleet properties.
//!
//! The load-bearing one: under a seeded writer stream with a randomly
//! lagging replica, every `AtLeastVersion(v)` response (a) reports a
//! version ≥ v and (b) is bit-identical (`f64::to_bits`) to the same
//! query answered on a scratch store rebuilt from exactly the log
//! prefix the response claims — the log really is the fleet's source of
//! truth, and replication lag is invisible to correctness. A second
//! property drives all three query kinds `Pinned` at the final version
//! against every endpoint and demands bit-exact cross-replica
//! agreement.

use std::time::Duration;

use probesim_core::{ProbeSimConfig, Query, QueryOutput};
use probesim_fleet::{Fleet, FleetError, LogRecord};
use probesim_graph::{CsrGraph, GraphStore, GraphUpdate, GraphView, NodeId};
use probesim_service::{Consistency, Request, ServiceBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 20;
const DECAY: f64 = 0.36;

/// A recorded read to re-check against the log: (answered version,
/// query, bit-exact ranking).
type Check = (u64, Query, Vec<(NodeId, u64)>);

fn config(seed: u64) -> ProbeSimConfig {
    ProbeSimConfig::new(DECAY, 0.1, 0.01).with_seed(seed)
}

fn base_graph(rng: &mut StdRng) -> (CsrGraph, Vec<(NodeId, NodeId)>) {
    let mut edges = Vec::new();
    for u in 0..N as NodeId {
        let out = 1 + rng.gen_range(0usize..3);
        for _ in 0..out {
            let v = rng.gen_range(0..N as NodeId);
            if v != u {
                edges.push((u, v));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    (CsrGraph::from_edges(N, &edges), edges)
}

fn random_update(rng: &mut StdRng) -> GraphUpdate {
    let u = rng.gen_range(0..N as NodeId);
    let mut v = rng.gen_range(0..N as NodeId);
    if v == u {
        v = (v + 1) % N as NodeId;
    }
    if rng.gen::<f64>() < 0.6 {
        GraphUpdate::Insert { u, v }
    } else {
        GraphUpdate::Remove { u, v }
    }
}

fn query_kind(rng: &mut StdRng) -> Query {
    let node = rng.gen_range(0..N as NodeId);
    match rng.gen_range(0u8..3) {
        0 => Query::SingleSource { node },
        1 => Query::TopK { node, k: 5 },
        _ => Query::Threshold { node, tau: 0.05 },
    }
}

fn ranking_bits(output: &QueryOutput) -> Vec<(NodeId, u64)> {
    output
        .ranking()
        .iter()
        .map(|&(node, score)| (node, score.to_bits()))
        .collect()
}

/// Replays `records` with `lsn <= version` onto a copy of the base
/// graph and answers `query` on the result with a fresh, identically
/// seeded service.
fn scratch_answer(
    base_edges: &[(NodeId, NodeId)],
    records: &[LogRecord],
    version: u64,
    query: Query,
    seed: u64,
) -> Vec<(NodeId, u64)> {
    let mut store = GraphStore::from_csr(CsrGraph::from_edges(N, base_edges));
    for record in records.iter().filter(|r| r.lsn <= version) {
        assert!(
            store.commit(record.update).was_effective(),
            "log records are effective by construction"
        );
    }
    assert_eq!(store.version(), version, "log prefix rebuilds the version");
    let service = ServiceBuilder::new(config(seed)).workers(1).build(store);
    let response = service
        .call(Request::new(query))
        .expect("scratch service answers");
    assert_eq!(response.version, version);
    ranking_bits(&response.output)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Read-your-writes against lagging replicas, checked against a
    /// from-the-log scratch rebuild.
    #[test]
    fn at_least_version_reads_match_the_log_prefix(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (base, base_edges) = base_graph(&mut rng);
        let fleet = Fleet::builder(config(seed))
            .replicas(3)
            .workers(1)
            .retained_versions(16)
            // One replica lags on every applied record; the router must
            // route around it (or wait it out) without ever serving a
            // stale read.
            .lag(1, Duration::from_millis(2))
            .build(base);

        let mut checks: Vec<Check> = Vec::new();
        for round in 0..32 {
            let commit = fleet.commit(random_update(&mut rng));
            if round % 4 == 0 {
                // Read your own write: the response may never be older
                // than the commit token just returned.
                let query = query_kind(&mut rng);
                let response = fleet
                    .call(
                        Request::new(query)
                            .with_consistency(Consistency::AtLeastVersion(commit.version))
                            .with_deadline(Duration::from_secs(20)),
                    )
                    .expect("a caught-up replica answers within the deadline");
                prop_assert!(
                    response.version >= commit.version,
                    "AtLeastVersion({}) answered at {}",
                    commit.version,
                    response.version
                );
                checks.push((response.version, query, ranking_bits(&response.output)));
            }
        }

        let final_version = fleet.version();
        prop_assert_eq!(fleet.log().last_lsn(), final_version);
        prop_assert!(fleet.wait_for_replication(final_version, Duration::from_secs(30)));

        // Every response must equal the scratch rebuild of the log
        // prefix it claims, bit for bit.
        let records = fleet.log().records_from(1);
        for (version, query, bits) in checks {
            let scratch = scratch_answer(&base_edges, &records, version, query, seed);
            prop_assert_eq!(
                &bits, &scratch,
                "response at version {} diverged from its log prefix", version
            );
        }
    }

    /// Any two endpoints at the same version agree bit-exactly on all
    /// three query kinds.
    #[test]
    fn replicas_agree_bit_exactly_at_equal_versions(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (base, _) = base_graph(&mut rng);
        let fleet = Fleet::builder(config(seed))
            .replicas(3)
            .workers(1)
            .retained_versions(64)
            .lag(2, Duration::from_millis(1))
            .build(base);

        for _ in 0..24 {
            fleet.commit(random_update(&mut rng));
        }
        let version = fleet.version();
        prop_assert!(fleet.wait_for_replication(version, Duration::from_secs(30)));

        let node = rng.gen_range(0..N as NodeId);
        for query in [
            Query::SingleSource { node },
            Query::TopK { node, k: 5 },
            Query::Threshold { node, tau: 0.05 },
        ] {
            let request = Request::new(query).with_consistency(Consistency::Pinned(version));
            let reference = fleet
                .primary()
                .call(request)
                .expect("the primary retains its newest version");
            let reference_bits = ranking_bits(&reference.output);
            prop_assert_eq!(reference.version, version);
            for replica in fleet.replicas() {
                let response = replica
                    .service()
                    .call(request)
                    .expect("a caught-up replica retains its newest version");
                prop_assert_eq!(response.version, version);
                prop_assert_eq!(
                    &ranking_bits(&response.output), &reference_bits,
                    "replica {} diverged on {:?}", replica.slot(), query
                );
            }
        }
    }
}

#[test]
fn commit_tokens_chain_into_reads_end_to_end() {
    let fleet = Fleet::builder(config(7))
        .replicas(2)
        .build(CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]));
    let commit = fleet.commit(GraphUpdate::Insert { u: 3, v: 0 });
    assert!(commit.was_effective());
    assert_eq!(commit.version, 1);
    // A duplicate insert is a no-op and appends nothing.
    let noop = fleet.commit(GraphUpdate::Insert { u: 3, v: 0 });
    assert!(!noop.was_effective());
    assert_eq!(noop.version, 1);
    assert_eq!(fleet.log().last_lsn(), 1);

    let response = fleet
        .call(
            Request::new(Query::SingleSource { node: 0 })
                .with_consistency(Consistency::AtLeastVersion(commit.version))
                .with_deadline(Duration::from_secs(10)),
        )
        .expect("read-your-writes");
    assert!(response.version >= commit.version);
}

#[test]
fn zero_admission_sheds_with_a_typed_overload_error() {
    let fleet = Fleet::builder(config(7))
        .replicas(1)
        .max_pending(0)
        .build(CsrGraph::from_edges(3, &[(0, 1), (1, 2)]));
    match fleet.call(Request::new(Query::SingleSource { node: 0 })) {
        Err(FleetError::Overloaded { queue_depth, limit }) => {
            assert_eq!((queue_depth, limit), (0, 0));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
}

#[test]
fn hopelessly_lagging_replicas_produce_a_typed_error() {
    let fleet = Fleet::builder(config(7))
        .replicas(1)
        .lag(0, Duration::from_millis(250))
        .build(CsrGraph::from_edges(3, &[(0, 1), (1, 2)]));
    let commit = fleet.commit(GraphUpdate::Insert { u: 2, v: 0 });
    match fleet.call(
        Request::new(Query::SingleSource { node: 0 })
            .with_consistency(Consistency::AtLeastVersion(commit.version))
            .with_deadline(Duration::from_millis(1)),
    ) {
        Err(FleetError::LaggingReplicas {
            requested,
            newest_applied,
        }) => {
            assert_eq!(requested, commit.version);
            assert!(newest_applied < commit.version);
        }
        other => panic!("expected LaggingReplicas, got {other:?}"),
    }
    // With time to catch up the same read succeeds.
    assert!(fleet.wait_for_replication(commit.version, Duration::from_secs(30)));
    let response = fleet
        .call(
            Request::new(Query::SingleSource { node: 0 })
                .with_consistency(Consistency::AtLeastVersion(commit.version)),
        )
        .expect("caught-up replica serves the read");
    assert!(response.version >= commit.version);
}

#[test]
fn log_replay_reconstructs_the_primary_exactly() {
    let mut rng = StdRng::seed_from_u64(2017);
    let (base, base_edges) = base_graph(&mut rng);
    let fleet = Fleet::builder(config(2017)).replicas(1).build(base);
    for _ in 0..40 {
        fleet.commit(random_update(&mut rng));
    }
    // Serialize, corrupt-check, decode, replay: the rebuilt store's
    // edge set must equal the primary's snapshot bit for bit.
    let encoded = fleet.log().encode();
    let decoded = probesim_fleet::decode_log(&encoded).expect("round trip");
    assert_eq!(decoded.len() as u64, fleet.version());
    let mut rebuilt = GraphStore::from_csr(CsrGraph::from_edges(N, &base_edges));
    for record in &decoded {
        assert!(rebuilt.commit(record.update).was_effective());
    }
    let mut replayed: Vec<_> = rebuilt.snapshot().edges_iter().collect();
    let mut primary: Vec<_> = fleet.primary().snapshot().edges_iter().collect();
    replayed.sort_unstable();
    primary.sort_unstable();
    assert_eq!(replayed, primary);
}
