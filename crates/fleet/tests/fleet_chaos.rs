//! Fault-tolerance properties: chaos convergence, checkpointed
//! suffix-only recovery, supervised respawn, quarantine failover and
//! salvage surfacing.
//!
//! The headline property: under a **seeded fault plan** (crashes,
//! stalls, slow applies, corrupt local-log reads — a pure function of
//! the seed), the supervised fleet still converges, and every surviving
//! `AtLeastVersion(v)` response is bit-identical to the same query
//! answered on a scratch store rebuilt from exactly the log prefix the
//! response claims. Crash recovery is not allowed to cost correctness —
//! only restarts, which the registry counts and the tests assert on.

use std::time::Duration;

use probesim_core::{ProbeSimConfig, Query, QueryOutput};
use probesim_fleet::{FaultPlan, Fleet, LogRecord, ReplicaHealth};
use probesim_graph::{CsrGraph, GraphStore, GraphUpdate, GraphView, NodeId};
use probesim_service::{Consistency, Request, ServiceBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 20;
const DECAY: f64 = 0.36;

fn config(seed: u64) -> ProbeSimConfig {
    ProbeSimConfig::new(DECAY, 0.1, 0.01).with_seed(seed)
}

fn base_graph(rng: &mut StdRng) -> (CsrGraph, Vec<(NodeId, NodeId)>) {
    let mut edges = Vec::new();
    for u in 0..N as NodeId {
        let out = 1 + rng.gen_range(0usize..3);
        for _ in 0..out {
            let v = rng.gen_range(0..N as NodeId);
            if v != u {
                edges.push((u, v));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    (CsrGraph::from_edges(N, &edges), edges)
}

fn random_update(rng: &mut StdRng) -> GraphUpdate {
    let u = rng.gen_range(0..N as NodeId);
    let mut v = rng.gen_range(0..N as NodeId);
    if v == u {
        v = (v + 1) % N as NodeId;
    }
    if rng.gen::<f64>() < 0.6 {
        GraphUpdate::Insert { u, v }
    } else {
        GraphUpdate::Remove { u, v }
    }
}

fn ranking_bits(output: &QueryOutput) -> Vec<(NodeId, u64)> {
    output
        .ranking()
        .iter()
        .map(|&(node, score)| (node, score.to_bits()))
        .collect()
}

/// Replays `records` with `lsn <= version` onto a copy of the base
/// graph and answers `query` with a fresh, identically seeded service.
fn scratch_answer(
    base_edges: &[(NodeId, NodeId)],
    records: &[LogRecord],
    version: u64,
    query: Query,
    seed: u64,
) -> Vec<(NodeId, u64)> {
    let mut store = GraphStore::from_csr(CsrGraph::from_edges(N, base_edges));
    for record in records.iter().filter(|r| r.lsn <= version) {
        assert!(
            store.commit(record.update).was_effective(),
            "log records are effective by construction"
        );
    }
    assert_eq!(store.version(), version, "log prefix rebuilds the version");
    let service = ServiceBuilder::new(config(seed)).workers(1).build(store);
    let response = service
        .call(Request::new(query))
        .expect("scratch service answers");
    assert_eq!(response.version, version);
    ranking_bits(&response.output)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property (see the module docs): a seeded chaos run
    /// converges and every surviving read matches its claimed log
    /// prefix bit for bit, with restarts accounted for.
    #[test]
    fn chaos_runs_converge_and_reads_match_the_log_prefix(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (base, base_edges) = base_graph(&mut rng);
        let plan = FaultPlan::seeded(seed, 3, 32);
        let fleet = Fleet::builder(config(seed))
            .replicas(3)
            .workers(1)
            .retained_versions(64)
            .faults(plan.clone())
            .supervision_tick(Duration::from_millis(1))
            .checkpoint_every(8)
            // Up to two lethal faults (crash + corrupt read) can fire
            // per replica over the fleet's lifetime.
            .restart_budget(4)
            .build(base);

        // (version floor, query, bit-exact ranking) per surviving read.
        #[allow(clippy::type_complexity)] // a 3-tuple accumulator, named by the comment above
        let mut checks: Vec<(u64, Query, Vec<(NodeId, u64)>)> = Vec::new();
        for round in 0..32 {
            let commit = fleet.commit(random_update(&mut rng));
            if round % 4 == 0 {
                let query = match rng.gen_range(0u8..3) {
                    0 => Query::SingleSource { node: rng.gen_range(0..N as NodeId) },
                    1 => Query::TopK { node: rng.gen_range(0..N as NodeId), k: 5 },
                    _ => Query::Threshold { node: rng.gen_range(0..N as NodeId), tau: 0.05 },
                };
                let response = fleet
                    .call(
                        Request::new(query)
                            .with_consistency(Consistency::AtLeastVersion(commit.version))
                            .with_deadline(Duration::from_secs(20)),
                    )
                    .expect("the fleet survives its fault plan within the deadline");
                prop_assert!(response.version >= commit.version);
                checks.push((response.version, query, ranking_bits(&response.output)));
            }
        }

        let final_version = fleet.version();
        prop_assert_eq!(fleet.log().last_lsn(), final_version);
        // Convergence: every routable replica reaches the head. With a
        // budget of 4 nothing gets retired, so this covers all three.
        prop_assert!(fleet.wait_for_replication(final_version, Duration::from_secs(30)));

        // Every lethal fault that provably blocked convergence demanded
        // a respawn. (A crash *at* the head publishes the head before
        // dying, so only strictly-earlier crashes are guaranteed to
        // have been respawned by the time the wait returns; a corrupt
        // read fires before applying its LSN, so `<=` suffices.)
        for slot in 0..3 {
            let faults = plan.for_slot(slot);
            let lethal_fired = faults.crash_after.is_some_and(|lsn| lsn < final_version)
                || faults.corrupt_read_at.is_some_and(|lsn| lsn <= final_version);
            if lethal_fired {
                prop_assert!(
                    fleet.registry().restarts(slot) >= 1,
                    "slot {} suffered a lethal fault but was never respawned",
                    slot
                );
            }
        }
        // The supervisor's recovery ledger agrees with the registry.
        let stats = fleet.supervisor_stats();
        prop_assert_eq!(
            stats.checkpoint_recoveries + stats.genesis_recoveries,
            fleet.registry().total_restarts()
        );

        // Bit-exactness survived the chaos: each response equals the
        // scratch rebuild of exactly the log prefix it claims.
        let records = fleet.log().records_from(1);
        for (version, query, bits) in checks {
            let scratch = scratch_answer(&base_edges, &records, version, query, seed);
            prop_assert_eq!(
                &bits, &scratch,
                "response at version {} diverged from its log prefix", version
            );
        }
    }
}

/// Ten distinct inserts, none present in `base_edges`, so every commit
/// is effective and versions advance deterministically.
fn distinct_inserts() -> Vec<GraphUpdate> {
    [
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 0),
        (0, 2),
        (1, 3),
        (2, 4),
        (3, 5),
        (4, 0),
    ]
    .into_iter()
    .map(|(u, v)| GraphUpdate::Insert { u, v })
    .collect()
}

#[test]
fn recovery_from_a_checkpoint_replays_only_the_suffix() {
    let fleet = Fleet::builder(config(7))
        .replicas(1)
        // No cadence: the only checkpoint is the manual one below, so
        // the replayed suffix length is exactly knowable.
        .checkpoint_every(0)
        .build(CsrGraph::from_edges(6, &[(0, 1)]));
    let updates = distinct_inserts();

    for update in &updates[..6] {
        assert!(fleet.commit(*update).was_effective());
    }
    assert!(fleet.wait_for_replication(6, Duration::from_secs(30)));
    let checkpoint = fleet.checkpoint_now();
    assert_eq!(checkpoint.lsn(), 6);
    assert_eq!(fleet.latest_checkpoint().map(|cp| cp.lsn()), Some(6));
    assert_eq!(fleet.supervisor_stats().checkpoints_taken, 1);

    for update in &updates[6..] {
        assert!(fleet.commit(*update).was_effective());
    }
    assert_eq!(fleet.version(), 10);

    // Recover the replica from the LSN-6 checkpoint: it must come back
    // at version 10 having applied exactly the 4-record suffix — the
    // applied-record counter is the proof that recovery is O(suffix),
    // not O(history).
    let replica = &fleet.replicas()[0];
    replica
        .recover(&checkpoint, fleet.log())
        .expect("checkpoint matches the fleet base");
    assert!(fleet.wait_for_replication(10, Duration::from_secs(30)));
    assert_eq!(replica.applied_records(), 4);
    assert_eq!(replica.service().version(), 10);

    // And the recovered endpoint agrees with the primary bit for bit.
    let request =
        Request::new(Query::SingleSource { node: 0 }).with_consistency(Consistency::Pinned(10));
    let primary = fleet.primary().call(request).expect("primary answers");
    let recovered = replica.service().call(request).expect("replica answers");
    assert_eq!(
        ranking_bits(&primary.output),
        ranking_bits(&recovered.output)
    );

    // A recovered-from-checkpoint store equals a scratch genesis store:
    // same edges, same version.
    let restored = checkpoint.to_store();
    assert_eq!(restored.version(), 6);
    let mut scratch = GraphStore::from_csr(CsrGraph::from_edges(6, &[(0, 1)]));
    for update in &updates[..6] {
        assert!(scratch.commit(*update).was_effective());
    }
    let mut a: Vec<_> = restored.snapshot().edges_iter().collect();
    let mut b: Vec<_> = scratch.snapshot().edges_iter().collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn crashed_replicas_are_respawned_and_converge() {
    let fleet = Fleet::builder(config(11))
        .replicas(2)
        .faults(FaultPlan::none().with_crash_after(0, 3))
        .supervision_tick(Duration::from_millis(1))
        .checkpoint_every(4)
        .restart_budget(3)
        .build(CsrGraph::from_edges(6, &[(0, 1)]));

    for update in distinct_inserts() {
        assert!(fleet.commit(update).was_effective());
    }
    assert!(fleet.wait_for_replication(10, Duration::from_secs(30)));

    // The crashed replica was respawned exactly once; the healthy one
    // never was.
    assert_eq!(fleet.registry().restarts(0), 1);
    assert_eq!(fleet.registry().restarts(1), 0);
    let stats = fleet.supervisor_stats();
    assert_eq!(stats.checkpoint_recoveries + stats.genesis_recoveries, 1);

    // Both replicas agree with the primary bit for bit after recovery.
    let request =
        Request::new(Query::SingleSource { node: 0 }).with_consistency(Consistency::Pinned(10));
    let reference = ranking_bits(&fleet.primary().call(request).expect("primary").output);
    for replica in fleet.replicas() {
        let response = replica.service().call(request).expect("replica answers");
        assert_eq!(ranking_bits(&response.output), reference);
    }
}

#[test]
fn budget_exhausted_replicas_are_quarantined_and_reads_fail_over() {
    let fleet = Fleet::builder(config(13))
        .replicas(2)
        .faults(FaultPlan::none().with_crash_after(0, 1))
        .supervision_tick(Duration::from_millis(1))
        // A zero budget retires the replica on its first crash.
        .restart_budget(0)
        .build(CsrGraph::from_edges(6, &[(0, 1)]));

    for update in distinct_inserts() {
        assert!(fleet.commit(update).was_effective());
    }
    // The convergence wait writes off the retired replica and returns
    // once the surviving one reaches the head.
    assert!(fleet.wait_for_replication(10, Duration::from_secs(30)));
    assert_eq!(fleet.registry().restarts(0), 0);
    assert_eq!(fleet.registry().health(0), ReplicaHealth::Quarantined);

    // Reads demanding the head still succeed: the router fails over to
    // the surviving replica instead of dispatching into quarantine.
    let response = fleet
        .call(
            Request::new(Query::SingleSource { node: 0 })
                .with_consistency(Consistency::AtLeastVersion(10))
                .with_deadline(Duration::from_secs(20)),
        )
        .expect("the surviving replica serves the read");
    assert!(response.version >= 10);

    // The status snapshot surfaces the quarantine.
    let status = fleet.status();
    assert_eq!(status[0].health, ReplicaHealth::Quarantined);
    assert_eq!(status[1].health, ReplicaHealth::Healthy);
    assert!(status[1].applied_version >= 10);
}

#[test]
fn corrupt_log_reads_salvage_and_respawn() {
    let fleet = Fleet::builder(config(17))
        .replicas(1)
        .faults(FaultPlan::none().with_corrupt_read(0, 3))
        .supervision_tick(Duration::from_millis(1))
        // No checkpoint cadence: the respawn must replay from genesis.
        .checkpoint_every(0)
        .restart_budget(2)
        .build(CsrGraph::from_edges(6, &[(0, 1)]));

    for update in distinct_inserts() {
        assert!(fleet.commit(update).was_effective());
    }
    assert!(fleet.wait_for_replication(10, Duration::from_secs(30)));

    // The replica detected "local corruption" at LSN 3: it salvaged up
    // to LSN 2, died for repair and was respawned from genesis.
    assert_eq!(fleet.registry().last_salvage_lsn(0), Some(2));
    assert_eq!(fleet.registry().restarts(0), 1);
    assert_eq!(fleet.supervisor_stats().genesis_recoveries, 1);
    assert_eq!(fleet.supervisor_stats().checkpoint_recoveries, 0);
    // The respawned incarnation replayed the whole log from genesis.
    assert_eq!(fleet.replicas()[0].applied_records(), 10);

    // The salvage position rides along in the status snapshot.
    let status = fleet.status();
    assert_eq!(status[0].last_salvage_lsn, Some(2));
    assert_eq!(status[0].restarts, 1);
}
