//! The shared applied-version registry.
//!
//! Each replica owns one slot and publishes the store version it has
//! applied up to; the router reads the slots to pick an eligible
//! replica and blocks on the paired condvar when a consistency level
//! demands a version no replica has reached yet.
//!
//! Versions live in plain `AtomicU64`s so the hot read path
//! ([`ReplicaRegistry::applied`], [`ReplicaRegistry::newest_applied`])
//! is a cheap snapshot read with no lock traffic. The `registry` mutex
//! guards nothing but the condvar handshake: publishers store the
//! atomic first, then take the mutex to notify, so a waiter that checks
//! the predicate under the mutex can never miss a wakeup.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct RegistryInner {
    /// Slot `i` holds replica `i`'s applied store version.
    applied: Vec<AtomicU64>,
    /// Lock order: `fleet::registry` is a leaf — it is never held
    /// across any other acquisition (publish and wait both take it
    /// alone).
    registry: Mutex<()>,
    /// Signaled (with `registry` held) after every publish.
    caught_up: Condvar,
}

/// Shared registry of per-replica applied versions. Cloning is cheap
/// (`Arc` bump) and every clone views the same slots.
#[derive(Clone)]
pub struct ReplicaRegistry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for ReplicaRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaRegistry")
            .field("applied", &self.applied_versions())
            .finish()
    }
}

impl ReplicaRegistry {
    /// A registry with `slots` replica slots, all at version 0.
    pub fn new(slots: usize) -> ReplicaRegistry {
        ReplicaRegistry {
            inner: Arc::new(RegistryInner {
                applied: (0..slots).map(|_| AtomicU64::new(0)).collect(),
                registry: Mutex::new(()),
                caught_up: Condvar::new(),
            }),
        }
    }

    /// Number of replica slots.
    pub fn slots(&self) -> usize {
        self.inner.applied.len()
    }

    /// Records that replica `slot` has applied up to `version` and
    /// wakes every waiter.
    pub fn publish_applied(&self, slot: usize, version: u64) {
        self.inner
            .applied
            .get(slot)
            .expect("invariant: replica slot within registry capacity")
            .store(version, Ordering::Release);
        // Taking the mutex after the store orders the publish before
        // any predicate check a waiter performs under the same mutex.
        let _guard = self.inner.registry.lock().expect("registry poisoned");
        self.inner.caught_up.notify_all();
    }

    /// Replica `slot`'s applied version.
    pub fn applied(&self, slot: usize) -> u64 {
        self.inner
            .applied
            .get(slot)
            .expect("invariant: replica slot within registry capacity")
            .load(Ordering::Acquire)
    }

    /// Every slot's applied version, in slot order.
    pub fn applied_versions(&self) -> Vec<u64> {
        self.inner
            .applied
            .iter()
            .map(|slot| slot.load(Ordering::Acquire))
            .collect()
    }

    /// The most advanced replica's applied version (0 with no slots).
    pub fn newest_applied(&self) -> u64 {
        self.inner
            .applied
            .iter()
            .map(|slot| slot.load(Ordering::Acquire))
            .max()
            .unwrap_or(0)
    }

    /// The least advanced replica's applied version (0 with no slots).
    pub fn oldest_applied(&self) -> u64 {
        self.inner
            .applied
            .iter()
            .map(|slot| slot.load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }

    /// Blocks until at least one replica has applied `version`, up to
    /// `timeout`. Returns whether the condition holds on return.
    pub fn wait_for_any_at_least(&self, version: u64, timeout: Duration) -> bool {
        self.wait_until(timeout, || self.newest_applied() >= version)
    }

    /// Blocks until **every** replica has applied `version`, up to
    /// `timeout`. Returns whether the condition holds on return.
    pub fn wait_for_all_at_least(&self, version: u64, timeout: Duration) -> bool {
        self.wait_until(timeout, || {
            self.slots() == 0 || self.oldest_applied() >= version
        })
    }

    fn wait_until<F: Fn() -> bool>(&self, timeout: Duration, reached: F) -> bool {
        if reached() {
            return true;
        }
        let guard = self.inner.registry.lock().expect("registry poisoned");
        let (_guard, _timed_out) = self
            .inner
            .caught_up
            .wait_timeout_while(guard, timeout, |()| !reached())
            .expect("registry poisoned");
        reached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_read_back() {
        let registry = ReplicaRegistry::new(3);
        assert_eq!(registry.applied_versions(), vec![0, 0, 0]);
        registry.publish_applied(1, 5);
        registry.publish_applied(2, 3);
        assert_eq!(registry.applied(1), 5);
        assert_eq!(registry.newest_applied(), 5);
        assert_eq!(registry.oldest_applied(), 0);
        assert_eq!(registry.applied_versions(), vec![0, 5, 3]);
    }

    #[test]
    fn wait_times_out_when_nobody_catches_up() {
        let registry = ReplicaRegistry::new(1);
        assert!(!registry.wait_for_any_at_least(1, Duration::from_millis(20)));
        assert!(registry.wait_for_any_at_least(0, Duration::ZERO));
    }

    #[test]
    fn wait_wakes_on_publish() {
        let registry = ReplicaRegistry::new(2);
        let waiter = registry.clone();
        let handle =
            std::thread::spawn(move || waiter.wait_for_any_at_least(4, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(10));
        registry.publish_applied(0, 4);
        assert!(handle.join().unwrap());
        // All-replica wait still fails: slot 1 is behind.
        assert!(!registry.wait_for_all_at_least(4, Duration::from_millis(20)));
        registry.publish_applied(1, 4);
        assert!(registry.wait_for_all_at_least(4, Duration::ZERO));
    }
}
