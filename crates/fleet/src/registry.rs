//! The shared applied-version and health registry.
//!
//! Each replica owns one slot and publishes the store version it has
//! applied up to; the router reads the slots to pick an eligible
//! replica and blocks on the paired condvar when a consistency level
//! demands a version no replica has reached yet. The supervisor's
//! progress watchdog drives each slot's [`ReplicaHealth`] through the
//! same registry, and every health transition wakes the condvar too —
//! so a router blocked in a failover retry reacts the moment a replica
//! recovers (or is quarantined) instead of burning its deadline in
//! sleep quanta.
//!
//! Versions, health states, restart counts and salvage positions live
//! in plain atomics so the hot read path ([`ReplicaRegistry::applied`],
//! [`ReplicaRegistry::newest_applied`], [`ReplicaRegistry::health`]) is
//! a cheap snapshot read with no lock traffic. The `registry` mutex
//! guards nothing but the condvar handshake: publishers store the
//! atomic first, then take the mutex to notify, so a waiter that checks
//! the predicate under the mutex can never miss a wakeup.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A replica's routing health, driven by the supervisor's progress
/// watchdog (see `crate::supervisor`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Applying records and keeping up; fully routable.
    Healthy,
    /// Behind and not visibly progressing — still routable, but a
    /// warning sign (the state between "slow" and "written off").
    Degraded,
    /// Stopped making progress past the watchdog's patience, or dead
    /// with its restart budget exhausted. The router never dispatches
    /// into a quarantined replica.
    Quarantined,
}

impl ReplicaHealth {
    fn from_u8(raw: u8) -> ReplicaHealth {
        match raw {
            0 => ReplicaHealth::Healthy,
            1 => ReplicaHealth::Degraded,
            _ => ReplicaHealth::Quarantined,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            ReplicaHealth::Healthy => 0,
            ReplicaHealth::Degraded => 1,
            ReplicaHealth::Quarantined => 2,
        }
    }

    /// Whether the router may dispatch into a replica in this state.
    pub fn is_routable(self) -> bool {
        !matches!(self, ReplicaHealth::Quarantined)
    }
}

impl std::fmt::Display for ReplicaHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ReplicaHealth::Healthy => "healthy",
            ReplicaHealth::Degraded => "degraded",
            ReplicaHealth::Quarantined => "quarantined",
        };
        f.write_str(name)
    }
}

/// One registry slot: all plain atomics (see the module docs).
struct Slot {
    /// The replica's applied store version.
    applied: AtomicU64,
    /// [`ReplicaHealth`] encoded via `as_u8`.
    health: AtomicU8,
    /// How many times the supervisor has respawned this replica.
    restarts: AtomicU64,
    /// Last salvage position, encoded as `lsn + 1` (0 = never
    /// salvaged), so LSN 0 salvages are representable.
    salvage: AtomicU64,
}

struct RegistryInner {
    slots: Vec<Slot>,
    /// Lock order: `fleet::registry` is a leaf — it is never held
    /// across any other acquisition (publish and wait both take it
    /// alone).
    registry: Mutex<()>,
    /// Signaled (with `registry` held) after every publish and every
    /// health transition.
    caught_up: Condvar,
}

/// Shared registry of per-replica applied versions, health states,
/// restart counts and salvage positions. Cloning is cheap (`Arc` bump)
/// and every clone views the same slots.
#[derive(Clone)]
pub struct ReplicaRegistry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for ReplicaRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaRegistry")
            .field("applied", &self.applied_versions())
            .field("health", &self.health_states())
            .finish()
    }
}

impl ReplicaRegistry {
    /// A registry with `slots` replica slots, all at version 0 and
    /// [`ReplicaHealth::Healthy`].
    pub fn new(slots: usize) -> ReplicaRegistry {
        ReplicaRegistry {
            inner: Arc::new(RegistryInner {
                slots: (0..slots)
                    .map(|_| Slot {
                        applied: AtomicU64::new(0),
                        health: AtomicU8::new(ReplicaHealth::Healthy.as_u8()),
                        restarts: AtomicU64::new(0),
                        salvage: AtomicU64::new(0),
                    })
                    .collect(),
                registry: Mutex::new(()),
                caught_up: Condvar::new(),
            }),
        }
    }

    fn slot(&self, slot: usize) -> &Slot {
        self.inner
            .slots
            .get(slot)
            .expect("invariant: replica slot within registry capacity")
    }

    /// Wakes every waiter. Called after any atomic publish; taking the
    /// mutex after the store orders the publish before any predicate
    /// check a waiter performs under the same mutex.
    fn notify(&self) {
        let _guard = self.inner.registry.lock().expect("registry poisoned");
        self.inner.caught_up.notify_all();
    }

    /// Number of replica slots.
    pub fn slots(&self) -> usize {
        self.inner.slots.len()
    }

    /// Records that replica `slot` has applied up to `version` and
    /// wakes every waiter.
    pub fn publish_applied(&self, slot: usize, version: u64) {
        self.slot(slot).applied.store(version, Ordering::Release);
        self.notify();
    }

    /// Replica `slot`'s applied version.
    pub fn applied(&self, slot: usize) -> u64 {
        self.slot(slot).applied.load(Ordering::Acquire)
    }

    /// Every slot's applied version, in slot order.
    pub fn applied_versions(&self) -> Vec<u64> {
        self.inner
            .slots
            .iter()
            .map(|slot| slot.applied.load(Ordering::Acquire))
            .collect()
    }

    /// The most advanced replica's applied version (0 with no slots).
    pub fn newest_applied(&self) -> u64 {
        self.inner
            .slots
            .iter()
            .map(|slot| slot.applied.load(Ordering::Acquire))
            .max()
            .unwrap_or(0)
    }

    /// The least advanced replica's applied version (0 with no slots).
    pub fn oldest_applied(&self) -> u64 {
        self.inner
            .slots
            .iter()
            .map(|slot| slot.applied.load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }

    /// Sets replica `slot`'s health and wakes every waiter (a recovery
    /// or a quarantine must unblock routing decisions immediately).
    pub fn set_health(&self, slot: usize, health: ReplicaHealth) {
        let previous = self
            .slot(slot)
            .health
            .swap(health.as_u8(), Ordering::AcqRel);
        if previous != health.as_u8() {
            self.notify();
        }
    }

    /// Replica `slot`'s current health.
    pub fn health(&self, slot: usize) -> ReplicaHealth {
        ReplicaHealth::from_u8(self.slot(slot).health.load(Ordering::Acquire))
    }

    /// Every slot's health, in slot order.
    pub fn health_states(&self) -> Vec<ReplicaHealth> {
        self.inner
            .slots
            .iter()
            .map(|slot| ReplicaHealth::from_u8(slot.health.load(Ordering::Acquire)))
            .collect()
    }

    /// Bumps replica `slot`'s restart count (the supervisor respawned
    /// it) and returns the new count.
    pub fn record_restart(&self, slot: usize) -> u64 {
        let count = self.slot(slot).restarts.fetch_add(1, Ordering::AcqRel) + 1;
        self.notify();
        count
    }

    /// How many times replica `slot` has been respawned.
    pub fn restarts(&self, slot: usize) -> u64 {
        self.slot(slot).restarts.load(Ordering::Acquire)
    }

    /// Total respawns across every slot.
    pub fn total_restarts(&self) -> u64 {
        self.inner
            .slots
            .iter()
            .map(|slot| slot.restarts.load(Ordering::Acquire))
            .sum()
    }

    /// Records that replica `slot` salvaged its local log up to `lsn`
    /// (the longest valid prefix after detecting corruption).
    pub fn record_salvage(&self, slot: usize, lsn: u64) {
        self.slot(slot).salvage.store(lsn + 1, Ordering::Release);
        self.notify();
    }

    /// The LSN replica `slot` last salvaged up to, if it ever did.
    pub fn last_salvage_lsn(&self, slot: usize) -> Option<u64> {
        match self.slot(slot).salvage.load(Ordering::Acquire) {
            0 => None,
            encoded => Some(encoded - 1),
        }
    }

    /// Blocks until at least one replica has applied `version`, up to
    /// `timeout`. Returns whether the condition holds on return.
    pub fn wait_for_any_at_least(&self, version: u64, timeout: Duration) -> bool {
        self.wait_until(timeout, || self.newest_applied() >= version)
    }

    /// Blocks until at least one **routable** (non-quarantined) replica
    /// has applied `version`, up to `timeout`. Returns whether the
    /// condition holds on return. Health transitions wake this wait,
    /// so a quarantine lift or a recovery is reacted to immediately.
    pub fn wait_for_any_routable_at_least(&self, version: u64, timeout: Duration) -> bool {
        self.wait_until(timeout, || {
            self.inner.slots.iter().any(|slot| {
                ReplicaHealth::from_u8(slot.health.load(Ordering::Acquire)).is_routable()
                    && slot.applied.load(Ordering::Acquire) >= version
            })
        })
    }

    /// Blocks until **every** replica has applied `version`, up to
    /// `timeout`. Returns whether the condition holds on return.
    pub fn wait_for_all_at_least(&self, version: u64, timeout: Duration) -> bool {
        self.wait_until(timeout, || {
            self.slots() == 0 || self.oldest_applied() >= version
        })
    }

    /// Blocks until every **routable** replica has applied `version`
    /// (quarantined replicas are written off), up to `timeout`.
    /// Returns whether the condition holds on return.
    pub fn wait_for_all_routable_at_least(&self, version: u64, timeout: Duration) -> bool {
        self.wait_until(timeout, || {
            self.inner.slots.iter().all(|slot| {
                !ReplicaHealth::from_u8(slot.health.load(Ordering::Acquire)).is_routable()
                    || slot.applied.load(Ordering::Acquire) >= version
            })
        })
    }

    /// Blocks until **anything** happens — any publish, health change,
    /// restart or salvage — or `timeout` elapses, whichever is first.
    /// The router's failover backoff is bounded by this instead of a
    /// plain sleep, so a recovery landing mid-pause cuts it short.
    pub fn wait_for_event(&self, timeout: Duration) {
        if timeout.is_zero() {
            return;
        }
        let guard = self.inner.registry.lock().expect("registry poisoned");
        let _ = self
            .inner
            .caught_up
            .wait_timeout(guard, timeout)
            .expect("registry poisoned");
    }

    fn wait_until<F: Fn() -> bool>(&self, timeout: Duration, reached: F) -> bool {
        if reached() {
            return true;
        }
        let guard = self.inner.registry.lock().expect("registry poisoned");
        let (_guard, _timed_out) = self
            .inner
            .caught_up
            .wait_timeout_while(guard, timeout, |()| !reached())
            .expect("registry poisoned");
        reached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_read_back() {
        let registry = ReplicaRegistry::new(3);
        assert_eq!(registry.applied_versions(), vec![0, 0, 0]);
        registry.publish_applied(1, 5);
        registry.publish_applied(2, 3);
        assert_eq!(registry.applied(1), 5);
        assert_eq!(registry.newest_applied(), 5);
        assert_eq!(registry.oldest_applied(), 0);
        assert_eq!(registry.applied_versions(), vec![0, 5, 3]);
    }

    #[test]
    fn wait_times_out_when_nobody_catches_up() {
        let registry = ReplicaRegistry::new(1);
        assert!(!registry.wait_for_any_at_least(1, Duration::from_millis(20)));
        assert!(registry.wait_for_any_at_least(0, Duration::ZERO));
    }

    #[test]
    fn wait_wakes_on_publish() {
        let registry = ReplicaRegistry::new(2);
        let waiter = registry.clone();
        let handle =
            std::thread::spawn(move || waiter.wait_for_any_at_least(4, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(10));
        registry.publish_applied(0, 4);
        assert!(handle.join().unwrap());
        // All-replica wait still fails: slot 1 is behind.
        assert!(!registry.wait_for_all_at_least(4, Duration::from_millis(20)));
        registry.publish_applied(1, 4);
        assert!(registry.wait_for_all_at_least(4, Duration::ZERO));
    }

    #[test]
    fn health_defaults_and_transitions() {
        let registry = ReplicaRegistry::new(2);
        assert_eq!(
            registry.health_states(),
            vec![ReplicaHealth::Healthy, ReplicaHealth::Healthy]
        );
        registry.set_health(1, ReplicaHealth::Quarantined);
        assert_eq!(registry.health(1), ReplicaHealth::Quarantined);
        assert!(!registry.health(1).is_routable());
        assert!(registry.health(0).is_routable());
        registry.set_health(1, ReplicaHealth::Degraded);
        assert!(registry.health(1).is_routable());
    }

    #[test]
    fn routable_wait_ignores_quarantined_replicas() {
        let registry = ReplicaRegistry::new(2);
        registry.publish_applied(0, 9);
        registry.set_health(0, ReplicaHealth::Quarantined);
        // The only caught-up replica is quarantined: not routable.
        assert!(!registry.wait_for_any_routable_at_least(9, Duration::from_millis(20)));
        // But a written-off replica no longer blocks the all-routable
        // convergence wait.
        registry.publish_applied(1, 9);
        assert!(registry.wait_for_any_routable_at_least(9, Duration::ZERO));
        registry.set_health(1, ReplicaHealth::Quarantined);
        registry.publish_applied(1, 0);
        assert!(registry.wait_for_all_routable_at_least(42, Duration::ZERO));
    }

    #[test]
    fn health_transition_wakes_waiters() {
        let registry = ReplicaRegistry::new(1);
        registry.publish_applied(0, 5);
        registry.set_health(0, ReplicaHealth::Quarantined);
        let waiter = registry.clone();
        let handle = std::thread::spawn(move || {
            waiter.wait_for_any_routable_at_least(5, Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(10));
        // Lifting the quarantine must wake the blocked router retry.
        registry.set_health(0, ReplicaHealth::Healthy);
        assert!(handle.join().unwrap());
    }

    #[test]
    fn restarts_and_salvage_are_tracked_per_slot() {
        let registry = ReplicaRegistry::new(2);
        assert_eq!(registry.restarts(0), 0);
        assert_eq!(registry.record_restart(0), 1);
        assert_eq!(registry.record_restart(0), 2);
        assert_eq!(registry.restarts(0), 2);
        assert_eq!(registry.restarts(1), 0);
        assert_eq!(registry.total_restarts(), 2);

        assert_eq!(registry.last_salvage_lsn(1), None);
        registry.record_salvage(1, 0);
        assert_eq!(registry.last_salvage_lsn(1), Some(0));
        registry.record_salvage(1, 17);
        assert_eq!(registry.last_salvage_lsn(1), Some(17));
    }
}
