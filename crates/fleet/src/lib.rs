#![warn(missing_docs)]
//! # probesim-fleet
//!
//! The fifth tier of the ProbeSim stack — **storage → probe → session →
//! service → fleet** — turning the single-process
//! [`QueryService`](probesim_service::QueryService) into a replicated,
//! fault-tolerant serving group with one write path and
//! consistency-aware reads.
//!
//! The pieces:
//!
//! * [`UpdateLog`] — the durable, replayable record of every effective
//!   mutation, with blocking [`LogCursor`] tailing, a checksummed,
//!   truncation-detecting binary codec ([`encode_log`]/[`decode_log`]),
//!   and damage-tolerant **salvage** ([`salvage_log`],
//!   [`read_log_file_salvage`]) that recovers the longest valid prefix
//!   of a corrupted log with a typed [`SalvageReason`] for the cut;
//! * [`Checkpoint`] — a checksummed freeze of the store at an LSN, so
//!   recovery replays only the log suffix past it instead of all of
//!   history;
//! * [`Replica`] — a private store + service kept current by tailing
//!   the log in LSN order, publishing its applied version through the
//!   shared [`ReplicaRegistry`]; [`Replica::recover`] restores it from
//!   a checkpoint in place;
//! * a **supervisor** thread per fleet — checkpoint cadence, a progress
//!   watchdog driving each replica's [`ReplicaHealth`], and bounded
//!   respawn of crashed tailers ([`SupervisorStats`] counts its work);
//! * [`FaultPlan`] — deterministic, seeded fault injection (crashes,
//!   stalls, slow applies, corrupt reads) for chaos-testing all of the
//!   above, reproducible from the seed alone;
//! * [`Fleet`] — the facade: [`Fleet::commit`] gives writers a
//!   [`Commit`] token (read-your-writes in one line), [`Fleet::call`]
//!   routes each request to an eligible, least-loaded, **routable**
//!   endpoint, retries with capped backoff when an endpoint dies under
//!   a request, and sheds load with typed [`FleetError`]s.
//!
//! The core invariant, inherited from the versioned store and enforced
//! on the write path: **LSN ≡ store version**. Every effective mutation
//! bumps exactly one log record and one store version, so "replica
//! applied LSN `v`" and "replica serves snapshot version `v`" are the
//! same statement, and any two endpoints at the same version return
//! bit-identical scores — before, during and after crash recovery.
//!
//! ```
//! use probesim_core::{ProbeSimConfig, Query};
//! use probesim_fleet::Fleet;
//! use probesim_graph::{CsrGraph, GraphUpdate};
//! use probesim_service::{Consistency, Request};
//!
//! let base = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
//! let fleet = Fleet::builder(ProbeSimConfig::new(0.36, 0.05, 0.01).with_seed(7))
//!     .replicas(2)
//!     .build(base);
//!
//! // Write through the fleet, then read your own write.
//! let commit = fleet.commit(GraphUpdate::Insert { u: 2, v: 0 });
//! let response = fleet
//!     .call(
//!         Request::new(Query::SingleSource { node: 0 })
//!             .with_consistency(Consistency::AtLeastVersion(commit.version)),
//!     )
//!     .expect("a caught-up replica serves the read");
//! assert!(response.version >= commit.version);
//! ```

mod chaos;
mod checkpoint;
mod log;
mod registry;
mod replica;
mod router;
mod supervisor;

pub use crate::chaos::{FaultPlan, ReplicaFaults};
pub use crate::checkpoint::{
    decode_checkpoint, encode_checkpoint, read_checkpoint_file, write_checkpoint_file, Checkpoint,
};
pub use crate::log::{
    decode_log, encode_log, read_log_file, read_log_file_salvage, salvage_log, write_log_file,
    LogCursor, LogRecord, Salvage, SalvageReason, UpdateLog,
};
pub use crate::registry::{ReplicaHealth, ReplicaRegistry};
pub use crate::replica::Replica;
pub use crate::router::{Fleet, FleetBuilder, FleetError, ReplicaStatus};
pub use crate::supervisor::SupervisorStats;

pub use probesim_graph::Commit;
