#![warn(missing_docs)]
//! # probesim-fleet
//!
//! The fifth tier of the ProbeSim stack — **storage → probe → session →
//! service → fleet** — turning the single-process
//! [`QueryService`](probesim_service::QueryService) into a replicated
//! serving group with one write path and consistency-aware reads.
//!
//! Three pieces:
//!
//! * [`UpdateLog`] — the durable, replayable record of every effective
//!   mutation, with blocking [`LogCursor`] tailing and a checksummed,
//!   truncation-detecting binary codec ([`encode_log`]/[`decode_log`]);
//! * [`Replica`] — a private store + service kept current by tailing
//!   the log in LSN order, publishing its applied version through the
//!   shared [`ReplicaRegistry`];
//! * [`Fleet`] — the facade: [`Fleet::commit`] gives writers a
//!   [`Commit`] token (read-your-writes in one line), [`Fleet::call`]
//!   routes each request to an eligible, least-loaded endpoint and
//!   sheds load with typed [`FleetError`]s.
//!
//! The core invariant, inherited from the versioned store and enforced
//! on the write path: **LSN ≡ store version**. Every effective mutation
//! bumps exactly one log record and one store version, so "replica
//! applied LSN `v`" and "replica serves snapshot version `v`" are the
//! same statement, and any two endpoints at the same version return
//! bit-identical scores.
//!
//! ```
//! use probesim_core::{ProbeSimConfig, Query};
//! use probesim_fleet::Fleet;
//! use probesim_graph::{CsrGraph, GraphUpdate};
//! use probesim_service::{Consistency, Request};
//!
//! let base = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
//! let fleet = Fleet::builder(ProbeSimConfig::new(0.36, 0.05, 0.01).with_seed(7))
//!     .replicas(2)
//!     .build(base);
//!
//! // Write through the fleet, then read your own write.
//! let commit = fleet.commit(GraphUpdate::Insert { u: 2, v: 0 });
//! let response = fleet
//!     .call(
//!         Request::new(Query::SingleSource { node: 0 })
//!             .with_consistency(Consistency::AtLeastVersion(commit.version)),
//!     )
//!     .expect("a caught-up replica serves the read");
//! assert!(response.version >= commit.version);
//! ```

mod log;
mod registry;
mod replica;
mod router;

pub use crate::log::{
    decode_log, encode_log, read_log_file, write_log_file, LogCursor, LogRecord, UpdateLog,
};
pub use crate::registry::ReplicaRegistry;
pub use crate::replica::Replica;
pub use crate::router::{Fleet, FleetBuilder, FleetError, ReplicaStatus};

pub use probesim_graph::Commit;
