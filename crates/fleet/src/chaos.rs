//! Deterministic fault injection for the fleet.
//!
//! A [`FaultPlan`] is pure data: per-replica fault schedules keyed by
//! LSN, derived from a seed by a splitmix64 stream — the same plan for
//! the same `(seed, replicas, horizon)` every time, so every chaos run
//! is exactly reproducible and every chaos failure is replayable from
//! its seed alone. The plan itself never sleeps, spawns, or touches a
//! clock; the replica tailer (`crate::replica`) reads it and performs
//! the injected crashes, stalls, delays and corrupt reads at the
//! scheduled LSNs.
//!
//! Each scheduled fault fires **once per fleet lifetime** (the tailer
//! tracks fired faults across respawns), so a supervised fleet always
//! converges: a crash is a crash, not a crash loop.

use std::time::Duration;

/// The fault schedule for one replica. All faults are optional and
/// LSN-targeted; `slow_apply` applies to every record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaFaults {
    /// Sleep this long before applying each record (replication lag).
    pub slow_apply: Option<Duration>,
    /// Exit the tailer thread (simulated crash) right after applying
    /// and publishing this LSN.
    pub crash_after: Option<u64>,
    /// Sleep this long before applying this LSN (an apply-loop stall
    /// long enough for the watchdog to notice).
    pub stall: Option<(u64, Duration)>,
    /// Detect "local log corruption" when this LSN is read: record a
    /// salvage at `lsn - 1` and exit the tailer for repair.
    pub corrupt_read_at: Option<u64>,
}

impl ReplicaFaults {
    /// Whether this replica has no scheduled faults at all.
    pub fn is_quiet(&self) -> bool {
        *self == ReplicaFaults::default()
    }

    /// Whether the schedule contains a fault that kills the tailer
    /// (and therefore demands a supervisor respawn).
    pub fn is_lethal(&self) -> bool {
        self.crash_after.is_some() || self.corrupt_read_at.is_some()
    }
}

/// A deterministic, per-replica fault schedule for one fleet run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<ReplicaFaults>,
}

/// splitmix64: the dependency-free seed stream used across the repo's
/// deterministic harnesses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `1..=horizon` from the stream.
fn draw_lsn(state: &mut u64, horizon: u64) -> u64 {
    1 + splitmix64(state) % horizon.max(1)
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A deterministic plan for `replicas` replicas over a log of
    /// about `horizon` records: a pure function of the arguments, so
    /// the same seed always yields the same chaos. Each replica
    /// independently draws (with moderate probability) a crash, a
    /// stall, a small slow-apply delay and/or a corrupt read, with
    /// every fault LSN in `1..=horizon`.
    pub fn seeded(seed: u64, replicas: usize, horizon: u64) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for slot in 0..replicas {
            // One independent stream per slot so adding a replica
            // never reshuffles the others' faults.
            let mut state = seed ^ (slot as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            let mut faults = ReplicaFaults::default();
            if splitmix64(&mut state) % 100 < 40 {
                faults.crash_after = Some(draw_lsn(&mut state, horizon));
            }
            if splitmix64(&mut state) % 100 < 30 {
                faults.stall = Some((
                    draw_lsn(&mut state, horizon),
                    Duration::from_millis(1 + splitmix64(&mut state) % 20),
                ));
            }
            if splitmix64(&mut state) % 100 < 30 {
                faults.slow_apply = Some(Duration::from_micros(100 + splitmix64(&mut state) % 900));
            }
            if splitmix64(&mut state) % 100 < 25 {
                faults.corrupt_read_at = Some(draw_lsn(&mut state, horizon));
            }
            plan.faults.push(faults);
        }
        plan
    }

    /// Schedules a crash right after replica `slot` applies `lsn`.
    pub fn with_crash_after(mut self, slot: usize, lsn: u64) -> FaultPlan {
        self.slot_mut(slot).crash_after = Some(lsn);
        self
    }

    /// Schedules an apply-loop stall of `delay` before replica `slot`
    /// applies `lsn`.
    pub fn with_stall(mut self, slot: usize, lsn: u64, delay: Duration) -> FaultPlan {
        self.slot_mut(slot).stall = Some((lsn, delay));
        self
    }

    /// Delays every record replica `slot` applies by `delay`.
    pub fn with_slow_apply(mut self, slot: usize, delay: Duration) -> FaultPlan {
        self.slot_mut(slot).slow_apply = Some(delay);
        self
    }

    /// Schedules a corrupt log read when replica `slot` reaches `lsn`.
    pub fn with_corrupt_read(mut self, slot: usize, lsn: u64) -> FaultPlan {
        self.slot_mut(slot).corrupt_read_at = Some(lsn);
        self
    }

    fn slot_mut(&mut self, slot: usize) -> &mut ReplicaFaults {
        if self.faults.len() <= slot {
            self.faults.resize_with(slot + 1, ReplicaFaults::default);
        }
        &mut self.faults[slot]
    }

    /// Replica `slot`'s schedule (quiet when the plan never mentioned
    /// the slot).
    pub fn for_slot(&self, slot: usize) -> ReplicaFaults {
        self.faults.get(slot).copied().unwrap_or_default()
    }

    /// Whether the plan injects nothing anywhere.
    pub fn is_quiet(&self) -> bool {
        self.faults.iter().all(ReplicaFaults::is_quiet)
    }

    /// How many replicas' tailers the plan kills (each needing one
    /// supervisor respawn: crashes and corrupt reads are both lethal).
    pub fn lethal_faults(&self) -> usize {
        self.faults
            .iter()
            .map(|f| {
                usize::from(f.crash_after.is_some()) + usize::from(f.corrupt_read_at.is_some())
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(2017, 3, 64);
        let b = FaultPlan::seeded(2017, 3, 64);
        assert_eq!(a, b);
        // A different seed disagrees somewhere over a few draws.
        let c = FaultPlan::seeded(2018, 3, 64);
        let d = FaultPlan::seeded(2019, 3, 64);
        assert!(a != c || a != d || c != d);
    }

    #[test]
    fn adding_a_replica_never_reshuffles_existing_slots() {
        let small = FaultPlan::seeded(7, 2, 32);
        let large = FaultPlan::seeded(7, 5, 32);
        for slot in 0..2 {
            assert_eq!(small.for_slot(slot), large.for_slot(slot));
        }
    }

    #[test]
    fn fault_lsns_stay_within_the_horizon() {
        for seed in 0..200u64 {
            let plan = FaultPlan::seeded(seed, 4, 16);
            for slot in 0..4 {
                let faults = plan.for_slot(slot);
                for lsn in [
                    faults.crash_after,
                    faults.corrupt_read_at,
                    faults.stall.map(|(lsn, _)| lsn),
                ]
                .into_iter()
                .flatten()
                {
                    assert!((1..=16).contains(&lsn), "seed {seed} slot {slot}: {lsn}");
                }
            }
        }
    }

    #[test]
    fn explicit_builders_compose() {
        let plan = FaultPlan::none()
            .with_crash_after(0, 5)
            .with_stall(1, 3, Duration::from_millis(10))
            .with_slow_apply(1, Duration::from_millis(1))
            .with_corrupt_read(2, 8);
        assert!(!plan.is_quiet());
        assert_eq!(plan.for_slot(0).crash_after, Some(5));
        assert!(plan.for_slot(0).is_lethal());
        assert_eq!(plan.for_slot(1).stall, Some((3, Duration::from_millis(10))));
        assert!(!plan.for_slot(1).is_lethal());
        assert_eq!(plan.for_slot(2).corrupt_read_at, Some(8));
        assert_eq!(plan.lethal_faults(), 2);
        // Slots past the plan are quiet.
        assert!(plan.for_slot(9).is_quiet());
        assert!(FaultPlan::none().is_quiet());
    }
}
