//! A serving replica: a private `GraphStore` + `QueryService` kept
//! current by tailing the fleet's update log on a background thread.
//!
//! The tailer applies records strictly in LSN order. Because every log
//! record was effective on the primary and every replica starts from
//! the same base graph (or from a checkpoint of it), each record is
//! effective on the replica too, so the replica's store version after
//! applying record `lsn` is exactly `lsn` — the invariant the router's
//! version arithmetic rests on. The reached version is published to the
//! shared [`ReplicaRegistry`] after every applied record.
//!
//! The replica's serving state lives behind an interior-mutable
//! **seat** so the supervisor can respawn a dead tailer in place:
//! [`Replica::recover`] (and the supervisor's automatic respawn) stops
//! whatever incarnation is seated, rebuilds the store — from a
//! [`Checkpoint`] at LSN *v* when one is available — and spawns a fresh
//! tailer that resumes at *v + 1*, replaying only the log suffix. The
//! per-incarnation applied-record counter ([`Replica::applied_records`])
//! makes that suffix-only replay observable to tests.
//!
//! Fault injection (crashes, stalls, slow applies, corrupt reads) is
//! driven by the replica's [`ReplicaFaults`] schedule from the fleet's
//! [`crate::FaultPlan`]; each scheduled fault fires once per fleet
//! lifetime, tracked across respawns.
//!
//! This file is on the analyzer's clock allowlist: the injected stalls
//! and slow-apply delays sleep between records, and the tailer's
//! shutdown poll bounds its condvar waits with a real timeout.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use probesim_graph::{CsrGraph, GraphError, GraphStore, GraphView};
use probesim_service::QueryService;

use crate::chaos::ReplicaFaults;
use crate::checkpoint::Checkpoint;
use crate::log::UpdateLog;
use crate::registry::ReplicaRegistry;

/// How long the tailer blocks for new records before re-checking the
/// shutdown flag.
const TAIL_POLL: Duration = Duration::from_millis(5);

/// Builds one endpoint's `QueryService` over a seeded store; the fleet
/// builder captures its service configuration in here so respawns
/// reproduce the exact endpoint setup.
pub(crate) type EndpointFactory = Arc<dyn Fn(GraphStore) -> Arc<QueryService> + Send + Sync>;

/// One tailer incarnation's handles. Replaced wholesale on respawn.
struct Seat {
    service: Arc<QueryService>,
    shutdown: Arc<AtomicBool>,
    tailer: Option<JoinHandle<()>>,
}

/// Once-per-fleet-lifetime latches for the scheduled faults, shared
/// across incarnations so a respawned replica never re-fires a fault
/// it already suffered (a crash is a crash, not a crash loop).
#[derive(Default)]
struct FaultLatches {
    crash: AtomicBool,
    stall: AtomicBool,
    corrupt: AtomicBool,
}

pub(crate) struct ReplicaShared {
    slot: usize,
    base: CsrGraph,
    factory: EndpointFactory,
    log: UpdateLog,
    registry: ReplicaRegistry,
    faults: ReplicaFaults,
    fired: FaultLatches,
    /// Records applied by the **current** incarnation — reset to 0 on
    /// every respawn, so a recovery from a checkpoint at LSN *v*
    /// provably applies only the `> v` suffix.
    applied_records: AtomicU64,
    /// Lock order: `fleet::seat` is a leaf — incarnations are built
    /// and joined entirely outside it; the lock only swaps the seated
    /// handles.
    seat: Mutex<Seat>,
}

impl ReplicaShared {
    /// Whether the seated tailer thread exited without being asked to
    /// (a crash the supervisor should respawn).
    pub(crate) fn is_dead(&self) -> bool {
        let seat = self.seat.lock().expect("replica seat poisoned");
        !seat.shutdown.load(Ordering::Relaxed)
            && seat
                .tailer
                .as_ref()
                .map(JoinHandle::is_finished)
                .unwrap_or(true)
    }

    pub(crate) fn service(&self) -> Arc<QueryService> {
        let seat = self.seat.lock().expect("replica seat poisoned");
        Arc::clone(&seat.service)
    }

    pub(crate) fn slot(&self) -> usize {
        self.slot
    }

    pub(crate) fn applied_records(&self) -> u64 {
        self.applied_records.load(Ordering::Acquire)
    }

    pub(crate) fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// Stops the seated incarnation (if any) and seats a fresh one,
    /// restored from `checkpoint` when given, from the genesis base
    /// otherwise. The new tailer resumes tailing `log` at the first
    /// LSN past the restored state.
    pub(crate) fn respawn(
        self: &Arc<Self>,
        checkpoint: Option<&Checkpoint>,
        log: &UpdateLog,
    ) -> Result<(), GraphError> {
        if let Some(checkpoint) = checkpoint {
            if checkpoint.num_nodes() != self.base.num_nodes() {
                return Err(GraphError::Corrupt(format!(
                    "checkpoint has {} nodes, fleet base has {}",
                    checkpoint.num_nodes(),
                    self.base.num_nodes()
                )));
            }
        }
        // Stop whatever is seated. The join happens outside the seat
        // lock so a slow exit never blocks concurrent seat readers.
        let old = {
            let mut seat = self.seat.lock().expect("replica seat poisoned");
            seat.shutdown.store(true, Ordering::Relaxed);
            seat.tailer.take()
        };
        if let Some(handle) = old {
            let _ = handle.join();
        }
        // Build the new incarnation entirely outside the seat lock.
        let (store, resume_from) = match checkpoint {
            Some(checkpoint) => (checkpoint.to_store(), checkpoint.lsn() + 1),
            None => (GraphStore::from_csr(self.base.clone()), 1),
        };
        let service = (self.factory)(store);
        self.applied_records.store(0, Ordering::Release);
        self.registry.publish_applied(self.slot, resume_from - 1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let tailer = spawn_tailer(
            self,
            Arc::clone(&service),
            Arc::clone(&shutdown),
            log.tail(resume_from),
        );
        let mut seat = self.seat.lock().expect("replica seat poisoned");
        *seat = Seat {
            service,
            shutdown,
            tailer: Some(tailer),
        };
        Ok(())
    }
}

/// The tailer thread: waits for new log records, injects the scheduled
/// faults, applies each record and publishes progress.
fn spawn_tailer(
    shared: &Arc<ReplicaShared>,
    service: Arc<QueryService>,
    stop: Arc<AtomicBool>,
    mut cursor: crate::log::LogCursor,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("probesim-replica-{}", shared.slot))
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let batch = cursor.wait_next(TAIL_POLL);
                for record in batch {
                    let faults = shared.faults;
                    if let Some((lsn, delay)) = faults.stall {
                        if lsn == record.lsn && !shared.fired.stall.swap(true, Ordering::AcqRel) {
                            std::thread::sleep(delay);
                        }
                    }
                    if let Some(lsn) = faults.corrupt_read_at {
                        if lsn == record.lsn && !shared.fired.corrupt.swap(true, Ordering::AcqRel) {
                            // Simulated local log corruption at `lsn`:
                            // only the salvaged prefix can be trusted,
                            // so record it and die for repair.
                            shared.registry.record_salvage(shared.slot, record.lsn - 1);
                            return;
                        }
                    }
                    if let Some(delay) = faults.slow_apply {
                        std::thread::sleep(delay);
                    }
                    let commit = service.commit(record.update);
                    debug_assert_eq!(
                        commit.version, record.lsn,
                        "replica version diverged from the log LSN"
                    );
                    shared.applied_records.fetch_add(1, Ordering::AcqRel);
                    shared.registry.publish_applied(shared.slot, commit.version);
                    if let Some(lsn) = faults.crash_after {
                        if lsn == record.lsn && !shared.fired.crash.swap(true, Ordering::AcqRel) {
                            return;
                        }
                    }
                }
            }
        })
        .expect("invariant: the OS spawns replica tailer threads")
}

/// One log-tailing serving replica. Dropping it stops and joins the
/// current tailer incarnation.
pub struct Replica {
    shared: Arc<ReplicaShared>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("slot", &self.shared.slot)
            .field("applied", &self.service().version())
            .finish_non_exhaustive()
    }
}

impl Replica {
    /// Builds the replica's first incarnation from the genesis base and
    /// spawns its tailer, applying records from `log` and publishing
    /// progress to `registry` slot `slot`. `faults` is the replica's
    /// schedule from the fleet's fault plan.
    pub(crate) fn spawn(
        factory: EndpointFactory,
        base: CsrGraph,
        slot: usize,
        log: &UpdateLog,
        registry: ReplicaRegistry,
        faults: ReplicaFaults,
    ) -> Replica {
        let service = factory(GraphStore::from_csr(base.clone()));
        let shared = Arc::new(ReplicaShared {
            slot,
            base,
            factory,
            log: log.clone(),
            registry,
            faults,
            fired: FaultLatches::default(),
            applied_records: AtomicU64::new(0),
            seat: Mutex::new(Seat {
                service: Arc::clone(&service),
                shutdown: Arc::new(AtomicBool::new(false)),
                tailer: None,
            }),
        });
        let (shutdown, service) = {
            let seat = shared.seat.lock().expect("replica seat poisoned");
            (Arc::clone(&seat.shutdown), Arc::clone(&seat.service))
        };
        let handle = spawn_tailer(&shared, service, shutdown, log.tail(1));
        shared
            .seat
            .lock()
            .expect("replica seat poisoned")
            .tailer
            .replace(handle);
        Replica { shared }
    }

    /// The replica's current serving endpoint. Respawns swap the
    /// endpoint, so callers hold a consistent-but-possibly-retired
    /// service, never a dangling one.
    pub fn service(&self) -> Arc<QueryService> {
        self.shared.service()
    }

    /// The replica's registry slot.
    pub fn slot(&self) -> usize {
        self.shared.slot
    }

    /// Records applied by the current incarnation — 0 right after a
    /// recovery, then exactly the length of the replayed log suffix.
    pub fn applied_records(&self) -> u64 {
        self.shared.applied_records()
    }

    /// Whether the current tailer thread is still running.
    pub fn is_tailer_alive(&self) -> bool {
        let seat = self.shared.seat.lock().expect("replica seat poisoned");
        seat.tailer
            .as_ref()
            .map(|handle| !handle.is_finished())
            .unwrap_or(false)
    }

    /// Crash recovery: stops the current incarnation (dead or alive),
    /// restores the store from `checkpoint` — state **and** version, so
    /// the next applied record produces `checkpoint.lsn() + 1` — and
    /// resumes tailing `log` at the first LSN past the checkpoint,
    /// replaying only the suffix. Fails if the checkpoint's node count
    /// does not match the fleet's base graph.
    pub fn recover(&self, checkpoint: &Checkpoint, log: &UpdateLog) -> Result<(), GraphError> {
        self.shared.respawn(Some(checkpoint), log)
    }

    pub(crate) fn shared(&self) -> &Arc<ReplicaShared> {
        &self.shared
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        let handle = {
            let mut seat = self.shared.seat.lock().expect("replica seat poisoned");
            seat.shutdown.store(true, Ordering::Relaxed);
            seat.tailer.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}
