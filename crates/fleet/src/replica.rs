//! A serving replica: a private `GraphStore` + `QueryService` kept
//! current by tailing the fleet's update log on a background thread.
//!
//! The tailer applies records strictly in LSN order. Because every log
//! record was effective on the primary and every replica starts from
//! the same base graph, each record is effective on the replica too, so
//! the replica's store version after applying record `lsn` is exactly
//! `lsn` — the invariant the router's version arithmetic rests on. The
//! reached version is published to the shared [`ReplicaRegistry`] after
//! every applied record.
//!
//! This file is on the analyzer's clock allowlist: the optional
//! `apply_delay` (replication-lag injection for tests and benchmarks)
//! sleeps between records, and the tailer's shutdown poll bounds its
//! condvar waits with a real timeout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use probesim_service::QueryService;

use crate::log::UpdateLog;
use crate::registry::ReplicaRegistry;

/// How long the tailer blocks for new records before re-checking the
/// shutdown flag.
const TAIL_POLL: Duration = Duration::from_millis(5);

/// One log-tailing serving replica. Dropping it stops and joins the
/// tailer thread.
pub struct Replica {
    service: Arc<QueryService>,
    slot: usize,
    shutdown: Arc<AtomicBool>,
    tailer: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("slot", &self.slot)
            .field("applied", &self.service.version())
            .finish_non_exhaustive()
    }
}

impl Replica {
    /// Spawns the tailer thread for `service` (already seeded with the
    /// fleet's base graph), applying records from `log` and publishing
    /// progress to `registry` slot `slot`. `apply_delay` injects
    /// replication lag before each applied record.
    pub(crate) fn spawn(
        service: Arc<QueryService>,
        slot: usize,
        log: &UpdateLog,
        registry: ReplicaRegistry,
        apply_delay: Option<Duration>,
    ) -> Replica {
        let shutdown = Arc::new(AtomicBool::new(false));
        let tailer = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&shutdown);
            let mut cursor = log.tail(1);
            std::thread::Builder::new()
                .name(format!("probesim-replica-{slot}"))
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let batch = cursor.wait_next(TAIL_POLL);
                        for record in batch {
                            if let Some(delay) = apply_delay {
                                std::thread::sleep(delay);
                            }
                            let commit = service.commit(record.update);
                            debug_assert_eq!(
                                commit.version, record.lsn,
                                "replica version diverged from the log LSN"
                            );
                            registry.publish_applied(slot, commit.version);
                        }
                    }
                })
                .expect("invariant: the OS spawns replica tailer threads")
        };
        Replica {
            service,
            slot,
            shutdown,
            tailer: Some(tailer),
        }
    }

    /// The replica's serving endpoint.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// The replica's registry slot.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.tailer.take() {
            let _ = handle.join();
        }
    }
}
