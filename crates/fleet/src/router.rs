//! The consistency-aware router and the fleet facade.
//!
//! A [`Fleet`] owns one **primary** (the only store mutations enter),
//! the shared [`UpdateLog`], and a set of log-tailing [`Replica`]s.
//! The request lifecycle is *append → replicate → route → answer*:
//!
//! 1. [`Fleet::commit`] applies the update to the primary and appends
//!    it to the log in one critical section, so the record's LSN equals
//!    the store version the update produced — the returned
//!    [`Commit`] token is immediately usable as
//!    `Consistency::AtLeastVersion(commit.version)`;
//! 2. replicas tail the log and publish their applied versions through
//!    the [`ReplicaRegistry`];
//! 3. [`Fleet::call`] routes by consistency level — `Latest` to the
//!    primary, `AtLeastVersion(v)` to any caught-up replica (blocking
//!    on replication lag up to the request's deadline budget),
//!    `Pinned(v)` to a replica still retaining `v` — picking the
//!    least-loaded eligible endpoint and shedding load with typed
//!    errors when the queue or the replication lag would blow the
//!    deadline;
//! 4. the chosen `QueryService` answers against its own snapshot.
//!
//! This file is on the analyzer's clock allowlist: routing measures the
//! catch-up wait to shrink the deadline it forwards downstream.

use std::sync::Arc;
use std::time::{Duration, Instant};

use probesim_core::ProbeSimConfig;
use probesim_graph::{Commit, CsrGraph, GraphStore, GraphUpdate};
use probesim_service::{
    Consistency, QueryService, Request, Response, ServiceBuilder, ServiceError,
};

use crate::log::UpdateLog;
use crate::registry::ReplicaRegistry;
use crate::replica::Replica;

/// Errors the fleet adds on top of [`ServiceError`].
#[derive(Debug)]
pub enum FleetError {
    /// The chosen endpoint failed the request (query error, version not
    /// retained, shutdown, …).
    Service(ServiceError),
    /// Every eligible endpoint's queue is at the admission limit; the
    /// request was shed instead of queued behind it.
    Overloaded {
        /// Queue depth of the least-loaded eligible endpoint.
        queue_depth: u64,
        /// The fleet's admission limit ([`FleetBuilder::max_pending`]).
        limit: u64,
    },
    /// No replica reached the requested version within the deadline
    /// budget.
    LaggingReplicas {
        /// The version the request demanded.
        requested: u64,
        /// The most advanced replica's applied version at give-up time.
        newest_applied: u64,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Service(err) => write!(f, "service error: {err}"),
            FleetError::Overloaded { queue_depth, limit } => write!(
                f,
                "overloaded: least-loaded eligible endpoint has {queue_depth} queued (limit {limit})"
            ),
            FleetError::LaggingReplicas {
                requested,
                newest_applied,
            } => write!(
                f,
                "lagging replicas: requested version {requested}, newest applied {newest_applied}"
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Service(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ServiceError> for FleetError {
    fn from(err: ServiceError) -> FleetError {
        FleetError::Service(err)
    }
}

/// One row of [`Fleet::status`]: a cheap snapshot of a replica's
/// replication and load state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Registry slot / replica index.
    pub replica: usize,
    /// Store version the replica has applied up to.
    pub applied_version: u64,
    /// Requests submitted but not yet answered.
    pub queue_depth: u64,
    /// Oldest version the replica can still serve `Pinned` reads for.
    pub oldest_retained: u64,
}

/// Builder for a [`Fleet`]. Every endpoint (primary and replicas) gets
/// an identically-configured `QueryService` over its own copy of the
/// base graph.
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    config: ProbeSimConfig,
    replicas: usize,
    workers: usize,
    cache_capacity: usize,
    retained_versions: usize,
    default_deadline: Option<Duration>,
    max_pending: u64,
    catch_up: Duration,
    lag: Vec<Option<Duration>>,
}

impl FleetBuilder {
    /// A builder with 2 replicas, 1 worker per endpoint, a 256-entry
    /// cache, 8 retained versions, a 1024-deep admission limit and a
    /// 250 ms catch-up budget for deadline-less reads.
    pub fn new(config: ProbeSimConfig) -> FleetBuilder {
        FleetBuilder {
            config,
            replicas: 2,
            workers: 1,
            cache_capacity: 256,
            retained_versions: 8,
            default_deadline: None,
            max_pending: 1024,
            catch_up: Duration::from_millis(250),
            lag: Vec::new(),
        }
    }

    /// Number of log-tailing replicas (min 1).
    pub fn replicas(mut self, replicas: usize) -> FleetBuilder {
        self.replicas = replicas.max(1);
        self
    }

    /// Worker threads per endpoint.
    pub fn workers(mut self, workers: usize) -> FleetBuilder {
        self.workers = workers.max(1);
        self
    }

    /// Result-cache capacity per endpoint.
    pub fn cache_capacity(mut self, capacity: usize) -> FleetBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// Pinned-read retention window per endpoint.
    pub fn retained_versions(mut self, retained: usize) -> FleetBuilder {
        self.retained_versions = retained;
        self
    }

    /// Default deadline forwarded to every endpoint.
    pub fn default_deadline(mut self, deadline: Duration) -> FleetBuilder {
        self.default_deadline = Some(deadline);
        self
    }

    /// Admission limit: a request is shed with
    /// [`FleetError::Overloaded`] when the least-loaded eligible
    /// endpoint already has this many requests queued. Zero admits
    /// nothing.
    pub fn max_pending(mut self, limit: u64) -> FleetBuilder {
        self.max_pending = limit;
        self
    }

    /// How long an `AtLeastVersion` read without a deadline may block
    /// on replication lag.
    pub fn catch_up(mut self, budget: Duration) -> FleetBuilder {
        self.catch_up = budget;
        self
    }

    /// Injects replication lag: replica `slot` sleeps `delay` before
    /// applying each log record (testing / lag-sensitivity benchmarks).
    pub fn lag(mut self, slot: usize, delay: Duration) -> FleetBuilder {
        if self.lag.len() <= slot {
            self.lag.resize(slot + 1, None);
        }
        if let Some(entry) = self.lag.get_mut(slot) {
            *entry = Some(delay);
        }
        self
    }

    /// Builds the fleet: one primary plus `replicas` tailing replicas,
    /// each seeded with its own copy of `base`.
    pub fn build(self, base: CsrGraph) -> Fleet {
        let endpoint = |graph: CsrGraph| {
            let mut builder = ServiceBuilder::new(self.config.clone())
                .workers(self.workers)
                .cache_capacity(self.cache_capacity)
                .retained_versions(self.retained_versions);
            if let Some(deadline) = self.default_deadline {
                builder = builder.default_deadline(deadline);
            }
            Arc::new(builder.build(GraphStore::from_csr(graph)))
        };
        let log = UpdateLog::new();
        let registry = ReplicaRegistry::new(self.replicas);
        let primary = endpoint(base.clone());
        let replicas = (0..self.replicas)
            .map(|slot| {
                let delay = self.lag.get(slot).copied().flatten();
                Replica::spawn(endpoint(base.clone()), slot, &log, registry.clone(), delay)
            })
            .collect();
        Fleet {
            log,
            registry,
            primary,
            replicas,
            max_pending: self.max_pending,
            catch_up: self.catch_up,
        }
    }
}

/// A replicated serving fleet (see the module docs for the request
/// lifecycle). Dropping it stops every replica tailer.
pub struct Fleet {
    log: UpdateLog,
    registry: ReplicaRegistry,
    primary: Arc<QueryService>,
    replicas: Vec<Replica>,
    max_pending: u64,
    catch_up: Duration,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("version", &self.version())
            .field("replicas", &self.registry.applied_versions())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Starts a [`FleetBuilder`].
    pub fn builder(config: ProbeSimConfig) -> FleetBuilder {
        FleetBuilder::new(config)
    }

    /// Applies one update through the primary and, if effective,
    /// appends it to the log — atomically, under the log's append lock,
    /// so the record's LSN equals the produced store version. The
    /// returned token makes read-your-writes a one-liner:
    /// `fleet.call(request.with_consistency(Consistency::AtLeastVersion(commit.version)))`.
    ///
    /// All fleet mutations must go through here (or
    /// [`Fleet::commit_all`]); writing to the primary service directly
    /// would desynchronize the log.
    pub fn commit(&self, update: GraphUpdate) -> Commit {
        let primary = &self.primary;
        let mut token = None;
        self.log.append_with(|next_lsn| {
            let commit = primary.commit(update);
            let effective = commit.was_effective();
            debug_assert!(
                !effective || commit.version == next_lsn,
                "primary version diverged from the log LSN"
            );
            token = Some(commit);
            effective.then_some(update)
        });
        token.expect("invariant: the append producer always runs")
    }

    /// Applies a batch in order; the returned token carries the final
    /// version and the total number of effective updates.
    pub fn commit_all<I: IntoIterator<Item = GraphUpdate>>(&self, updates: I) -> Commit {
        let mut last = Commit {
            version: self.version(),
            effective: 0,
        };
        for update in updates {
            let commit = self.commit(update);
            last = Commit {
                version: commit.version,
                effective: last.effective + commit.effective,
            };
        }
        last
    }

    /// Routes `request` by its consistency level and answers it.
    pub fn call(&self, request: Request) -> Result<Response, FleetError> {
        match request.consistency {
            Consistency::Latest => self.dispatch(&[&self.primary], request),
            Consistency::AtLeastVersion(version) => self.call_at_least(version, request),
            Consistency::Pinned(version) => self.call_pinned(version, request),
        }
    }

    fn call_at_least(&self, version: u64, request: Request) -> Result<Response, FleetError> {
        // Block on replication lag, but never past the request's own
        // deadline (or the builder's catch-up budget without one), and
        // charge the wait against the deadline we forward.
        let budget = request.deadline.unwrap_or(self.catch_up);
        let started = Instant::now();
        if !self.registry.wait_for_any_at_least(version, budget) {
            return Err(FleetError::LaggingReplicas {
                requested: version,
                newest_applied: self.registry.newest_applied(),
            });
        }
        let request = match request.deadline {
            Some(deadline) => request.with_deadline(deadline.saturating_sub(started.elapsed())),
            None => request,
        };
        let eligible: Vec<&Arc<QueryService>> = self
            .replicas
            .iter()
            .filter(|replica| self.registry.applied(replica.slot()) >= version)
            .map(Replica::service)
            .collect();
        self.dispatch(&eligible, request)
    }

    fn call_pinned(&self, version: u64, request: Request) -> Result<Response, FleetError> {
        let eligible: Vec<&Arc<QueryService>> = self
            .replicas
            .iter()
            .filter(|replica| {
                self.registry.applied(replica.slot()) >= version
                    && replica.service().oldest_retained_version() <= version
            })
            .map(Replica::service)
            .collect();
        if eligible.is_empty() {
            // No replica retains it; the primary either serves the pin
            // or produces the typed `VersionNotRetained` error.
            return self.dispatch(&[&self.primary], request);
        }
        self.dispatch(&eligible, request)
    }

    /// Admission control + least-loaded selection over the eligible
    /// endpoints, then a blocking call on the winner.
    fn dispatch(
        &self,
        eligible: &[&Arc<QueryService>],
        request: Request,
    ) -> Result<Response, FleetError> {
        let service = eligible
            .iter()
            .min_by_key(|service| service.queue_depth())
            .expect("invariant: the router always offers at least one endpoint");
        let queue_depth = service.queue_depth();
        if queue_depth >= self.max_pending {
            return Err(FleetError::Overloaded {
                queue_depth,
                limit: self.max_pending,
            });
        }
        service.call(request).map_err(FleetError::Service)
    }

    /// The primary's newest published version.
    pub fn version(&self) -> u64 {
        self.primary.version()
    }

    /// The update log (replay, serialization, external tailing).
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// The shared applied-version registry.
    pub fn registry(&self) -> &ReplicaRegistry {
        &self.registry
    }

    /// The primary endpoint (all `Latest` reads; never write to it
    /// directly — use [`Fleet::commit`]).
    pub fn primary(&self) -> &Arc<QueryService> {
        &self.primary
    }

    /// The replicas, in slot order.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// A cheap per-replica snapshot of applied version, queue depth and
    /// retention floor.
    pub fn status(&self) -> Vec<ReplicaStatus> {
        self.replicas
            .iter()
            .map(|replica| ReplicaStatus {
                replica: replica.slot(),
                applied_version: self.registry.applied(replica.slot()),
                queue_depth: replica.service().queue_depth(),
                oldest_retained: replica.service().oldest_retained_version(),
            })
            .collect()
    }

    /// Blocks until every replica has applied `version`, up to
    /// `timeout`. Returns whether replication caught up.
    pub fn wait_for_replication(&self, version: u64, timeout: Duration) -> bool {
        self.registry.wait_for_all_at_least(version, timeout)
    }
}
