//! The consistency-aware, self-healing router and the fleet facade.
//!
//! A [`Fleet`] owns one **primary** (the only store mutations enter),
//! the shared [`UpdateLog`], a set of log-tailing [`Replica`]s and a
//! supervisor thread that keeps them alive. The request lifecycle is
//! *append → replicate → route → answer*:
//!
//! 1. [`Fleet::commit`] applies the update to the primary and appends
//!    it to the log in one critical section, so the record's LSN equals
//!    the store version the update produced — the returned
//!    [`Commit`] token is immediately usable as
//!    `Consistency::AtLeastVersion(commit.version)`;
//! 2. replicas tail the log and publish their applied versions through
//!    the [`ReplicaRegistry`]; the supervisor checkpoints the primary
//!    on cadence, watches replica progress (driving each slot's
//!    [`ReplicaHealth`]) and respawns dead tailers from the latest
//!    checkpoint under a bounded restart budget;
//! 3. [`Fleet::call`] routes by consistency level — `Latest` to the
//!    primary, `AtLeastVersion(v)` to any caught-up **routable**
//!    replica (blocking on replication lag up to the request's deadline
//!    budget), `Pinned(v)` to a replica still retaining `v` — picking
//!    the least-loaded eligible endpoint and shedding load with typed
//!    errors when the queue or the replication lag would blow the
//!    deadline. Quarantined replicas are never dispatched into. When an
//!    endpoint fails under the request (it was respawned mid-flight, or
//!    regressed during recovery), the router counts a failover and
//!    retries another endpoint with capped exponential backoff, every
//!    wait still charged against the deadline;
//! 4. the chosen `QueryService` answers against its own snapshot.
//!
//! This file is on the analyzer's clock allowlist: routing measures the
//! catch-up wait to shrink the deadline it forwards downstream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use probesim_core::ProbeSimConfig;
use probesim_graph::{Commit, CsrGraph, GraphStore, GraphUpdate};
use probesim_service::{
    Consistency, QueryService, Request, Response, ServiceBuilder, ServiceError,
};

use crate::chaos::FaultPlan;
use crate::checkpoint::Checkpoint;
use crate::log::UpdateLog;
use crate::registry::{ReplicaHealth, ReplicaRegistry};
use crate::replica::{EndpointFactory, Replica};
use crate::supervisor::{
    CheckpointCell, Supervisor, SupervisorConfig, SupervisorCounters, SupervisorStats,
};

/// First failover retry pause; doubled per retry up to [`BACKOFF_CAP`].
const BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Failover backoff ceiling.
const BACKOFF_CAP: Duration = Duration::from_millis(32);

/// Errors the fleet adds on top of [`ServiceError`].
#[derive(Debug)]
pub enum FleetError {
    /// The chosen endpoint failed the request (query error, version not
    /// retained, shutdown, …).
    Service(ServiceError),
    /// Every eligible endpoint's queue is at the admission limit; the
    /// request was shed instead of queued behind it.
    Overloaded {
        /// Queue depth of the least-loaded eligible endpoint.
        queue_depth: u64,
        /// The fleet's admission limit ([`FleetBuilder::max_pending`]).
        limit: u64,
    },
    /// No routable replica reached the requested version within the
    /// deadline budget.
    LaggingReplicas {
        /// The version the request demanded.
        requested: u64,
        /// The most advanced replica's applied version at give-up time.
        newest_applied: u64,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Service(err) => write!(f, "service error: {err}"),
            FleetError::Overloaded { queue_depth, limit } => write!(
                f,
                "overloaded: least-loaded eligible endpoint has {queue_depth} queued (limit {limit})"
            ),
            FleetError::LaggingReplicas {
                requested,
                newest_applied,
            } => write!(
                f,
                "lagging replicas: requested version {requested}, newest applied {newest_applied}"
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Service(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ServiceError> for FleetError {
    fn from(err: ServiceError) -> FleetError {
        FleetError::Service(err)
    }
}

/// One row of [`Fleet::status`]: a cheap snapshot of a replica's
/// replication, health and load state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Registry slot / replica index.
    pub replica: usize,
    /// Store version the replica has applied up to.
    pub applied_version: u64,
    /// Requests submitted but not yet answered.
    pub queue_depth: u64,
    /// Oldest version the replica can still serve `Pinned` reads for.
    pub oldest_retained: u64,
    /// Routing health as last judged by the supervisor's watchdog.
    pub health: ReplicaHealth,
    /// How many times the supervisor has respawned this replica.
    pub restarts: u64,
    /// The LSN this replica last salvaged its local log up to, if it
    /// ever detected corruption.
    pub last_salvage_lsn: Option<u64>,
}

/// Builder for a [`Fleet`]. Every endpoint (primary and replicas) gets
/// an identically-configured `QueryService` over its own copy of the
/// base graph.
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    config: ProbeSimConfig,
    replicas: usize,
    workers: usize,
    cache_capacity: usize,
    retained_versions: usize,
    default_deadline: Option<Duration>,
    max_pending: u64,
    catch_up: Duration,
    faults: FaultPlan,
    supervision_tick: Duration,
    checkpoint_every: u64,
    restart_budget: u64,
    degraded_after: Duration,
    quarantine_after: Duration,
}

impl FleetBuilder {
    /// A builder with 2 replicas, 1 worker per endpoint, a 256-entry
    /// cache, 8 retained versions, a 1024-deep admission limit, a
    /// 250 ms catch-up budget for deadline-less reads, and supervision
    /// defaults of a 2 ms tick, a checkpoint every 32 versions, a
    /// 3-respawn restart budget and a 200 ms / 1 s degrade/quarantine
    /// watchdog.
    pub fn new(config: ProbeSimConfig) -> FleetBuilder {
        FleetBuilder {
            config,
            replicas: 2,
            workers: 1,
            cache_capacity: 256,
            retained_versions: 8,
            default_deadline: None,
            max_pending: 1024,
            catch_up: Duration::from_millis(250),
            faults: FaultPlan::none(),
            supervision_tick: Duration::from_millis(2),
            checkpoint_every: 32,
            restart_budget: 3,
            degraded_after: Duration::from_millis(200),
            quarantine_after: Duration::from_secs(1),
        }
    }

    /// Number of log-tailing replicas (min 1).
    pub fn replicas(mut self, replicas: usize) -> FleetBuilder {
        self.replicas = replicas.max(1);
        self
    }

    /// Worker threads per endpoint.
    pub fn workers(mut self, workers: usize) -> FleetBuilder {
        self.workers = workers.max(1);
        self
    }

    /// Result-cache capacity per endpoint.
    pub fn cache_capacity(mut self, capacity: usize) -> FleetBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// Pinned-read retention window per endpoint.
    pub fn retained_versions(mut self, retained: usize) -> FleetBuilder {
        self.retained_versions = retained;
        self
    }

    /// Default deadline forwarded to every endpoint.
    pub fn default_deadline(mut self, deadline: Duration) -> FleetBuilder {
        self.default_deadline = Some(deadline);
        self
    }

    /// Admission limit: a request is shed with
    /// [`FleetError::Overloaded`] when the least-loaded eligible
    /// endpoint already has this many requests queued. Zero admits
    /// nothing.
    pub fn max_pending(mut self, limit: u64) -> FleetBuilder {
        self.max_pending = limit;
        self
    }

    /// How long an `AtLeastVersion` read without a deadline may block
    /// on replication lag.
    pub fn catch_up(mut self, budget: Duration) -> FleetBuilder {
        self.catch_up = budget;
        self
    }

    /// Injects replication lag: replica `slot` sleeps `delay` before
    /// applying each log record (testing / lag-sensitivity benchmarks).
    /// Shorthand for a slow-apply fault in the plan.
    pub fn lag(mut self, slot: usize, delay: Duration) -> FleetBuilder {
        self.faults = self.faults.with_slow_apply(slot, delay);
        self
    }

    /// Installs a deterministic [`FaultPlan`] (merged over any `lag`
    /// shorthand already set — later wins per slot/fault).
    pub fn faults(mut self, plan: FaultPlan) -> FleetBuilder {
        self.faults = plan;
        self
    }

    /// Supervision loop period: how quickly crashes are detected and
    /// health re-judged.
    pub fn supervision_tick(mut self, tick: Duration) -> FleetBuilder {
        self.supervision_tick = tick.max(Duration::from_micros(100));
        self
    }

    /// Checkpoint the primary every `versions` store versions (0
    /// disables the cadence; [`Fleet::checkpoint_now`] still works).
    pub fn checkpoint_every(mut self, versions: u64) -> FleetBuilder {
        self.checkpoint_every = versions;
        self
    }

    /// Respawns allowed per replica before it is retired (permanently
    /// quarantined). Zero disables respawn entirely.
    pub fn restart_budget(mut self, budget: u64) -> FleetBuilder {
        self.restart_budget = budget;
        self
    }

    /// Progress watchdog thresholds: a behind, non-progressing replica
    /// turns `Degraded` after `degraded_after` and `Quarantined` after
    /// `quarantine_after`.
    pub fn watchdog(
        mut self,
        degraded_after: Duration,
        quarantine_after: Duration,
    ) -> FleetBuilder {
        self.degraded_after = degraded_after;
        self.quarantine_after = quarantine_after.max(degraded_after);
        self
    }

    /// Builds the fleet: one primary plus `replicas` tailing replicas,
    /// each seeded with its own copy of `base`, plus the supervision
    /// thread.
    pub fn build(self, base: CsrGraph) -> Fleet {
        let service_config = self.config.clone();
        let workers = self.workers;
        let cache_capacity = self.cache_capacity;
        let retained_versions = self.retained_versions;
        let default_deadline = self.default_deadline;
        let factory: EndpointFactory = Arc::new(move |store: GraphStore| {
            let mut builder = ServiceBuilder::new(service_config.clone())
                .workers(workers)
                .cache_capacity(cache_capacity)
                .retained_versions(retained_versions);
            if let Some(deadline) = default_deadline {
                builder = builder.default_deadline(deadline);
            }
            Arc::new(builder.build(store))
        });
        let log = UpdateLog::new();
        let registry = ReplicaRegistry::new(self.replicas);
        let primary = factory(GraphStore::from_csr(base.clone()));
        let replicas: Vec<Replica> = (0..self.replicas)
            .map(|slot| {
                Replica::spawn(
                    Arc::clone(&factory),
                    base.clone(),
                    slot,
                    &log,
                    registry.clone(),
                    self.faults.for_slot(slot),
                )
            })
            .collect();
        let cell = CheckpointCell::new();
        let counters = Arc::new(SupervisorCounters::default());
        let supervisor = Supervisor::spawn(
            SupervisorConfig {
                tick: self.supervision_tick,
                checkpoint_every: self.checkpoint_every,
                restart_budget: self.restart_budget,
                degraded_after: self.degraded_after,
                quarantine_after: self.quarantine_after,
            },
            Arc::clone(&primary),
            log.clone(),
            registry.clone(),
            replicas.iter().map(|r| Arc::clone(r.shared())).collect(),
            Arc::clone(&cell),
            Arc::clone(&counters),
        );
        Fleet {
            log,
            registry,
            primary,
            // Declared (and therefore dropped) before `replicas`: the
            // supervisor must stop before the replicas it respawns are
            // torn down.
            _supervisor: supervisor,
            replicas,
            cell,
            counters,
            failovers: AtomicU64::new(0),
            max_pending: self.max_pending,
            catch_up: self.catch_up,
        }
    }
}

/// A replicated, self-healing serving fleet (see the module docs for
/// the request lifecycle). Dropping it stops the supervisor and every
/// replica tailer.
pub struct Fleet {
    log: UpdateLog,
    registry: ReplicaRegistry,
    primary: Arc<QueryService>,
    _supervisor: Supervisor,
    replicas: Vec<Replica>,
    cell: Arc<CheckpointCell>,
    counters: Arc<SupervisorCounters>,
    failovers: AtomicU64,
    max_pending: u64,
    catch_up: Duration,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("version", &self.version())
            .field("replicas", &self.registry.applied_versions())
            .field("health", &self.registry.health_states())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Starts a [`FleetBuilder`].
    pub fn builder(config: ProbeSimConfig) -> FleetBuilder {
        FleetBuilder::new(config)
    }

    /// Applies one update through the primary and, if effective,
    /// appends it to the log — atomically, under the log's append lock,
    /// so the record's LSN equals the produced store version. The
    /// returned token makes read-your-writes a one-liner:
    /// `fleet.call(request.with_consistency(Consistency::AtLeastVersion(commit.version)))`.
    ///
    /// All fleet mutations must go through here (or
    /// [`Fleet::commit_all`]); writing to the primary service directly
    /// would desynchronize the log.
    pub fn commit(&self, update: GraphUpdate) -> Commit {
        let primary = &self.primary;
        let mut token = None;
        self.log.append_with(|next_lsn| {
            let commit = primary.commit(update);
            let effective = commit.was_effective();
            debug_assert!(
                !effective || commit.version == next_lsn,
                "primary version diverged from the log LSN"
            );
            token = Some(commit);
            effective.then_some(update)
        });
        token.expect("invariant: the append producer always runs")
    }

    /// Applies a batch in order; the returned token carries the final
    /// version and the total number of effective updates.
    pub fn commit_all<I: IntoIterator<Item = GraphUpdate>>(&self, updates: I) -> Commit {
        let mut last = Commit {
            version: self.version(),
            effective: 0,
        };
        for update in updates {
            let commit = self.commit(update);
            last = Commit {
                version: commit.version,
                effective: last.effective + commit.effective,
            };
        }
        last
    }

    /// Routes `request` by its consistency level and answers it.
    pub fn call(&self, request: Request) -> Result<Response, FleetError> {
        match request.consistency {
            Consistency::Latest => self.dispatch(&[Arc::clone(&self.primary)], request),
            Consistency::AtLeastVersion(version) => self.call_at_least(version, request),
            Consistency::Pinned(version) => self.call_pinned(version, request),
        }
    }

    /// Whether a dispatch error is worth retrying on another endpoint:
    /// the endpoint was torn down under the request (its replica got
    /// respawned) or regressed below the demanded floor (it restarted
    /// from a checkpoint and is re-catching up). Deterministic query
    /// errors, deadline exhaustion and load shedding are not.
    fn failover_worthy(err: &FleetError) -> bool {
        matches!(
            err,
            FleetError::Service(ServiceError::ShuttingDown)
                | FleetError::Service(ServiceError::VersionNotReached { .. })
        )
    }

    fn call_at_least(&self, version: u64, request: Request) -> Result<Response, FleetError> {
        // Block on replication lag, but never past the request's own
        // deadline (or the builder's catch-up budget without one), and
        // charge every wait — catch-up and failover backoff alike —
        // against the deadline we forward.
        let budget = request.deadline.unwrap_or(self.catch_up);
        let started = Instant::now();
        let mut backoff = BACKOFF_BASE;
        loop {
            let remaining = budget.saturating_sub(started.elapsed());
            if !self
                .registry
                .wait_for_any_routable_at_least(version, remaining)
            {
                return Err(FleetError::LaggingReplicas {
                    requested: version,
                    newest_applied: self.registry.newest_applied(),
                });
            }
            let eligible: Vec<Arc<QueryService>> = self
                .replicas
                .iter()
                .filter(|replica| {
                    self.registry.health(replica.slot()).is_routable()
                        && self.registry.applied(replica.slot()) >= version
                })
                .map(Replica::service)
                .collect();
            if eligible.is_empty() {
                // Health or progress flipped between the wait and the
                // scan; re-wait unless the budget is gone.
                if budget.saturating_sub(started.elapsed()).is_zero() {
                    return Err(FleetError::LaggingReplicas {
                        requested: version,
                        newest_applied: self.registry.newest_applied(),
                    });
                }
                continue;
            }
            let forwarded = match request.deadline {
                Some(deadline) => request.with_deadline(deadline.saturating_sub(started.elapsed())),
                None => request,
            };
            match self.dispatch(&eligible, forwarded) {
                Err(err) if Self::failover_worthy(&err) => {
                    self.failovers.fetch_add(1, Ordering::AcqRel);
                    let remaining = budget.saturating_sub(started.elapsed());
                    if remaining.is_zero() {
                        return Err(err);
                    }
                    // Capped exponential backoff, bounded by the
                    // registry condvar so a publish or health change
                    // (a recovery landing) cuts the pause short.
                    self.registry.wait_for_event(backoff.min(remaining));
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                }
                outcome => return outcome,
            }
        }
    }

    fn call_pinned(&self, version: u64, request: Request) -> Result<Response, FleetError> {
        let eligible: Vec<Arc<QueryService>> = self
            .replicas
            .iter()
            .filter(|replica| {
                self.registry.health(replica.slot()).is_routable()
                    && self.registry.applied(replica.slot()) >= version
            })
            .map(Replica::service)
            .filter(|service| service.oldest_retained_version() <= version)
            .collect();
        if eligible.is_empty() {
            // No replica retains it; the primary either serves the pin
            // or produces the typed `VersionNotRetained` error.
            return self.dispatch(&[Arc::clone(&self.primary)], request);
        }
        match self.dispatch(&eligible, request) {
            Err(err)
                if Self::failover_worthy(&err)
                    || matches!(
                        err,
                        FleetError::Service(ServiceError::VersionNotRetained { .. })
                    ) =>
            {
                // The chosen replica was respawned (or its retention
                // window moved) under the request: fail over to the
                // primary, the endpoint of last resort for pins.
                self.failovers.fetch_add(1, Ordering::AcqRel);
                self.dispatch(&[Arc::clone(&self.primary)], request)
            }
            outcome => outcome,
        }
    }

    /// Admission control + least-loaded selection over the eligible
    /// endpoints, then a blocking call on the winner.
    fn dispatch(
        &self,
        eligible: &[Arc<QueryService>],
        request: Request,
    ) -> Result<Response, FleetError> {
        let service = eligible
            .iter()
            .min_by_key(|service| service.queue_depth())
            .expect("invariant: the router always offers at least one endpoint");
        let queue_depth = service.queue_depth();
        if queue_depth >= self.max_pending {
            return Err(FleetError::Overloaded {
                queue_depth,
                limit: self.max_pending,
            });
        }
        service.call(request).map_err(FleetError::Service)
    }

    /// The primary's newest published version.
    pub fn version(&self) -> u64 {
        self.primary.version()
    }

    /// The update log (replay, serialization, external tailing).
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// The shared applied-version and health registry.
    pub fn registry(&self) -> &ReplicaRegistry {
        &self.registry
    }

    /// The primary endpoint (all `Latest` reads; never write to it
    /// directly — use [`Fleet::commit`]).
    pub fn primary(&self) -> &Arc<QueryService> {
        &self.primary
    }

    /// The replicas, in slot order.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Captures a checkpoint of the primary right now, retains it for
    /// recoveries and returns it (the manual counterpart of the
    /// supervisor's cadence).
    pub fn checkpoint_now(&self) -> Checkpoint {
        let checkpoint = Checkpoint::from_snapshot(&self.primary.snapshot());
        self.counters.note_checkpoint();
        self.cell.store(checkpoint.clone());
        checkpoint
    }

    /// A clone of the latest retained checkpoint, if any was captured.
    pub fn latest_checkpoint(&self) -> Option<Checkpoint> {
        self.cell.latest()
    }

    /// Cumulative supervisor activity: checkpoints taken and
    /// checkpoint/genesis recoveries performed.
    pub fn supervisor_stats(&self) -> SupervisorStats {
        self.counters.stats()
    }

    /// How many times the router failed over after an endpoint died or
    /// regressed under a dispatched request.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Acquire)
    }

    /// A cheap per-replica snapshot of applied version, queue depth,
    /// retention floor, health, restart count and salvage position.
    pub fn status(&self) -> Vec<ReplicaStatus> {
        self.replicas
            .iter()
            .map(|replica| {
                let slot = replica.slot();
                let service = replica.service();
                ReplicaStatus {
                    replica: slot,
                    applied_version: self.registry.applied(slot),
                    queue_depth: service.queue_depth(),
                    oldest_retained: service.oldest_retained_version(),
                    health: self.registry.health(slot),
                    restarts: self.registry.restarts(slot),
                    last_salvage_lsn: self.registry.last_salvage_lsn(slot),
                }
            })
            .collect()
    }

    /// Blocks until every **routable** replica has applied `version`,
    /// up to `timeout` (replicas quarantined after exhausting their
    /// restart budget are written off). Returns whether replication
    /// caught up.
    pub fn wait_for_replication(&self, version: u64, timeout: Duration) -> bool {
        self.registry
            .wait_for_all_routable_at_least(version, timeout)
    }
}
