//! The durable, replayable update log.
//!
//! Every effective graph mutation the fleet accepts is recorded here as
//! a [`LogRecord`] before any replica sees it. The log is the fleet's
//! source of truth: a replica that tails it from LSN 1 and applies each
//! record in order reconstructs the primary's exact store state, because
//! LSNs and store versions advance in lockstep (every effective mutation
//! bumps exactly one of each — see [`crate::Fleet::commit`]).
//!
//! Two halves:
//!
//! * an **in-memory segment** — an append-only `Vec<LogRecord>` behind a
//!   mutex, with condvar-driven [`LogCursor`]s so tailing replicas block
//!   on new records instead of spinning;
//! * a **binary file codec** ([`encode_log`] / [`decode_log`] and the
//!   `*_file` wrappers) in the spirit of `probesim-graph`'s CSR codec:
//!   magic + format version + record count header, then length-prefixed,
//!   per-record checksummed entries. Decoding detects bad magic, format
//!   drift, truncated tails, flipped bits, and LSN gaps, reporting each
//!   as [`GraphError::Corrupt`].
//!
//! Strict decoding ([`decode_log`]) is all-or-nothing; **salvage**
//! ([`salvage_log`] / [`UpdateLog::salvage`] /
//! [`read_log_file_salvage`]) instead recovers the longest valid
//! checksummed prefix of a damaged stream, reporting the typed
//! [`SalvageReason`] the tail was cut — the startup path for a node
//! whose disk rotted under it. File writes go through a temp sibling +
//! atomic rename so a crash mid-write can never leave a half-written
//! file at the real path.

use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use probesim_graph::{FxHasher, GraphError, GraphUpdate, NodeId};

use std::hash::Hasher;

/// One logged mutation: the log sequence number and the update itself.
///
/// LSNs start at 1 and are contiguous; record `lsn` is always the
/// `lsn`-th record in the log. By the fleet's write-path construction,
/// `lsn` also equals the store version a replica reaches after applying
/// the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// Log sequence number (1-based, contiguous).
    pub lsn: u64,
    /// The graph mutation to apply.
    pub update: GraphUpdate,
}

/// Magic bytes opening every serialized log: "PSLG" (ProbeSim LoG).
const MAGIC: &[u8; 4] = b"PSLG";
/// Bump on any incompatible layout change.
const VERSION: u32 = 1;
/// Serialized payload size of one record: lsn (8) + kind (1) +
/// u (4) + v (4) + checksum (8).
const RECORD_BYTES: u32 = 25;

struct LogInner {
    /// Lock order: `fleet::records` may be held while acquiring the
    /// primary service's locks (the fleet's write path appends under it
    /// via [`UpdateLog::append_with`]); nothing that holds a service
    /// lock ever acquires it.
    records: Mutex<Vec<LogRecord>>,
    /// Signaled (with `records` held) after every append, waking
    /// [`LogCursor::wait_next`].
    appended: Condvar,
}

/// The shared, append-only update log. Cloning is cheap (`Arc` bump)
/// and every clone views the same records.
#[derive(Clone)]
pub struct UpdateLog {
    inner: Arc<LogInner>,
}

impl Default for UpdateLog {
    fn default() -> Self {
        UpdateLog::new()
    }
}

impl std::fmt::Debug for UpdateLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateLog")
            .field("last_lsn", &self.last_lsn())
            .finish()
    }
}

impl UpdateLog {
    /// An empty log; the first appended record gets LSN 1.
    pub fn new() -> UpdateLog {
        UpdateLog {
            inner: Arc::new(LogInner {
                records: Mutex::new(Vec::new()),
                appended: Condvar::new(),
            }),
        }
    }

    /// A log pre-seeded with already-decoded records (replay /
    /// recovery). The records must be contiguous from LSN 1, which
    /// [`decode_log`] guarantees.
    pub fn from_records(records: Vec<LogRecord>) -> UpdateLog {
        let log = UpdateLog::new();
        {
            let mut guard = log.inner.records.lock().expect("log records poisoned");
            *guard = records;
        }
        log
    }

    /// Appends one update, assigning the next LSN. Returns the record.
    pub fn append(&self, update: GraphUpdate) -> LogRecord {
        self.append_with(|_| Some(update))
            .expect("invariant: an unconditional producer always appends")
    }

    /// Runs `produce` under the log's append lock with the LSN the next
    /// record would get. If it returns an update, the record is
    /// appended atomically (no other append can interleave) and tailing
    /// cursors are woken; `None` appends nothing. This is the fleet's
    /// write-path hook: the primary store mutation and the log append
    /// happen under one critical section, so LSNs and store versions
    /// cannot diverge.
    pub fn append_with<F>(&self, produce: F) -> Option<LogRecord>
    where
        F: FnOnce(u64) -> Option<GraphUpdate>,
    {
        let mut records = self.inner.records.lock().expect("log records poisoned");
        let next_lsn = records.len() as u64 + 1;
        let update = produce(next_lsn)?;
        let record = LogRecord {
            lsn: next_lsn,
            update,
        };
        records.push(record);
        self.inner.appended.notify_all();
        Some(record)
    }

    /// The LSN of the newest record (0 when empty).
    pub fn last_lsn(&self) -> u64 {
        self.inner
            .records
            .lock()
            .expect("log records poisoned")
            .len() as u64
    }

    /// Copies out every record with `lsn >= from_lsn`, in LSN order.
    pub fn records_from(&self, from_lsn: u64) -> Vec<LogRecord> {
        let records = self.inner.records.lock().expect("log records poisoned");
        let skip = from_lsn.saturating_sub(1).min(records.len() as u64) as usize;
        records.iter().skip(skip).copied().collect()
    }

    /// A cursor positioned at `from_lsn` (1 tails the whole log).
    pub fn tail(&self, from_lsn: u64) -> LogCursor {
        LogCursor {
            log: self.clone(),
            next_lsn: from_lsn.max(1),
        }
    }

    /// Serializes every record (see [`encode_log`]).
    pub fn encode(&self) -> Vec<u8> {
        let records = self.inner.records.lock().expect("log records poisoned");
        encode_log(&records)
    }

    /// Deserializes a log previously produced by [`UpdateLog::encode`].
    pub fn decode(bytes: &[u8]) -> Result<UpdateLog, GraphError> {
        Ok(UpdateLog::from_records(decode_log(bytes)?))
    }

    /// Like [`UpdateLog::decode`], but recovers the longest valid
    /// prefix of a damaged stream instead of rejecting it outright
    /// (see [`salvage_log`]).
    pub fn salvage(bytes: &[u8]) -> Result<Salvage, GraphError> {
        salvage_log(bytes)
    }
}

/// A tailing read position into an [`UpdateLog`]. Each call returns the
/// records the cursor has not yet seen, in LSN order, and advances.
#[derive(Debug)]
pub struct LogCursor {
    log: UpdateLog,
    next_lsn: u64,
}

impl LogCursor {
    /// The LSN the next returned record will have.
    pub fn position(&self) -> u64 {
        self.next_lsn
    }

    /// Returns all currently-available unseen records without blocking
    /// (empty when caught up).
    pub fn next_batch(&mut self) -> Vec<LogRecord> {
        let batch = self.log.records_from(self.next_lsn);
        self.next_lsn += batch.len() as u64;
        batch
    }

    /// Like [`LogCursor::next_batch`], but blocks up to `timeout` for
    /// at least one new record. Returns an empty batch on timeout.
    pub fn wait_next(&mut self, timeout: Duration) -> Vec<LogRecord> {
        let inner = &self.log.inner;
        let records = inner.records.lock().expect("log records poisoned");
        let want = self.next_lsn;
        let (records, _timed_out) = inner
            .appended
            .wait_timeout_while(records, timeout, |recs| (recs.len() as u64) < want)
            .expect("log records poisoned");
        let skip = want.saturating_sub(1).min(records.len() as u64) as usize;
        let batch: Vec<LogRecord> = records.iter().skip(skip).copied().collect();
        self.next_lsn += batch.len() as u64;
        batch
    }
}

fn record_checksum(record: &LogRecord) -> u64 {
    let (u, v) = record.update.edge();
    let mut hasher = FxHasher::default();
    hasher.write_u64(record.lsn);
    hasher.write_u8(u8::from(record.update.is_insert()));
    hasher.write_u32(u);
    hasher.write_u32(v);
    hasher.finish()
}

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if bytes.len() < n {
        return None;
    }
    let (head, rest) = bytes.split_at(n);
    *bytes = rest;
    Some(head)
}

fn take_u8(bytes: &mut &[u8]) -> Option<u8> {
    take(bytes, 1).map(|b| b.first().copied().unwrap_or(0))
}

pub(crate) fn take_u32(bytes: &mut &[u8]) -> Option<u32> {
    take(bytes, 4).map(|b| {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(b);
        u32::from_le_bytes(raw)
    })
}

pub(crate) fn take_u64(bytes: &mut &[u8]) -> Option<u64> {
    take(bytes, 8).map(|b| {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        u64::from_le_bytes(raw)
    })
}

/// Serializes a record slice: `MAGIC | version | count`, then for every
/// record a `u32` length prefix followed by the payload and its
/// [`FxHasher`] checksum.
pub fn encode_log(records: &[LogRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + records.len() * (RECORD_BYTES as usize + 4));
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, VERSION);
    put_u64(&mut buf, records.len() as u64);
    for record in records {
        let (u, v) = record.update.edge();
        put_u32(&mut buf, RECORD_BYTES);
        put_u64(&mut buf, record.lsn);
        buf.push(u8::from(record.update.is_insert()));
        put_u32(&mut buf, u);
        put_u32(&mut buf, v);
        put_u64(&mut buf, record_checksum(record));
    }
    buf
}

/// Decodes a serialized log, validating magic, format version, record
/// framing, per-record checksums and LSN contiguity (records must run
/// 1, 2, … without gaps). Any violation — including a log whose tail
/// was cut off mid-record — is [`GraphError::Corrupt`].
pub fn decode_log(mut bytes: &[u8]) -> Result<Vec<LogRecord>, GraphError> {
    let bytes = &mut bytes;
    let magic = take(bytes, 4).ok_or_else(|| GraphError::Corrupt("truncated header".into()))?;
    if magic != MAGIC {
        return Err(GraphError::Corrupt(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = take_u32(bytes).ok_or_else(|| GraphError::Corrupt("truncated header".into()))?;
    if version != VERSION {
        return Err(GraphError::Corrupt(format!(
            "unsupported log format version {version}, expected {VERSION}"
        )));
    }
    let count = take_u64(bytes).ok_or_else(|| GraphError::Corrupt("truncated header".into()))?;
    let capacity = usize::try_from(count)
        .ok()
        .filter(|c| c.checked_mul(RECORD_BYTES as usize + 4).is_some())
        .ok_or_else(|| GraphError::Corrupt(format!("implausible record count {count}")))?;
    let mut records = Vec::with_capacity(capacity.min(1 << 20));
    for expected_lsn in 1..=count {
        let len =
            take_u32(bytes).ok_or_else(|| GraphError::Corrupt("truncated record prefix".into()))?;
        if len != RECORD_BYTES {
            return Err(GraphError::Corrupt(format!(
                "record {expected_lsn}: length {len}, expected {RECORD_BYTES}"
            )));
        }
        let mut payload = take(bytes, len as usize)
            .ok_or_else(|| GraphError::Corrupt("truncated record".into()))?;
        let payload = &mut payload;
        let lsn = take_u64(payload).unwrap_or(0);
        let kind = take_u8(payload).unwrap_or(2);
        let u: NodeId = take_u32(payload).unwrap_or(0);
        let v: NodeId = take_u32(payload).unwrap_or(0);
        let stored_checksum = take_u64(payload).unwrap_or(0);
        let update = match kind {
            0 => GraphUpdate::Remove { u, v },
            1 => GraphUpdate::Insert { u, v },
            other => {
                return Err(GraphError::Corrupt(format!(
                    "record {expected_lsn}: unknown update kind {other}"
                )))
            }
        };
        let record = LogRecord { lsn, update };
        if record_checksum(&record) != stored_checksum {
            return Err(GraphError::Corrupt(format!(
                "record {expected_lsn}: checksum mismatch"
            )));
        }
        if lsn != expected_lsn {
            return Err(GraphError::Corrupt(format!(
                "LSN gap: record {expected_lsn} carries LSN {lsn}"
            )));
        }
        records.push(record);
    }
    if !bytes.is_empty() {
        return Err(GraphError::Corrupt(format!(
            "{} trailing bytes after the last record",
            bytes.len()
        )));
    }
    Ok(records)
}

/// Why salvage cut the tail of a damaged log stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SalvageReason {
    /// The stream ended mid-record: a torn write or a truncation.
    TruncatedRecord,
    /// A record's length prefix disagreed with the format.
    BadRecordLength,
    /// A record failed its payload checksum (flipped bits).
    ChecksumMismatch,
    /// A record decoded cleanly but carried a non-contiguous LSN.
    LsnGap,
    /// A record carried an update kind the codec does not know.
    UnknownUpdateKind,
    /// Extra bytes followed the last record the header promised (the
    /// whole claimed prefix still decoded).
    TrailingBytes,
}

impl std::fmt::Display for SalvageReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reason = match self {
            SalvageReason::TruncatedRecord => "stream ended mid-record",
            SalvageReason::BadRecordLength => "bad record length prefix",
            SalvageReason::ChecksumMismatch => "record checksum mismatch",
            SalvageReason::LsnGap => "non-contiguous LSN",
            SalvageReason::UnknownUpdateKind => "unknown update kind",
            SalvageReason::TrailingBytes => "trailing bytes after the last record",
        };
        f.write_str(reason)
    }
}

/// The result of salvaging a damaged log stream: the longest valid
/// checksummed prefix, plus why (and therefore where) the tail was cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Salvage {
    /// The recovered prefix, contiguous from LSN 1.
    pub records: Vec<LogRecord>,
    /// Why the tail was cut; `None` when the whole stream decoded.
    pub cut: Option<SalvageReason>,
}

impl Salvage {
    /// LSN of the newest salvaged record (0 when nothing survived).
    pub fn last_lsn(&self) -> u64 {
        self.records.len() as u64
    }

    /// Whether the stream decoded end to end with nothing cut.
    pub fn is_clean(&self) -> bool {
        self.cut.is_none()
    }

    /// Seeds an [`UpdateLog`] with the salvaged prefix.
    pub fn into_log(self) -> UpdateLog {
        UpdateLog::from_records(self.records)
    }
}

/// Decodes as much of a damaged log stream as can be trusted: the
/// longest prefix of records that frame, checksum, and chain
/// contiguously from LSN 1. The header (magic, format version, count)
/// must still be intact — with the header gone nothing in the stream
/// can be trusted, and the result is a hard [`GraphError::Corrupt`]
/// like [`decode_log`]'s. Past the header, every defect merely cuts
/// the tail and is reported as the [`Salvage::cut`] reason.
pub fn salvage_log(mut bytes: &[u8]) -> Result<Salvage, GraphError> {
    let bytes = &mut bytes;
    let magic = take(bytes, 4).ok_or_else(|| GraphError::Corrupt("truncated header".into()))?;
    if magic != MAGIC {
        return Err(GraphError::Corrupt(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = take_u32(bytes).ok_or_else(|| GraphError::Corrupt("truncated header".into()))?;
    if version != VERSION {
        return Err(GraphError::Corrupt(format!(
            "unsupported log format version {version}, expected {VERSION}"
        )));
    }
    let count = take_u64(bytes).ok_or_else(|| GraphError::Corrupt("truncated header".into()))?;
    let mut records = Vec::new();
    let mut cut = None;
    for expected_lsn in 1..=count {
        let Some(len) = take_u32(bytes) else {
            cut = Some(SalvageReason::TruncatedRecord);
            break;
        };
        if len != RECORD_BYTES {
            cut = Some(SalvageReason::BadRecordLength);
            break;
        }
        let Some(mut payload) = take(bytes, len as usize) else {
            cut = Some(SalvageReason::TruncatedRecord);
            break;
        };
        let payload = &mut payload;
        let lsn = take_u64(payload).unwrap_or(0);
        let kind = take_u8(payload).unwrap_or(2);
        let u: NodeId = take_u32(payload).unwrap_or(0);
        let v: NodeId = take_u32(payload).unwrap_or(0);
        let stored_checksum = take_u64(payload).unwrap_or(0);
        let update = match kind {
            0 => GraphUpdate::Remove { u, v },
            1 => GraphUpdate::Insert { u, v },
            _ => {
                cut = Some(SalvageReason::UnknownUpdateKind);
                break;
            }
        };
        let record = LogRecord { lsn, update };
        if record_checksum(&record) != stored_checksum {
            cut = Some(SalvageReason::ChecksumMismatch);
            break;
        }
        if lsn != expected_lsn {
            cut = Some(SalvageReason::LsnGap);
            break;
        }
        records.push(record);
    }
    if cut.is_none() && !bytes.is_empty() {
        cut = Some(SalvageReason::TrailingBytes);
    }
    Ok(Salvage { records, cut })
}

/// The temp sibling a durable write stages into before the atomic
/// rename: `<name>.tmp` next to `path`.
pub(crate) fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("file"));
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `bytes` to `path` through a temp sibling + atomic rename: a
/// crash mid-write leaves at worst a stale `.tmp` next to an intact
/// `path`, never a half-written file that fails decode on restart.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), GraphError> {
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Writes a serialized log to a file (temp sibling + atomic rename).
pub fn write_log_file<P: AsRef<Path>>(path: P, records: &[LogRecord]) -> Result<(), GraphError> {
    write_atomic(path.as_ref(), &encode_log(records))
}

/// Reads a serialized log from a file.
pub fn read_log_file<P: AsRef<Path>>(path: P) -> Result<Vec<LogRecord>, GraphError> {
    decode_log(&std::fs::read(path)?)
}

/// Reads a possibly-damaged log file, salvaging the longest valid
/// prefix (see [`salvage_log`]).
pub fn read_log_file_salvage<P: AsRef<Path>>(path: P) -> Result<Salvage, GraphError> {
    salvage_log(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord {
                lsn: 1,
                update: GraphUpdate::Insert { u: 0, v: 1 },
            },
            LogRecord {
                lsn: 2,
                update: GraphUpdate::Insert { u: 1, v: 2 },
            },
            LogRecord {
                lsn: 3,
                update: GraphUpdate::Remove { u: 0, v: 1 },
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        let records = sample_records();
        assert_eq!(decode_log(&encode_log(&records)).unwrap(), records);
        assert_eq!(decode_log(&encode_log(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let mut buf = encode_log(&sample_records());
        buf[0] = b'X';
        assert!(matches!(decode_log(&buf), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn wrong_version_is_corrupt() {
        let mut buf = encode_log(&sample_records());
        buf[4] = 9;
        let err = decode_log(&buf).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncated_tail_is_detected() {
        let full = encode_log(&sample_records());
        // Every possible truncation point must fail — a cut-off tail
        // can never silently decode to a shorter log.
        for keep in 0..full.len() {
            let err = decode_log(&full[..keep]).unwrap_err();
            assert!(
                matches!(err, GraphError::Corrupt(_)),
                "truncation at {keep} gave {err:?}"
            );
        }
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut buf = encode_log(&sample_records());
        let target = buf.len() - 13; // inside the last record's node ids
        buf[target] ^= 0x40;
        let err = decode_log(&buf).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn lsn_gap_is_corrupt() {
        let mut records = sample_records();
        records[2].lsn = 7;
        let err = decode_log(&encode_log(&records)).unwrap_err();
        assert!(err.to_string().contains("LSN gap"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut buf = encode_log(&sample_records());
        buf.extend_from_slice(&[0, 1, 2]);
        let err = decode_log(&buf).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn append_assigns_contiguous_lsns() {
        let log = UpdateLog::new();
        assert_eq!(log.last_lsn(), 0);
        let first = log.append(GraphUpdate::Insert { u: 0, v: 1 });
        let second = log.append(GraphUpdate::Insert { u: 1, v: 2 });
        assert_eq!((first.lsn, second.lsn), (1, 2));
        assert_eq!(log.last_lsn(), 2);
    }

    #[test]
    fn append_with_none_appends_nothing() {
        let log = UpdateLog::new();
        assert_eq!(log.append_with(|_| None), None);
        assert_eq!(log.last_lsn(), 0);
    }

    #[test]
    fn cursor_sees_records_in_order_and_only_once() {
        let log = UpdateLog::new();
        let mut cursor = log.tail(1);
        assert!(cursor.next_batch().is_empty());
        log.append(GraphUpdate::Insert { u: 0, v: 1 });
        log.append(GraphUpdate::Insert { u: 1, v: 2 });
        let batch = cursor.next_batch();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].lsn, 1);
        assert_eq!(batch[1].lsn, 2);
        assert!(cursor.next_batch().is_empty());
        log.append(GraphUpdate::Remove { u: 0, v: 1 });
        let batch = cursor.wait_next(Duration::from_millis(50));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].lsn, 3);
    }

    #[test]
    fn wait_next_wakes_on_append() {
        let log = UpdateLog::new();
        let tail = log.clone();
        let handle = std::thread::spawn(move || {
            let mut cursor = tail.tail(1);
            cursor.wait_next(Duration::from_secs(10))
        });
        // The cursor thread blocks until this append lands.
        std::thread::sleep(Duration::from_millis(10));
        log.append(GraphUpdate::Insert { u: 2, v: 3 });
        let batch = handle.join().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].update, GraphUpdate::Insert { u: 2, v: 3 });
    }

    /// Header bytes (magic + version + count) and the framed size of
    /// one record, used by the exhaustive salvage tests.
    const HEADER_BYTES: usize = 16;
    const FRAME_BYTES: usize = RECORD_BYTES as usize + 4;

    #[test]
    fn salvage_of_an_intact_log_is_clean() {
        let records = sample_records();
        let salvage = salvage_log(&encode_log(&records)).unwrap();
        assert!(salvage.is_clean());
        assert_eq!(salvage.records, records);
        assert_eq!(salvage.last_lsn(), 3);
        assert_eq!(salvage.into_log().last_lsn(), 3);

        let empty = salvage_log(&encode_log(&[])).unwrap();
        assert!(empty.is_clean());
        assert_eq!(empty.last_lsn(), 0);
    }

    #[test]
    fn salvage_recovers_the_longest_prefix_for_every_truncation() {
        let records = sample_records();
        let full = encode_log(&records);
        for keep in 0..full.len() {
            let result = salvage_log(&full[..keep]);
            if keep < HEADER_BYTES {
                // With the header gone nothing can be trusted.
                assert!(
                    matches!(result, Err(GraphError::Corrupt(_))),
                    "truncation at {keep} inside the header gave {result:?}"
                );
                continue;
            }
            let salvage = result.unwrap();
            // The longest valid prefix is exactly the records whose
            // full frame survived the cut.
            let survivors = (keep - HEADER_BYTES) / FRAME_BYTES;
            assert_eq!(
                salvage.records,
                records[..survivors],
                "truncation at {keep}"
            );
            assert_eq!(salvage.cut, Some(SalvageReason::TruncatedRecord));
        }
    }

    #[test]
    fn salvage_recovers_the_longest_prefix_for_every_bit_flip() {
        let records = sample_records();
        let full = encode_log(&records);
        for target in 0..full.len() {
            let mut buf = full.clone();
            buf[target] ^= 0x10;
            let result = salvage_log(&buf);
            if target < 8 {
                // Magic or format version: a hard error, like decode.
                assert!(
                    matches!(result, Err(GraphError::Corrupt(_))),
                    "flip at {target} in the header gave {result:?}"
                );
                continue;
            }
            let salvage = result.unwrap();
            if target < HEADER_BYTES {
                // A flipped record count still salvages a prefix of
                // the real records (shorter count cuts TrailingBytes,
                // longer count runs off the end of the stream).
                assert!(
                    records.starts_with(&salvage.records),
                    "flip at {target} in the count salvaged non-prefix {:?}",
                    salvage.records
                );
                assert!(salvage.cut.is_some(), "flip at {target} was not detected");
                continue;
            }
            // A flip inside record j's frame cuts exactly before j.
            let damaged = (target - HEADER_BYTES) / FRAME_BYTES;
            assert_eq!(
                salvage.records,
                records[..damaged],
                "flip at {target} (record {damaged})"
            );
            assert!(salvage.cut.is_some(), "flip at {target} was not detected");
        }
    }

    #[test]
    fn salvage_reports_typed_cut_reasons() {
        let records = sample_records();
        let full = encode_log(&records);

        // Torn mid-record: TruncatedRecord.
        let torn = salvage_log(&full[..full.len() - 5]).unwrap();
        assert_eq!(torn.cut, Some(SalvageReason::TruncatedRecord));
        assert_eq!(torn.last_lsn(), 2);

        // Damaged length prefix: BadRecordLength.
        let mut bad_len = full.clone();
        bad_len[HEADER_BYTES] = 7;
        let salvage = salvage_log(&bad_len).unwrap();
        assert_eq!(salvage.cut, Some(SalvageReason::BadRecordLength));
        assert_eq!(salvage.last_lsn(), 0);

        // Flipped payload bit: ChecksumMismatch.
        let mut flipped = full.clone();
        let target = full.len() - 13; // inside the last record's node ids
        flipped[target] ^= 0x40;
        let salvage = salvage_log(&flipped).unwrap();
        assert_eq!(salvage.cut, Some(SalvageReason::ChecksumMismatch));
        assert_eq!(salvage.last_lsn(), 2);

        // Unknown kind byte (checked before the checksum).
        let mut bad_kind = full.clone();
        bad_kind[HEADER_BYTES + 4 + 8] = 9; // record 1's kind byte
        let salvage = salvage_log(&bad_kind).unwrap();
        assert_eq!(salvage.cut, Some(SalvageReason::UnknownUpdateKind));
        assert_eq!(salvage.last_lsn(), 0);

        // A record with a valid checksum but the wrong LSN: LsnGap.
        let mut gapped = records.clone();
        gapped[2].lsn = 7;
        let salvage = salvage_log(&encode_log(&gapped)).unwrap();
        assert_eq!(salvage.cut, Some(SalvageReason::LsnGap));
        assert_eq!(salvage.last_lsn(), 2);

        // Bytes past the promised count: TrailingBytes, full prefix.
        let mut trailing = full.clone();
        trailing.extend_from_slice(&[1, 2, 3]);
        let salvage = salvage_log(&trailing).unwrap();
        assert_eq!(salvage.cut, Some(SalvageReason::TrailingBytes));
        assert_eq!(salvage.records, records);
    }

    #[test]
    fn update_log_salvage_matches_the_free_function() {
        let full = encode_log(&sample_records());
        let torn = &full[..full.len() - 1];
        assert_eq!(
            UpdateLog::salvage(torn).unwrap(),
            salvage_log(torn).unwrap()
        );
    }

    #[test]
    fn write_log_file_survives_a_torn_write() {
        let dir = std::env::temp_dir().join(format!("probesim-log-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("updates.pslg");
        let records = sample_records();
        write_log_file(&path, &records).unwrap();

        // A writer that crashed mid-write leaves a half-written temp
        // sibling; the real file must still decode untouched.
        let tmp = tmp_sibling(&path);
        let full = encode_log(&records);
        std::fs::write(&tmp, &full[..full.len() / 2]).unwrap();
        assert_eq!(read_log_file(&path).unwrap(), records);

        // The next successful write atomically replaces the file and
        // consumes the stale temp sibling.
        let mut longer = records.clone();
        longer.push(LogRecord {
            lsn: 4,
            update: GraphUpdate::Insert { u: 2, v: 0 },
        });
        write_log_file(&path, &longer).unwrap();
        assert_eq!(read_log_file(&path).unwrap(), longer);
        assert!(!tmp.exists(), "the rename must consume the temp sibling");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn salvage_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("probesim-log-salv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("updates.pslg");
        let records = sample_records();
        let full = encode_log(&records);
        std::fs::write(&path, &full[..full.len() - 9]).unwrap();
        // Strict read rejects the damaged file outright…
        assert!(read_log_file(&path).is_err());
        // …salvage recovers the longest valid prefix with the reason.
        let salvage = read_log_file_salvage(&path).unwrap();
        assert_eq!(salvage.records, records[..2]);
        assert_eq!(salvage.cut, Some(SalvageReason::TruncatedRecord));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "probesim-log-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("updates.pslg");
        let records = sample_records();
        write_log_file(&path, &records).unwrap();
        assert_eq!(read_log_file(&path).unwrap(), records);
        std::fs::remove_dir_all(&dir).ok();
    }
}
