//! The fleet supervisor: checkpoint cadence, progress watchdog, and
//! crash respawn.
//!
//! One background thread per fleet ticks over three duties:
//!
//! 1. **Checkpoint cadence** — when the primary has advanced
//!    `checkpoint_every` versions past the latest retained
//!    [`Checkpoint`], freeze a new one from the primary's snapshot into
//!    the shared [`CheckpointCell`]. Recoveries start from here instead
//!    of genesis, so restart cost is O(log suffix), not O(history).
//! 2. **Progress watchdog** — compare each replica's applied version
//!    against the log head; a replica that is behind and has not
//!    advanced for `degraded_after` turns [`ReplicaHealth::Degraded`],
//!    past `quarantine_after` it turns [`ReplicaHealth::Quarantined`]
//!    and the router stops dispatching into it. Progress (or catching
//!    up) heals the state back — quarantine is a routing decision, not
//!    a death sentence.
//! 3. **Crash respawn** — a tailer thread that exited without being
//!    asked to is respawned from the latest checkpoint (genesis when
//!    none exists yet) under a bounded restart budget; each respawn is
//!    published through the registry's restart counters. A replica
//!    whose budget is exhausted is retired: permanently quarantined,
//!    written off by convergence waits.
//!
//! This file is on the analyzer's clock allowlist: the supervision loop
//! sleeps between ticks and the watchdog measures real elapsed time
//! since each replica's last progress.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use probesim_service::QueryService;

use crate::checkpoint::Checkpoint;
use crate::log::UpdateLog;
use crate::registry::{ReplicaHealth, ReplicaRegistry};
use crate::replica::ReplicaShared;

/// The latest retained checkpoint, shared between the supervisor (which
/// refreshes it on cadence), recoveries (which restore from it) and
/// [`crate::Fleet::checkpoint_now`] (manual capture).
pub(crate) struct CheckpointCell {
    /// Lock order: `fleet::checkpoint` is a leaf — checkpoints are
    /// cloned in and out under it alone, never while holding or taking
    /// another lock.
    checkpoint: Mutex<Option<Checkpoint>>,
}

impl CheckpointCell {
    pub(crate) fn new() -> Arc<CheckpointCell> {
        Arc::new(CheckpointCell {
            checkpoint: Mutex::new(None),
        })
    }

    /// Retains `checkpoint` unless a newer one is already held.
    pub(crate) fn store(&self, checkpoint: Checkpoint) {
        let mut guard = self.checkpoint.lock().expect("checkpoint cell poisoned");
        if guard
            .as_ref()
            .is_none_or(|old| old.lsn() <= checkpoint.lsn())
        {
            *guard = Some(checkpoint);
        }
    }

    /// A clone of the latest retained checkpoint.
    pub(crate) fn latest(&self) -> Option<Checkpoint> {
        self.checkpoint
            .lock()
            .expect("checkpoint cell poisoned")
            .clone()
    }

    /// The latest retained checkpoint's LSN (no edge-set clone).
    pub(crate) fn latest_lsn(&self) -> Option<u64> {
        self.checkpoint
            .lock()
            .expect("checkpoint cell poisoned")
            .as_ref()
            .map(Checkpoint::lsn)
    }
}

/// Supervision knobs, set through the fleet builder.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SupervisorConfig {
    /// Supervision loop period.
    pub tick: Duration,
    /// Checkpoint the primary every this many versions (0 disables the
    /// cadence; manual checkpoints still work).
    pub checkpoint_every: u64,
    /// Respawns allowed per replica before it is retired.
    pub restart_budget: u64,
    /// No progress while behind for this long: `Degraded`.
    pub degraded_after: Duration,
    /// No progress while behind for this long: `Quarantined`.
    pub quarantine_after: Duration,
}

/// Cumulative supervisor activity, exposed via
/// [`crate::Fleet::supervisor_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Checkpoints captured (cadence + manual).
    pub checkpoints_taken: u64,
    /// Respawns started from a checkpoint.
    pub checkpoint_recoveries: u64,
    /// Respawns started with no checkpoint, replaying from genesis.
    pub genesis_recoveries: u64,
}

#[derive(Default)]
pub(crate) struct SupervisorCounters {
    checkpoints_taken: AtomicU64,
    checkpoint_recoveries: AtomicU64,
    genesis_recoveries: AtomicU64,
}

impl SupervisorCounters {
    pub(crate) fn note_checkpoint(&self) {
        self.checkpoints_taken.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn stats(&self) -> SupervisorStats {
        SupervisorStats {
            checkpoints_taken: self.checkpoints_taken.load(Ordering::Acquire),
            checkpoint_recoveries: self.checkpoint_recoveries.load(Ordering::Acquire),
            genesis_recoveries: self.genesis_recoveries.load(Ordering::Acquire),
        }
    }
}

/// Per-replica watchdog memory, local to the supervision thread.
struct WatchState {
    last_applied: u64,
    last_progress: Instant,
    /// Restart budget exhausted (or recovery failed): permanently
    /// quarantined, never respawned again.
    retired: bool,
}

/// The supervision thread handle. Dropping it stops and joins the
/// loop (but leaves the replicas as they are).
pub(crate) struct Supervisor {
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Supervisor {
    pub(crate) fn spawn(
        config: SupervisorConfig,
        primary: Arc<QueryService>,
        log: UpdateLog,
        registry: ReplicaRegistry,
        replicas: Vec<Arc<ReplicaShared>>,
        cell: Arc<CheckpointCell>,
        counters: Arc<SupervisorCounters>,
    ) -> Supervisor {
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("probesim-fleet-supervisor".into())
            .spawn(move || {
                let mut watch: Vec<WatchState> = replicas
                    .iter()
                    .map(|_| WatchState {
                        last_applied: 0,
                        last_progress: Instant::now(),
                        retired: false,
                    })
                    .collect();
                while !stop.load(Ordering::Relaxed) {
                    supervise_tick(
                        &config, &primary, &log, &registry, &replicas, &cell, &counters, &mut watch,
                    );
                    std::thread::sleep(config.tick);
                }
            })
            .expect("invariant: the OS spawns the fleet supervisor thread");
        Supervisor {
            shutdown,
            thread: Some(thread),
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

// One tick reads the whole fleet — knobs, primary, log, registry,
// replicas, checkpoint cell, counters, watchdog memory — and bundling
// them into a context struct used exactly once would only rename the
// arguments.
#[allow(clippy::too_many_arguments)]
fn supervise_tick(
    config: &SupervisorConfig,
    primary: &Arc<QueryService>,
    log: &UpdateLog,
    registry: &ReplicaRegistry,
    replicas: &[Arc<ReplicaShared>],
    cell: &CheckpointCell,
    counters: &SupervisorCounters,
    watch: &mut [WatchState],
) {
    // Checkpoint cadence: capture the snapshot first, then publish it
    // into the cell (the cell lock is a leaf; nothing else is held).
    if config.checkpoint_every > 0 {
        let version = primary.version();
        let last = cell.latest_lsn().unwrap_or(0);
        if version >= last + config.checkpoint_every {
            let checkpoint = Checkpoint::from_snapshot(&primary.snapshot());
            counters.note_checkpoint();
            cell.store(checkpoint);
        }
    }

    let target = log.last_lsn();
    for (replica, state) in replicas.iter().zip(watch.iter_mut()) {
        if state.retired {
            continue;
        }
        let slot = replica.slot();
        let applied = registry.applied(slot);
        if applied != state.last_applied {
            state.last_applied = applied;
            state.last_progress = Instant::now();
        }

        if replica.is_dead() {
            if registry.restarts(slot) >= config.restart_budget {
                state.retired = true;
                registry.set_health(slot, ReplicaHealth::Quarantined);
                continue;
            }
            let checkpoint = cell.latest();
            // Account before respawning: the new incarnation can catch
            // up and satisfy a convergence wait before this thread runs
            // again, and observers must see the restart by then.
            registry.record_restart(slot);
            let recovered = if checkpoint.is_some() {
                &counters.checkpoint_recoveries
            } else {
                &counters.genesis_recoveries
            };
            recovered.fetch_add(1, Ordering::AcqRel);
            match replica.respawn(checkpoint.as_ref(), replica.log()) {
                Ok(()) => {
                    state.last_applied = registry.applied(slot);
                    state.last_progress = Instant::now();
                    registry.set_health(slot, ReplicaHealth::Healthy);
                }
                Err(_) => {
                    // An incompatible checkpoint cannot heal this
                    // replica; write it off instead of retry-looping.
                    state.retired = true;
                    registry.set_health(slot, ReplicaHealth::Quarantined);
                }
            }
            continue;
        }

        let stalled_for = state.last_progress.elapsed();
        let health = if applied >= target {
            ReplicaHealth::Healthy
        } else if stalled_for >= config.quarantine_after {
            ReplicaHealth::Quarantined
        } else if stalled_for >= config.degraded_after {
            ReplicaHealth::Degraded
        } else {
            ReplicaHealth::Healthy
        };
        registry.set_health(slot, health);
    }
}
