//! Checksummed, versioned store checkpoints.
//!
//! A [`Checkpoint`] is the full edge set of a replica's store at one
//! LSN — the recovery shortcut that makes restarts O(suffix) instead of
//! O(history): a replica restored from a checkpoint at LSN *v* resumes
//! tailing the update log at *v + 1* and never replays the prefix
//! (ROADMAP item 1's "catch-up from a log file snapshot").
//!
//! The binary codec follows the same discipline as the log codec in
//! [`crate::log`]: magic + format version header, little-endian fields,
//! and a trailing [`FxHasher`] checksum over every preceding byte, so
//! bad magic, format drift, truncations, trailing garbage and flipped
//! bits are all detected and reported as [`GraphError::Corrupt`]. File
//! writes go through the shared temp-sibling + atomic-rename path, so a
//! crash mid-checkpoint can never leave a half-written file.

use std::path::Path;

use probesim_graph::{
    CsrGraph, FxHasher, GraphError, GraphSnapshot, GraphStore, GraphView, NodeId,
};

use std::hash::Hasher;

use crate::log::{take, take_u32, take_u64, write_atomic};

/// Magic bytes opening every serialized checkpoint: "PSCK" (ProbeSim
/// ChecKpoint).
const MAGIC: &[u8; 4] = b"PSCK";
/// Bump on any incompatible layout change.
const VERSION: u32 = 1;
/// Fixed header size: magic (4) + version (4) + lsn (8) + nodes (8) +
/// edges (8).
const HEADER_BYTES: usize = 32;

/// A store state frozen at one LSN: the node count and the complete
/// sorted edge set. `lsn` equals the store version the edge set
/// represents (LSN ≡ store version, the fleet-wide invariant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    lsn: u64,
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl Checkpoint {
    /// A checkpoint from raw parts. The edges are taken as-is (like
    /// [`CsrGraph::from_edges`]); snapshots produce them sorted.
    pub fn new(lsn: u64, num_nodes: usize, edges: Vec<(NodeId, NodeId)>) -> Checkpoint {
        Checkpoint {
            lsn,
            num_nodes,
            edges,
        }
    }

    /// Freezes a published snapshot: the checkpoint's LSN is the
    /// snapshot's version.
    pub fn from_snapshot(snapshot: &GraphSnapshot) -> Checkpoint {
        Checkpoint {
            lsn: snapshot.version(),
            num_nodes: snapshot.num_nodes(),
            edges: snapshot.edges_iter().collect(),
        }
    }

    /// The LSN (≡ store version) this checkpoint represents.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Node count of the checkpointed graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The checkpointed edge set.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Rebuilds a store at this checkpoint's state **and version**:
    /// the next effective mutation produces version `lsn + 1`, so the
    /// store slots straight back into the log's LSN lockstep.
    pub fn to_store(&self) -> GraphStore {
        GraphStore::from_csr_at(CsrGraph::from_edges(self.num_nodes, &self.edges), self.lsn)
    }
}

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Serializes a checkpoint: `MAGIC | version | lsn | nodes | edges`,
/// the edge pairs, then an [`FxHasher`] checksum over every preceding
/// byte.
pub fn encode_checkpoint(checkpoint: &Checkpoint) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + checkpoint.edges.len() * 8 + 8);
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, VERSION);
    put_u64(&mut buf, checkpoint.lsn);
    put_u64(&mut buf, checkpoint.num_nodes as u64);
    put_u64(&mut buf, checkpoint.edges.len() as u64);
    for &(u, v) in &checkpoint.edges {
        put_u32(&mut buf, u);
        put_u32(&mut buf, v);
    }
    let mut hasher = FxHasher::default();
    hasher.write(&buf);
    put_u64(&mut buf, hasher.finish());
    buf
}

/// Decodes a serialized checkpoint, validating magic, format version,
/// framing, node bounds and the whole-payload checksum. Any violation —
/// a truncated file, trailing garbage, a single flipped bit — is
/// [`GraphError::Corrupt`].
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, GraphError> {
    let truncated = || GraphError::Corrupt("truncated checkpoint header".into());
    if bytes.len() < HEADER_BYTES + 8 {
        return Err(truncated());
    }
    let mut cursor = bytes;
    let magic = take(&mut cursor, 4).ok_or_else(truncated)?;
    if magic != MAGIC {
        return Err(GraphError::Corrupt(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = take_u32(&mut cursor).ok_or_else(truncated)?;
    if version != VERSION {
        return Err(GraphError::Corrupt(format!(
            "unsupported checkpoint format version {version}, expected {VERSION}"
        )));
    }
    let lsn = take_u64(&mut cursor).ok_or_else(truncated)?;
    let num_nodes = take_u64(&mut cursor).ok_or_else(truncated)?;
    let num_edges = take_u64(&mut cursor).ok_or_else(truncated)?;
    let edge_bytes = usize::try_from(num_edges)
        .ok()
        .and_then(|m| m.checked_mul(8))
        .ok_or_else(|| GraphError::Corrupt(format!("implausible edge count {num_edges}")))?;
    let expected = HEADER_BYTES
        .checked_add(edge_bytes)
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| GraphError::Corrupt(format!("implausible edge count {num_edges}")))?;
    if bytes.len() != expected {
        return Err(GraphError::Corrupt(format!(
            "checkpoint length {} does not match {num_edges} edges",
            bytes.len()
        )));
    }
    // Verify the whole-payload checksum before trusting any edge.
    // `cursor` sits at the edge block; the stored checksum is the 8
    // bytes past it.
    let mut checksum_cursor = cursor;
    let payload = take(&mut checksum_cursor, edge_bytes)
        .map(|_| bytes.len() - 8)
        .ok_or_else(truncated)?;
    let stored = take_u64(&mut checksum_cursor).ok_or_else(truncated)?;
    let mut hasher = FxHasher::default();
    hasher.write(&bytes[..payload]);
    if hasher.finish() != stored {
        return Err(GraphError::Corrupt("checkpoint checksum mismatch".into()));
    }
    let num_nodes = usize::try_from(num_nodes)
        .map_err(|_| GraphError::Corrupt(format!("implausible node count {num_nodes}")))?;
    let mut edges = Vec::with_capacity(edge_bytes / 8);
    for _ in 0..edge_bytes / 8 {
        let u = take_u32(&mut cursor).ok_or_else(truncated)?;
        let v = take_u32(&mut cursor).ok_or_else(truncated)?;
        if (u as usize) >= num_nodes || (v as usize) >= num_nodes {
            return Err(GraphError::Corrupt(format!(
                "edge ({u}, {v}) out of range for {num_nodes} nodes"
            )));
        }
        edges.push((u, v));
    }
    Ok(Checkpoint {
        lsn,
        num_nodes,
        edges,
    })
}

/// Writes a serialized checkpoint to a file (temp sibling + atomic
/// rename, like [`crate::write_log_file`]).
pub fn write_checkpoint_file<P: AsRef<Path>>(
    path: P,
    checkpoint: &Checkpoint,
) -> Result<(), GraphError> {
    write_atomic(path.as_ref(), &encode_checkpoint(checkpoint))
}

/// Reads a serialized checkpoint from a file.
pub fn read_checkpoint_file<P: AsRef<Path>>(path: P) -> Result<Checkpoint, GraphError> {
    decode_checkpoint(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::GraphUpdate;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint::new(42, 5, vec![(0, 1), (1, 2), (2, 3), (3, 0), (4, 2)])
    }

    #[test]
    fn encode_decode_round_trip() {
        let checkpoint = sample_checkpoint();
        assert_eq!(
            decode_checkpoint(&encode_checkpoint(&checkpoint)).unwrap(),
            checkpoint
        );
        let empty = Checkpoint::new(0, 3, Vec::new());
        assert_eq!(
            decode_checkpoint(&encode_checkpoint(&empty)).unwrap(),
            empty
        );
    }

    #[test]
    fn every_truncation_is_detected() {
        let full = encode_checkpoint(&sample_checkpoint());
        for keep in 0..full.len() {
            let err = decode_checkpoint(&full[..keep]).unwrap_err();
            assert!(
                matches!(err, GraphError::Corrupt(_)),
                "truncation at {keep} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        // The PR 7 log codec proves this property record by record;
        // the checkpoint's single whole-payload checksum must give the
        // same guarantee at every byte offset.
        let full = encode_checkpoint(&sample_checkpoint());
        for target in 0..full.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut buf = full.clone();
                buf[target] ^= bit;
                let err = decode_checkpoint(&buf).unwrap_err();
                assert!(
                    matches!(err, GraphError::Corrupt(_)),
                    "flip {bit:#04x} at {target} gave {err:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut buf = encode_checkpoint(&sample_checkpoint());
        buf.push(0);
        let err = decode_checkpoint(&buf).unwrap_err();
        assert!(err.to_string().contains("length"), "{err}");
    }

    #[test]
    fn out_of_range_edges_are_detected() {
        // A hand-built checkpoint with a node id past the node count
        // and a recomputed (valid) checksum: the bounds check, not the
        // checksum, must reject it.
        let bogus = Checkpoint::new(1, 2, vec![(0, 5)]);
        let err = decode_checkpoint(&encode_checkpoint(&bogus)).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn to_store_restores_state_and_version() {
        let mut store = GraphStore::from_edges(4, &[(0, 1), (1, 2)]);
        store.commit(GraphUpdate::Insert { u: 2, v: 3 });
        store.commit(GraphUpdate::Remove { u: 0, v: 1 });
        let snapshot = store.snapshot();
        let checkpoint = Checkpoint::from_snapshot(&snapshot);
        assert_eq!(checkpoint.lsn(), 2);
        assert_eq!(checkpoint.num_nodes(), 4);

        let restored = checkpoint.to_store();
        assert_eq!(restored.version(), 2);
        let mut restored_edges: Vec<_> = restored.snapshot().edges_iter().collect();
        let mut original_edges: Vec<_> = snapshot.edges_iter().collect();
        restored_edges.sort_unstable();
        original_edges.sort_unstable();
        assert_eq!(restored_edges, original_edges);

        // The restored store continues the version sequence.
        let mut restored = restored;
        let commit = restored.commit(GraphUpdate::Insert { u: 3, v: 0 });
        assert_eq!(commit.version, 3);
    }

    #[test]
    fn file_round_trip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("probesim-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.psck");
        let checkpoint = sample_checkpoint();
        write_checkpoint_file(&path, &checkpoint).unwrap();
        assert_eq!(read_checkpoint_file(&path).unwrap(), checkpoint);
        // A crashed writer's half-written temp sibling never shadows
        // the real file, and the next write consumes it.
        let tmp = crate::log::tmp_sibling(&path);
        std::fs::write(&tmp, b"torn").unwrap();
        assert_eq!(read_checkpoint_file(&path).unwrap(), checkpoint);
        write_checkpoint_file(&path, &checkpoint).unwrap();
        assert!(!tmp.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
