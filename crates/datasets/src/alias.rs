//! Alias-method sampling from a fixed discrete distribution.
//!
//! The Chung–Lu generator draws millions of edge endpoints from a power-law
//! weight vector; the alias method (Walker 1977, Vose 1991) gives O(1)
//! draws after O(n) preprocessing.

use rand::Rng;

/// Preprocessed table for O(1) weighted sampling.
///
/// # Example
///
/// ```
/// use probesim_datasets::AliasTable;
/// use rand::SeedableRng;
///
/// let table = AliasTable::new(&[1.0, 0.0, 3.0]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let draw = table.sample(&mut rng);
/// assert!(draw == 0 || draw == 2); // index 1 has zero weight
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds a table from non-negative weights. Returns `None` when the
    /// weights are empty, contain a negative/NaN entry, or sum to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 || weights.iter().any(|&w| w.is_nan() || w < 0.0) {
            return None;
        }
        // Vose's stable construction with explicit small/large worklists.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small
                .pop()
                .expect("invariant: loop guard checked small is non-empty");
            let l = *large
                .last()
                .expect("invariant: loop guard checked large is non-empty");
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for l in large {
            prob[l] = 1.0;
        }
        for s in small {
            // Only reachable through floating-point round-off.
            prob[s] = 1.0;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (never constructed; `new`
    /// rejects empty input, so this is `false` for live tables).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index distributed according to the construction weights.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_input() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn single_category_always_sampled() {
        let t = AliasTable::new(&[42.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_category_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let draws = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / draws as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "category {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn heavy_tail_weights_survive_scaling() {
        // Construction must stay stable with a 6-decade dynamic range.
        let weights: Vec<f64> = (1..=1000).map(|i| 1.0 / (i as f64).powi(2)).collect();
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut count0 = 0usize;
        let draws = 100_000;
        for _ in 0..draws {
            if t.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        let expected = weights[0] / weights.iter().sum::<f64>();
        let observed = count0 as f64 / draws as f64;
        assert!((observed - expected).abs() < 0.02);
    }
}
