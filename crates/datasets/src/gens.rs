//! Random-graph generators.
//!
//! All generators are deterministic given their seed, remove self-loops and
//! parallel edges (the paper's graphs are simple), and return a
//! [`CsrGraph`].

use probesim_graph::hash::fx_set_with_capacity;
use probesim_graph::{CsrGraph, Edge, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alias::AliasTable;
use crate::powerlaw::chung_lu_weights;

/// Directed Erdős–Rényi G(n, m): `m` distinct non-loop edges chosen
/// uniformly at random.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2, "need at least 2 nodes");
    let max_edges = n * (n - 1);
    assert!(m <= max_edges, "cannot place {m} simple edges in n={n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = fx_set_with_capacity::<(NodeId, NodeId)>(m * 2);
    let mut edges: Vec<Edge> = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v && seen.insert((u, v)) {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Barabási–Albert-style preferential attachment.
///
/// Starts from a `k`-clique seed; each subsequent node attaches `k` edges
/// to existing nodes chosen proportionally to `degree + 1` (the +1 keeps
/// isolated seeds reachable). With `directed = true` edges point from the
/// new node to its targets (citation style, so old nodes accumulate
/// in-degree); with `directed = false` both orientations are added
/// (collaboration style, HepTh-like).
pub fn preferential_attachment(n: usize, k: usize, directed: bool, seed: u64) -> CsrGraph {
    assert!(k >= 1, "attachment count must be positive");
    assert!(n > k, "need more nodes than attachment edges");
    let mut rng = StdRng::seed_from_u64(seed);
    // `targets` holds one entry per degree unit — sampling uniformly from it
    // is sampling proportionally to degree (the classic BA implementation).
    let mut endpoint_pool: Vec<NodeId> = Vec::with_capacity(2 * n * k);
    let mut builder = GraphBuilder::new(n).undirected(!directed);
    // Seed clique over nodes 0..=k.
    for u in 0..=(k as NodeId) {
        for v in 0..u {
            builder.push_edge(u, v);
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }
    for u in (k + 1)..n {
        let u = u as NodeId;
        let mut chosen = fx_set_with_capacity::<NodeId>(k * 2);
        while chosen.len() < k {
            // Mix preferential and uniform choices (uniform w.p. 1/8) so
            // late nodes keep nonzero in-degree.
            let t = if rng.gen_range(0u32..8) == 0 || endpoint_pool.is_empty() {
                rng.gen_range(0..u)
            } else {
                endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
            };
            if t != u {
                chosen.insert(t);
            }
        }
        for &t in &chosen {
            builder.push_edge(u, t);
            endpoint_pool.push(u);
            endpoint_pool.push(t);
        }
    }
    builder.build_csr()
}

/// Directed Chung–Lu graph with a power-law *in*-degree distribution of
/// exponent `gamma` and roughly `m` edges. Sources are uniform, targets are
/// drawn from the power-law weights — matching the "a few celebrities
/// receive most links" structure of social graphs.
pub fn chung_lu(n: usize, m: usize, gamma: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = chung_lu_weights(n, gamma, m as f64);
    let table = AliasTable::new(&weights).expect("invariant: Zipf weights are positive and finite");
    let mut seen = fx_set_with_capacity::<(NodeId, NodeId)>(m * 2);
    let mut edges: Vec<Edge> = Vec::with_capacity(m);
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(20).max(1000);
    while edges.len() < m && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n) as NodeId;
        let v = table.sample(&mut rng) as NodeId;
        if u != v && seen.insert((u, v)) {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Kleinberg copying model for web graphs.
///
/// Each new node emits `out_deg` edges; each edge copies the corresponding
/// out-edge of a random earlier "prototype" node with probability
/// `copy_prob`, otherwise it links to a uniform random earlier node. Copying
/// concentrates in-links on already-popular pages, producing the heavy tail
/// and abundant shared in-neighborhoods characteristic of web crawls
/// (IT-2004-like).
pub fn copying_model(n: usize, out_deg: usize, copy_prob: f64, seed: u64) -> CsrGraph {
    assert!(out_deg >= 1);
    assert!((0.0..=1.0).contains(&copy_prob));
    assert!(n > out_deg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    // Dense out-adjacency kept locally for copying lookups.
    let mut out_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    // Seed: a small cycle so every early node has an out-edge to copy.
    let seed_nodes = out_deg + 1;
    for (u, adj) in out_adj.iter_mut().enumerate().take(seed_nodes) {
        let v = ((u + 1) % seed_nodes) as NodeId;
        builder.push_edge(u as NodeId, v);
        adj.push(v);
    }
    for u in seed_nodes..n {
        let prototype = rng.gen_range(0..u);
        for j in 0..out_deg {
            let target = if rng.gen::<f64>() < copy_prob && !out_adj[prototype].is_empty() {
                out_adj[prototype][j % out_adj[prototype].len()]
            } else {
                rng.gen_range(0..u) as NodeId
            };
            if target != u as NodeId {
                builder.push_edge(u as NodeId, target);
                out_adj[u].push(target);
            }
        }
    }
    builder.build_csr()
}

/// "Locally dense" graph: a stochastic-block-model core of densely
/// interconnected communities plus a fringe of zero-in-degree nodes that
/// only point *into* the core.
///
/// This mirrors the paper's observation that in Wiki-Vote "more than 60% of
/// its nodes have zero in-degree, while the remaining ones form a dense
/// subgraph" — the regime where Prio-TopSim's fixed expansion budget `H`
/// misses candidates.
pub fn locally_dense(
    core_blocks: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
    fringe: usize,
    fringe_out_deg: usize,
    seed: u64,
) -> CsrGraph {
    assert!(core_blocks >= 1 && block_size >= 2);
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let core = core_blocks * block_size;
    let n = core + fringe;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    // Dense intra-block and sparse inter-block directed edges, sampled with
    // geometric gap-skipping so cost is O(edges), not O(core²).
    let sample_pairs =
        |p: f64, rng: &mut StdRng, count: usize, mut emit: Box<dyn FnMut(usize) + '_>| {
            if p <= 0.0 || count == 0 {
                return;
            }
            let log1p = (1.0 - p).ln();
            let mut idx = 0usize;
            loop {
                // Geometric(p) gap: floor(ln(U) / ln(1-p)).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap = if p >= 1.0 {
                    0
                } else {
                    (u.ln() / log1p) as usize
                };
                idx = match idx.checked_add(gap) {
                    Some(i) if i < count => i,
                    _ => break,
                };
                emit(idx);
                idx += 1;
                if idx >= count {
                    break;
                }
            }
        };
    for b in 0..core_blocks {
        let base = b * block_size;
        let pairs = block_size * block_size;
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        sample_pairs(
            p_in,
            &mut rng,
            pairs,
            Box::new(|i| {
                let u = (base + i / block_size) as NodeId;
                let v = (base + i % block_size) as NodeId;
                if u != v {
                    edges.push((u, v));
                }
            }),
        );
        for (u, v) in edges {
            builder.push_edge(u, v);
        }
    }
    if core_blocks > 1 && p_out > 0.0 {
        // Inter-block edges: sample over the full core×core grid, keep only
        // cross-block pairs.
        let pairs = core * core;
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        sample_pairs(
            p_out,
            &mut rng,
            pairs,
            Box::new(|i| {
                let u = i / core;
                let v = i % core;
                if u != v && u / block_size != v / block_size {
                    edges.push((u as NodeId, v as NodeId));
                }
            }),
        );
        for (u, v) in edges {
            builder.push_edge(u, v);
        }
    }
    // Fringe nodes: out-edges into the core only, so their in-degree is 0.
    for i in 0..fringe {
        let u = (core + i) as NodeId;
        for _ in 0..fringe_out_deg {
            let v = rng.gen_range(0..core) as NodeId;
            builder.push_edge(u, v);
        }
    }
    builder.build_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::estimate_exponent;
    use probesim_graph::{DegreeStats, GraphView};

    #[test]
    fn er_has_exact_edge_count() {
        let g = erdos_renyi(100, 500, 1);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn er_is_seed_deterministic() {
        let a = erdos_renyi(50, 200, 42);
        let b = erdos_renyi(50, 200, 42);
        let c = erdos_renyi(50, 200, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn er_has_no_self_loops() {
        let g = erdos_renyi(30, 300, 5);
        for v in g.nodes() {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn ba_directed_has_skewed_in_degree() {
        let g = preferential_attachment(2000, 5, true, 7);
        let stats = DegreeStats::compute(&g);
        assert!(stats.max_in_degree > 50, "max={}", stats.max_in_degree);
        assert!(stats.in_degree_gini > 0.3, "gini={}", stats.in_degree_gini);
    }

    #[test]
    fn ba_undirected_is_symmetric() {
        let g = preferential_attachment(300, 3, false, 9);
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                assert!(g.has_edge(v, u), "missing reverse of ({u},{v})");
            }
        }
    }

    #[test]
    fn chung_lu_indegrees_follow_power_law() {
        let g = chung_lu(5000, 50_000, 2.5, 11);
        assert!(g.num_edges() > 45_000, "m = {}", g.num_edges());
        let in_degs: Vec<usize> = g.nodes().map(|v| g.in_degree(v)).collect();
        let est = estimate_exponent(&in_degs, 20).expect("enough tail mass");
        assert!(
            (1.8..3.5).contains(&est),
            "estimated exponent {est} far from target 2.5"
        );
    }

    #[test]
    fn copying_model_concentrates_in_links() {
        let g = copying_model(3000, 5, 0.7, 13);
        let stats = DegreeStats::compute(&g);
        assert!(stats.max_in_degree > 30, "max={}", stats.max_in_degree);
        assert!(g.num_edges() > 3000 * 4);
    }

    #[test]
    fn locally_dense_has_zero_in_degree_fringe() {
        let g = locally_dense(4, 50, 0.3, 0.005, 400, 3, 17);
        let stats = DegreeStats::compute(&g);
        assert_eq!(g.num_nodes(), 600);
        // All 400 fringe nodes must have zero in-degree (> 60% of nodes,
        // matching the Wiki-Vote structure the paper describes).
        assert!(
            stats.zero_in_degree >= 400,
            "zero-in = {}",
            stats.zero_in_degree
        );
        // Core nodes are densely connected.
        let core_mean = g.num_edges() as f64 / 200.0;
        assert!(core_mean > 10.0, "core mean degree = {core_mean}");
    }

    #[test]
    fn generators_are_simple_graphs() {
        for g in [
            preferential_attachment(500, 4, true, 3),
            chung_lu(500, 3000, 2.3, 3),
            copying_model(500, 4, 0.5, 3),
            locally_dense(2, 40, 0.4, 0.01, 100, 2, 3),
        ] {
            for v in g.nodes() {
                assert!(!g.has_edge(v, v), "self loop at {v}");
                let out = g.out_neighbors(v);
                for w in out.windows(2) {
                    assert!(w[0] < w[1], "parallel edge at {v}");
                }
            }
        }
    }
}
