//! Power-law weight sequences.
//!
//! Real social and web graphs have heavy-tailed in-degree distributions;
//! the Chung–Lu generator consumes the weight sequences produced here.

/// Generates `n` weights following `w_i ∝ (i + i0)^(-1/(γ-1))`, the standard
/// Chung–Lu parametrization that yields an expected in-degree distribution
/// with power-law exponent `γ`. The sequence is scaled so it sums to
/// `target_sum` (i.e. the expected edge count when used as in-weights).
///
/// `gamma` must be `> 2` for a finite mean; typical social graphs have
/// `γ ∈ [2.1, 3.0]`.
pub fn chung_lu_weights(n: usize, gamma: f64, target_sum: f64) -> Vec<f64> {
    assert!(gamma > 2.0, "power-law exponent must exceed 2, got {gamma}");
    assert!(n > 0, "need at least one node");
    let exponent = -1.0 / (gamma - 1.0);
    // Offset i0 keeps the maximum expected degree below the graph size
    // (standard trick to avoid w_max ≳ sqrt(m) pathologies on small n).
    let i0 = (n as f64).powf(1.0 - (gamma - 1.0).recip()) / 10.0;
    let mut weights: Vec<f64> = (0..n)
        .map(|i| (i as f64 + 1.0 + i0).powf(exponent))
        .collect();
    let sum: f64 = weights.iter().sum();
    let scale = target_sum / sum;
    for w in &mut weights {
        *w *= scale;
    }
    weights
}

/// Empirical power-law exponent estimate via the Hill / MLE estimator
/// `γ̂ = 1 + n / Σ ln(x_i / x_min)` over samples `x_i ≥ x_min`.
/// Used by tests to confirm generated graphs are actually heavy-tailed.
pub fn estimate_exponent(samples: &[usize], x_min: usize) -> Option<f64> {
    let filtered: Vec<f64> = samples
        .iter()
        .filter(|&&x| x >= x_min && x > 0)
        .map(|&x| x as f64)
        .collect();
    if filtered.len() < 10 {
        return None;
    }
    let xm = x_min as f64;
    let log_sum: f64 = filtered.iter().map(|&x| (x / xm).ln()).sum();
    if log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + filtered.len() as f64 / log_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_target() {
        let w = chung_lu_weights(1000, 2.5, 5000.0);
        let sum: f64 = w.iter().sum();
        assert!((sum - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn weights_are_decreasing() {
        let w = chung_lu_weights(100, 2.2, 100.0);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn heavier_tail_for_smaller_gamma() {
        let light = chung_lu_weights(1000, 3.0, 1000.0);
        let heavy = chung_lu_weights(1000, 2.1, 1000.0);
        // The top weight should hold a larger share with a smaller exponent.
        assert!(heavy[0] / 1000.0 > light[0] / 1000.0);
    }

    #[test]
    #[should_panic(expected = "exponent must exceed 2")]
    fn rejects_gamma_below_two() {
        let _ = chung_lu_weights(10, 1.5, 10.0);
    }

    #[test]
    fn hill_estimator_recovers_synthetic_exponent() {
        // Deterministic inverse-CDF samples from a pure Pareto(γ=2.5).
        let gamma = 2.5f64;
        let n = 20_000;
        let samples: Vec<usize> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                (10.0 * (1.0 - u).powf(-1.0 / (gamma - 1.0))) as usize
            })
            .collect();
        let est = estimate_exponent(&samples, 10).unwrap();
        assert!(
            (est - gamma).abs() < 0.15,
            "estimated {est}, expected {gamma}"
        );
    }

    #[test]
    fn hill_estimator_needs_data() {
        assert!(estimate_exponent(&[1, 2, 3], 1).is_none());
        assert!(estimate_exponent(&[], 1).is_none());
    }
}
