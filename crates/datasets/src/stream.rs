//! Update-stream generators for dynamic-graph workloads.
//!
//! ProbeSim is index-free, so its natural habitat is a graph under
//! continuous mutation ("real-time SimRank queries on graphs with frequent
//! updates", Section 1). The benchmark scenarios and churn tests need
//! *reproducible* mutation workloads; this module generates them as
//! sequences of [`GraphUpdate`] events, deterministic in their seed.
//!
//! The main generator is the **sliding window**: edges arrive one at a
//! time, stay live while they are among the `window` most recent, and are
//! evicted oldest-first — the standard model for timestamped edge streams
//! (each event after warm-up is one insertion plus one expiry, keeping the
//! live edge count constant, as in "Dynamical SimRank Search on
//! Time-Varying Networks").

use probesim_graph::{DynamicGraph, GraphUpdate, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::collections::VecDeque;

/// A seeded sliding-window edge stream over `n` nodes.
///
/// Yields [`GraphUpdate`] events: pure insertions until `window` edges are
/// live, then each further insertion is preceded by the expiry
/// ([`GraphUpdate::Remove`]) of the oldest live edge. Generated edges are
/// simple (no self-loops) and never duplicate a currently-live edge, so
/// every event applied in order changes the graph.
///
/// # Example
///
/// ```
/// use probesim_datasets::stream::SlidingWindowStream;
/// use probesim_graph::{DynamicGraph, GraphView};
///
/// let mut graph = DynamicGraph::new(50);
/// let mut stream = SlidingWindowStream::new(50, 100, 7);
/// for update in stream.by_ref().take(300) {
///     assert!(graph.apply(update), "stream events always change the graph");
/// }
/// assert_eq!(graph.num_edges(), 100); // window is full and stays full
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindowStream {
    n: usize,
    window: usize,
    rng: StdRng,
    /// Live edges, oldest first.
    live: VecDeque<(NodeId, NodeId)>,
    /// Membership mirror of `live` for O(1) duplicate checks.
    member: probesim_graph::FxHashSet<(NodeId, NodeId)>,
    /// An expiry produced by the last `next()` whose paired insertion is
    /// still owed.
    pending_insert: bool,
}

impl SlidingWindowStream {
    /// A stream over nodes `0..n` keeping at most `window` edges live.
    ///
    /// Panics when `n < 2` (no simple edge exists) or `window == 0`.
    pub fn new(n: usize, window: usize, seed: u64) -> Self {
        assert!(n >= 2, "need at least 2 nodes to form an edge");
        assert!(window >= 1, "window must hold at least one edge");
        assert!(
            window <= n * (n - 1) / 2,
            "window {window} too large for n = {n}: rejection sampling needs \
             live edges to stay under half the n*(n-1) possible edges"
        );
        SlidingWindowStream {
            n,
            window,
            rng: StdRng::seed_from_u64(seed),
            live: VecDeque::with_capacity(window),
            member: probesim_graph::hash::fx_set_with_capacity(window * 2),
            pending_insert: false,
        }
    }

    /// Node count of the target graph.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Maximum number of simultaneously-live edges.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Currently-live edges, oldest first.
    pub fn live_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.live.iter().copied()
    }

    /// Draws a fresh edge: simple, not currently live.
    fn draw_edge(&mut self) -> (NodeId, NodeId) {
        // `new` caps the window at half the possible edges, so each draw
        // succeeds with probability > 1/2 and rejection sampling
        // terminates quickly.
        loop {
            let u = self.rng.gen_range(0..self.n) as NodeId;
            let v = self.rng.gen_range(0..self.n) as NodeId;
            if u != v && !self.member.contains(&(u, v)) {
                return (u, v);
            }
        }
    }
}

impl Iterator for SlidingWindowStream {
    type Item = GraphUpdate;

    fn next(&mut self) -> Option<GraphUpdate> {
        if !self.pending_insert && self.live.len() >= self.window {
            // Window full: evict the oldest edge first; the paired
            // insertion comes on the next call.
            let (u, v) = self
                .live
                .pop_front()
                .expect("invariant: window >= 1 keeps the deque non-empty");
            self.member.remove(&(u, v));
            self.pending_insert = true;
            return Some(GraphUpdate::Remove { u, v });
        }
        self.pending_insert = false;
        let (u, v) = self.draw_edge();
        self.live.push_back((u, v));
        self.member.insert((u, v));
        Some(GraphUpdate::Insert { u, v })
    }
}

/// Materializes a warmed-up sliding-window workload: a [`DynamicGraph`]
/// filled to the full `window`, plus the next `events` stream updates to
/// replay against it. The benchmark scenarios and churn tests both start
/// from this state so measurements cover the steady-state regime, not the
/// fill-up ramp.
pub fn sliding_window_workload(
    n: usize,
    window: usize,
    events: usize,
    seed: u64,
) -> (DynamicGraph, Vec<GraphUpdate>) {
    let mut stream = SlidingWindowStream::new(n, window, seed);
    let mut graph = DynamicGraph::new(n);
    for update in stream.by_ref().take(window) {
        graph.apply(update);
    }
    let updates = stream.take(events).collect();
    (graph, updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::GraphView;

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<GraphUpdate> = SlidingWindowStream::new(40, 60, 5).take(500).collect();
        let b: Vec<GraphUpdate> = SlidingWindowStream::new(40, 60, 5).take(500).collect();
        let c: Vec<GraphUpdate> = SlidingWindowStream::new(40, 60, 6).take(500).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn every_event_changes_the_graph() {
        let mut graph = DynamicGraph::new(30);
        for update in SlidingWindowStream::new(30, 50, 11).take(400) {
            assert!(graph.apply(update), "no-op event {update:?}");
        }
    }

    #[test]
    fn window_bounds_live_edges() {
        let window = 25;
        let mut graph = DynamicGraph::new(20);
        let mut stream = SlidingWindowStream::new(20, window, 3);
        // 25 fill-up inserts + 100 full remove/insert pairs: ends full.
        for (i, update) in stream.by_ref().take(window + 200).enumerate() {
            graph.apply(update);
            assert!(graph.num_edges() <= window, "event {i} overflowed window");
        }
        assert_eq!(graph.num_edges(), window, "steady state keeps window full");
        // The generator's live set mirrors the applied graph exactly.
        for (u, v) in stream.live_edges() {
            assert!(graph.has_edge(u, v));
        }
    }

    #[test]
    fn removals_evict_oldest_first() {
        let mut stream = SlidingWindowStream::new(10, 3, 9);
        let inserts: Vec<GraphUpdate> = stream.by_ref().take(3).collect();
        assert!(inserts.iter().all(|e| e.is_insert()));
        // Next event must evict the first inserted edge.
        let evict = stream.next().unwrap();
        assert_eq!(
            evict,
            GraphUpdate::Remove {
                u: inserts[0].edge().0,
                v: inserts[0].edge().1
            }
        );
        // And the one after is its replacement insertion.
        assert!(stream.next().unwrap().is_insert());
    }

    #[test]
    fn no_self_loops_or_live_duplicates() {
        let mut live = std::collections::HashSet::new();
        for update in SlidingWindowStream::new(8, 10, 1).take(300) {
            let (u, v) = update.edge();
            assert_ne!(u, v, "self loop");
            if update.is_insert() {
                assert!(live.insert((u, v)), "duplicate live edge ({u}, {v})");
            } else {
                assert!(live.remove(&(u, v)), "removed a non-live edge");
            }
        }
    }

    #[test]
    fn workload_starts_warm() {
        let (graph, updates) = sliding_window_workload(50, 80, 120, 17);
        assert_eq!(graph.num_edges(), 80);
        assert_eq!(updates.len(), 120);
        // Steady state: replaying alternates remove/insert and keeps the
        // window full.
        let mut g = graph.clone();
        for &update in &updates {
            assert!(g.apply(update));
            assert!(g.num_edges() == 80 || g.num_edges() == 79);
        }
        assert_eq!(g.num_edges(), 80);
    }
}
