//! Dataset registry mirroring Table 3 of the paper.
//!
//! Each entry names a paper dataset and maps it to a generator
//! configuration. Sizes scale with [`Scale`]: `Paper` reproduces the
//! published node counts for the four small graphs (the large four are
//! capped — a billion-edge Friendster will not fit a laptop run, see
//! DESIGN.md §4), while `Laptop` / `Ci` shrink everything proportionally so
//! the full experiment suite finishes in minutes / seconds.

use probesim_graph::CsrGraph;

use crate::gens;

/// How large to instantiate the synthetic datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny graphs for CI and unit tests (seconds for the whole suite).
    Ci,
    /// Default experiment scale: small graphs at paper size, large graphs
    /// shrunk ~50× (minutes for the whole suite).
    Laptop,
    /// Small graphs at published size; large graphs at the largest size
    /// that is still practical without the paper's 96 GB testbed.
    Paper,
}

impl Scale {
    fn factor(self) -> f64 {
        match self {
            Scale::Ci => 0.05,
            Scale::Laptop => 1.0,
            Scale::Paper => 1.0,
        }
    }
}

/// The eight benchmark datasets of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Wiki-Vote: directed, n=7,155, m=103,689; "locally dense" — most
    /// nodes have zero in-degree, the rest form a dense subgraph.
    WikiVote,
    /// HepTh: undirected collaboration network, n=9,877, m=25,998.
    HepTh,
    /// AS: directed autonomous-systems topology, n=26,475, m=106,762.
    As,
    /// HepPh: directed citation network, n=34,546, m=421,578.
    HepPh,
    /// LiveJournal: directed social network (paper: n=4.8M, m=69M).
    LiveJournal,
    /// IT-2004: web crawl (paper: n=41M, m=1.15B), "locally sparse".
    It2004,
    /// Twitter: follower graph (paper: n=41M, m=1.47B), "locally dense".
    Twitter,
    /// Friendster: social network (paper: n=68M, m=2.59B).
    Friendster,
}

impl Dataset {
    /// The four small graphs (ground truth computable by Power Method).
    pub const SMALL: [Dataset; 4] = [
        Dataset::WikiVote,
        Dataset::HepTh,
        Dataset::As,
        Dataset::HepPh,
    ];

    /// The four large graphs (pooling-based evaluation).
    pub const LARGE: [Dataset; 4] = [
        Dataset::LiveJournal,
        Dataset::It2004,
        Dataset::Twitter,
        Dataset::Friendster,
    ];

    /// Dataset name exactly as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::WikiVote => "Wiki-Vote",
            Dataset::HepTh => "HepTh",
            Dataset::As => "AS",
            Dataset::HepPh => "HepPh",
            Dataset::LiveJournal => "LiveJournal",
            Dataset::It2004 => "IT-2004",
            Dataset::Twitter => "Twitter",
            Dataset::Friendster => "Friendster",
        }
    }

    /// Parses a paper dataset name (case-insensitive, punctuation ignored).
    pub fn parse(s: &str) -> Option<Dataset> {
        let canon: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        Some(match canon.as_str() {
            "wikivote" => Dataset::WikiVote,
            "hepth" => Dataset::HepTh,
            "as" => Dataset::As,
            "hepph" => Dataset::HepPh,
            "livejournal" => Dataset::LiveJournal,
            "it2004" => Dataset::It2004,
            "twitter" => Dataset::Twitter,
            "friendster" => Dataset::Friendster,
            _ => return None,
        })
    }

    /// The generator specification at a given scale.
    pub fn spec(self, scale: Scale) -> DatasetSpec {
        let f = scale.factor();
        let sz = |n: usize| ((n as f64 * f) as usize).max(64);
        match self {
            // Small graphs: paper-published sizes (scaled only for CI).
            Dataset::WikiVote => DatasetSpec {
                dataset: self,
                directed: true,
                kind: GenKind::LocallyDense {
                    core_blocks: 4,
                    block_size: sz(2800) / 4,
                    // Target the paper's m ≈ 104k inside the dense core,
                    // capped so CI-scale shrinks stay valid probabilities.
                    p_in: (103_689.0 * 0.92 / ((sz(2800) / 4).pow(2) as f64 * 4.0)).min(0.35),
                    p_out: 0.0005,
                    fringe: sz(7155 - 2800),
                    fringe_out_deg: 2,
                },
            },
            Dataset::HepTh => DatasetSpec {
                dataset: self,
                directed: false,
                kind: GenKind::PreferentialAttachment {
                    n: sz(9877),
                    k: 3,
                    directed: false,
                },
            },
            Dataset::As => DatasetSpec {
                dataset: self,
                directed: true,
                kind: GenKind::ChungLu {
                    n: sz(26_475),
                    m: sz(106_762),
                    gamma: 2.1,
                },
            },
            Dataset::HepPh => DatasetSpec {
                dataset: self,
                directed: true,
                kind: GenKind::PreferentialAttachment {
                    n: sz(34_546),
                    k: 12,
                    directed: true,
                },
            },
            // Large graphs: generator families matching each graph's
            // character; sizes capped (DESIGN.md §4) and scaled further at
            // CI scale.
            Dataset::LiveJournal => DatasetSpec {
                dataset: self,
                directed: true,
                kind: GenKind::ChungLu {
                    n: sz(120_000),
                    m: sz(1_700_000),
                    gamma: 2.4,
                },
            },
            Dataset::It2004 => DatasetSpec {
                dataset: self,
                directed: true,
                kind: GenKind::Copying {
                    n: sz(200_000),
                    out_deg: 18,
                    copy_prob: 0.65,
                },
            },
            Dataset::Twitter => DatasetSpec {
                dataset: self,
                directed: true,
                kind: GenKind::LocallyDense {
                    core_blocks: 12,
                    block_size: sz(48_000) / 12,
                    p_in: 0.025,
                    p_out: 0.0002,
                    fringe: sz(152_000),
                    fringe_out_deg: 14,
                },
            },
            Dataset::Friendster => DatasetSpec {
                dataset: self,
                directed: true,
                kind: GenKind::ChungLu {
                    n: sz(250_000),
                    m: sz(4_500_000),
                    gamma: 2.6,
                },
            },
        }
    }

    /// Generates the dataset at a scale with a deterministic per-dataset
    /// seed.
    pub fn generate(self, scale: Scale) -> CsrGraph {
        self.spec(scale).generate()
    }
}

/// Generator family + parameters for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which paper dataset this stands in for.
    pub dataset: Dataset,
    /// Whether the original dataset is directed.
    pub directed: bool,
    /// Generator configuration.
    pub kind: GenKind,
}

/// The generator families of [`crate::gens`].
#[derive(Debug, Clone, PartialEq)]
pub enum GenKind {
    /// [`gens::erdos_renyi`].
    ErdosRenyi {
        /// node count
        n: usize,
        /// edge count
        m: usize,
    },
    /// [`gens::preferential_attachment`].
    PreferentialAttachment {
        /// node count
        n: usize,
        /// edges per new node
        k: usize,
        /// direction flag
        directed: bool,
    },
    /// [`gens::chung_lu`].
    ChungLu {
        /// node count
        n: usize,
        /// edge count
        m: usize,
        /// power-law exponent of the in-degree distribution
        gamma: f64,
    },
    /// [`gens::copying_model`].
    Copying {
        /// node count
        n: usize,
        /// out-degree of each node
        out_deg: usize,
        /// probability of copying the prototype's link
        copy_prob: f64,
    },
    /// [`gens::locally_dense`].
    LocallyDense {
        /// number of dense communities
        core_blocks: usize,
        /// nodes per community
        block_size: usize,
        /// intra-community edge probability
        p_in: f64,
        /// inter-community edge probability
        p_out: f64,
        /// number of zero-in-degree fringe nodes
        fringe: usize,
        /// out-degree of each fringe node
        fringe_out_deg: usize,
    },
}

impl DatasetSpec {
    /// Deterministic seed derived from the dataset name.
    pub fn seed(&self) -> u64 {
        self.dataset
            .name()
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            })
    }

    /// Runs the generator.
    pub fn generate(&self) -> CsrGraph {
        let seed = self.seed();
        match self.kind {
            GenKind::ErdosRenyi { n, m } => gens::erdos_renyi(n, m, seed),
            GenKind::PreferentialAttachment { n, k, directed } => {
                gens::preferential_attachment(n, k, directed, seed)
            }
            GenKind::ChungLu { n, m, gamma } => gens::chung_lu(n, m, gamma, seed),
            GenKind::Copying {
                n,
                out_deg,
                copy_prob,
            } => gens::copying_model(n, out_deg, copy_prob, seed),
            GenKind::LocallyDense {
                core_blocks,
                block_size,
                p_in,
                p_out,
                fringe,
                fringe_out_deg,
            } => gens::locally_dense(
                core_blocks,
                block_size,
                p_in,
                p_out,
                fringe,
                fringe_out_deg,
                seed,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probesim_graph::{DegreeStats, GraphView};

    #[test]
    fn names_round_trip_through_parse() {
        for d in Dataset::SMALL.into_iter().chain(Dataset::LARGE) {
            assert_eq!(Dataset::parse(d.name()), Some(d));
        }
        assert_eq!(Dataset::parse("wiki-vote"), Some(Dataset::WikiVote));
        assert_eq!(Dataset::parse("IT_2004"), Some(Dataset::It2004));
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn ci_scale_is_small_and_deterministic() {
        for d in Dataset::SMALL {
            let g1 = d.generate(Scale::Ci);
            let g2 = d.generate(Scale::Ci);
            assert_eq!(g1, g2, "{} not deterministic", d.name());
            assert!(g1.num_nodes() <= 3000, "{} too big for CI", d.name());
            assert!(g1.num_edges() > 0);
        }
    }

    #[test]
    fn small_graphs_match_paper_node_counts_at_laptop_scale() {
        let wiki = Dataset::WikiVote.generate(Scale::Laptop);
        assert!(
            (wiki.num_nodes() as i64 - 7155).abs() < 160,
            "n = {}",
            wiki.num_nodes()
        );
        let hepth = Dataset::HepTh.generate(Scale::Laptop);
        assert_eq!(hepth.num_nodes(), 9877);
        let as_g = Dataset::As.generate(Scale::Laptop);
        assert_eq!(as_g.num_nodes(), 26_475);
    }

    #[test]
    fn wiki_vote_analogue_is_locally_dense() {
        let g = Dataset::WikiVote.generate(Scale::Laptop);
        let stats = DegreeStats::compute(&g);
        // Paper: "more than 60% of its nodes have zero in-degree".
        let zero_frac = stats.zero_in_degree as f64 / stats.num_nodes as f64;
        assert!(zero_frac > 0.55, "zero-in fraction = {zero_frac}");
    }

    #[test]
    fn hepth_analogue_is_undirected() {
        let g = Dataset::HepTh.generate(Scale::Ci);
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn per_dataset_seeds_differ() {
        let a = Dataset::As.spec(Scale::Ci).seed();
        let b = Dataset::HepPh.spec(Scale::Ci).seed();
        assert_ne!(a, b);
    }

    #[test]
    fn large_specs_generate_at_ci_scale() {
        for d in Dataset::LARGE {
            let g = d.generate(Scale::Ci);
            assert!(g.num_nodes() >= 64, "{}", d.name());
            assert!(g.num_edges() > 0, "{}", d.name());
        }
    }
}
