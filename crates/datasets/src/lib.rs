#![warn(missing_docs)]
//! # probesim-datasets
//!
//! Synthetic graph workloads for the ProbeSim reproduction.
//!
//! The paper evaluates on eight public datasets (Table 3: Wiki-Vote, HepTh,
//! AS, HepPh, LiveJournal, IT-2004, Twitter, Friendster). Those downloads are
//! not available in this environment, so this crate provides *seeded
//! synthetic analogues* that control the structural properties the SimRank
//! algorithms are sensitive to:
//!
//! * `n`, `m` and therefore average degree (drives walk and probe cost),
//! * in-degree skew (power-law graphs are where randomized PROBE shines),
//! * local density (the paper's "locally dense" Wiki-Vote/Twitter cases,
//!   where priority-based TopSim variants degrade),
//! * directedness (HepTh is undirected; everything else directed).
//!
//! Generators:
//!
//! * [`gens::erdos_renyi`] — the G(n, m) baseline with no skew.
//! * [`gens::preferential_attachment`] — Barabási–Albert-style citation /
//!   collaboration graphs (HepTh-, HepPh-like).
//! * [`gens::chung_lu`] — directed graphs with a prescribed power-law
//!   in-degree distribution (AS-, LiveJournal-, Friendster-like).
//! * [`gens::copying_model`] — Kleinberg copying model for web graphs
//!   (IT-2004-like).
//! * [`gens::locally_dense`] — planted dense blocks plus a zero-in-degree fringe
//!   (Wiki-Vote-, Twitter-like "locally dense" structure).
//!
//! [`registry`] maps each paper dataset to a generator configuration at a
//! configurable scale; the benchmark harness names datasets exactly as the
//! paper does.
//!
//! For dynamic workloads, [`stream`] generates seeded update streams
//! ([`stream::SlidingWindowStream`]) that the benchmark scenarios and
//! churn tests replay against a live `DynamicGraph`.

pub mod alias;
pub mod gens;
pub mod powerlaw;
pub mod registry;
pub mod stream;

pub use alias::AliasTable;
pub use registry::{Dataset, DatasetSpec, Scale};
pub use stream::{sliding_window_workload, SlidingWindowStream};
