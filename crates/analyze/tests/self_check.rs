//! Self-check: the analyzer run against its own live workspace, plus
//! end-to-end CLI tests that seed real violations into a throwaway
//! mini-workspace and drive `--compare` / `--write-baseline` through
//! the same code path the CI gate uses.

use std::fs;
use std::path::{Path, PathBuf};

use probesim_analyze::cli;
use probesim_analyze::run_analyses;
use probesim_analyze::workspace::Workspace;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The shipped tree plus the committed baseline must compare clean —
/// exactly what the `static-analysis` CI job runs.
#[test]
fn live_workspace_is_clean_against_the_committed_baseline() {
    let root = repo_root();
    let baseline = root.join("analyze/baseline.json");
    assert!(
        baseline.exists(),
        "analyze/baseline.json must be committed next to the workspace"
    );
    let args: Vec<String> = [
        "--root",
        root.to_str().unwrap(),
        "--compare",
        baseline.to_str().unwrap(),
        "--quiet",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let code = cli::run(&args).expect("invariant: the live tree parses");
    assert_eq!(code, 0, "live tree regressed against analyze/baseline.json");
}

/// The committed baseline must stay an honest ratchet: bounded total,
/// and no allowance for rules the tree no longer violates.
#[test]
fn committed_baseline_is_bounded_and_has_no_dead_allowances() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("analyze/baseline.json")).unwrap();
    let baseline = probesim_analyze::report::parse_baseline(&text).unwrap();
    let total: usize = baseline.entries.values().sum();
    assert!(total < 120, "panic-surface baseline crept up to {total}");
    let ws = Workspace::load(&root).unwrap();
    let report = run_analyses(&ws);
    let live = report.counts_by_rule_file();
    for ((rule, file), allowed) in &baseline.entries {
        let found = live
            .get(&(rule.clone(), file.clone()))
            .copied()
            .unwrap_or(0);
        assert!(
            found >= *allowed,
            "dead allowance: baseline grants {allowed} for ({rule}, {file}) but the tree \
             has only {found} — run --write-baseline to ratchet down"
        );
    }
}

/// The documented intended order and the real serving-path lock edges
/// must both be present in the report's lock-order section.
#[test]
fn lock_order_section_documents_the_serving_path() {
    let ws = Workspace::load(&repo_root()).unwrap();
    let report = run_analyses(&ws);
    let section = &report.lock_order;
    assert_eq!(
        section.intended,
        vec![
            "fleet::registry",
            "fleet::records",
            "fleet::seat",
            "fleet::checkpoint",
            "service::state",
            "service::store",
            "service::inner",
            "service::published",
            "service::index"
        ]
    );
    let edges: Vec<(&str, &str)> = section
        .edges
        .iter()
        .map(|e| (e.from.as_str(), e.to.as_str()))
        .collect();
    assert!(
        edges.contains(&("service::store", "service::published")),
        "apply/snapshot publish under the store lock: {edges:?}"
    );
    assert!(
        edges.contains(&("service::store", "graph::published")),
        "the store reaches the graph's published snapshot lock: {edges:?}"
    );
    // And the shipped tree holds the discipline: no ordering findings.
    for f in &report.findings {
        assert!(
            !f.rule.starts_with("lock-"),
            "unexpected lock finding in the live tree: {} {}:{} {}",
            f.rule,
            f.file,
            f.line,
            f.message
        );
    }
}

/// A scratch workspace directory keyed by pid + a caller tag, torn down
/// on drop. No clocks, no randomness: the analyzer forbids both.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root = std::env::temp_dir().join(format!(
            "probesim-analyze-selfcheck-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/demo/src")).unwrap();
        Scratch { root }
    }

    fn write(&self, rel: &str, src: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, src).unwrap();
    }

    fn run(&self, extra: &[&str]) -> Result<i32, String> {
        let mut args = vec![
            "--root".to_string(),
            self.root.to_str().unwrap().to_string(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        args.push("--quiet".to_string());
        cli::run(&args)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const EMPTY_BASELINE: &str =
    "{\n  \"schema\": \"probesim-analyze-baseline/v1\",\n  \"entries\": [\n  ]\n}\n";

/// Two functions acquiring the same two locks in opposite orders must
/// trip the gate: `--compare` against an empty baseline returns Ok(1).
#[test]
fn cli_flags_a_seeded_lock_inversion() {
    let scratch = Scratch::new("lock-inversion");
    scratch.write(
        "crates/demo/src/lib.rs",
        "use std::sync::Mutex;\n\
         pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
         impl S {\n\
             pub fn forward(&self) -> u32 {\n\
                 let ga = self.a.lock().expect(\"invariant: not poisoned\");\n\
                 let gb = self.b.lock().expect(\"invariant: not poisoned\");\n\
                 *ga + *gb\n\
             }\n\
             pub fn backward(&self) -> u32 {\n\
                 let gb = self.b.lock().expect(\"invariant: not poisoned\");\n\
                 let ga = self.a.lock().expect(\"invariant: not poisoned\");\n\
                 *gb - *ga\n\
             }\n\
         }\n",
    );
    scratch.write("empty-baseline.json", EMPTY_BASELINE);
    let baseline = scratch.root.join("empty-baseline.json");
    let code = scratch
        .run(&["--compare", baseline.to_str().unwrap()])
        .expect("invariant: the seeded workspace parses");
    assert_eq!(code, 1, "a lock-order cycle must fail the gate");

    // The report names the cycle, not just some generic failure.
    let ws = Workspace::load(&scratch.root).unwrap();
    let report = run_analyses(&ws);
    assert!(
        report.findings.iter().any(|f| f.rule == "lock-cycle"),
        "expected a lock-cycle finding, got {:?}",
        report.findings
    );
}

/// `Instant::now()` outside the clock allowlist must trip the gate.
#[test]
fn cli_flags_a_seeded_off_allowlist_clock_read() {
    let scratch = Scratch::new("clock");
    scratch.write(
        "crates/demo/src/lib.rs",
        "use std::time::Instant;\n\
         pub fn spin() -> u64 {\n\
             let t0 = Instant::now();\n\
             t0.elapsed().as_nanos() as u64\n\
         }\n",
    );
    scratch.write("empty-baseline.json", EMPTY_BASELINE);
    let baseline = scratch.root.join("empty-baseline.json");
    let code = scratch
        .run(&["--compare", baseline.to_str().unwrap()])
        .expect("invariant: the seeded workspace parses");
    assert_eq!(code, 1, "an off-allowlist clock read must fail the gate");

    let ws = Workspace::load(&scratch.root).unwrap();
    let report = run_analyses(&ws);
    assert!(
        report.findings.iter().any(|f| f.rule == "det-clock"),
        "expected a det-clock finding, got {:?}",
        report.findings
    );
}

/// `--write-baseline` then `--compare` against the written file is the
/// ratchet bootstrap: it must come back clean (Ok(0)) even for a tree
/// with findings.
#[test]
fn write_baseline_then_compare_round_trips_to_clean() {
    let scratch = Scratch::new("roundtrip");
    scratch.write(
        "crates/demo/src/lib.rs",
        "pub fn risky(v: &[u32]) -> u32 {\n\
             *v.first().unwrap()\n\
         }\n",
    );
    let baseline = scratch.root.join("baseline.json");
    let code = scratch
        .run(&["--write-baseline", baseline.to_str().unwrap()])
        .expect("invariant: the seeded workspace parses");
    assert_eq!(code, 0, "--write-baseline itself never fails the gate");
    let code = scratch
        .run(&["--compare", baseline.to_str().unwrap()])
        .expect("invariant: the seeded workspace parses");
    assert_eq!(code, 0, "a freshly written baseline must compare clean");

    // Introduce one more unwrap: the ratchet must now reject the tree.
    scratch.write(
        "crates/demo/src/lib.rs",
        "pub fn risky(v: &[u32]) -> u32 {\n\
             *v.first().unwrap()\n\
         }\n\
         pub fn riskier(v: &[u32]) -> u32 {\n\
             *v.last().unwrap()\n\
         }\n",
    );
    let code = scratch
        .run(&["--compare", baseline.to_str().unwrap()])
        .expect("invariant: the seeded workspace parses");
    assert_eq!(code, 1, "one extra unwrap past the baseline must fail");
}
