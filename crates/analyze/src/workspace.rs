//! Workspace discovery: find every non-shim `.rs` file, classify it, and
//! scan it.
//!
//! Classification drives rule scope:
//!
//! * **Lib** files (`crates/*/src/**` minus `src/bin/`, plus the root
//!   crate's `src/lib.rs`) are subject to all four analyses.
//! * **Bin / Test / Bench / Example** files are scanned only by the
//!   hygiene rule — binaries print and exit, tests assert and unwrap;
//!   that is their job.
//! * `crates/shims/**` is skipped entirely: the shims re-implement
//!   external crates' APIs and are not this project's code to lint.

use std::fs;
use std::path::{Path, PathBuf};

use crate::scan::FileScan;

/// What kind of target a source file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code — in scope for every analysis.
    Lib,
    /// A `[[bin]]` target.
    Bin,
    /// An integration test.
    Test,
    /// A benchmark.
    Bench,
    /// An example.
    Example,
}

/// One discovered, scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Short crate name (`core`, `graph`, …; the root crate is
    /// `probesim`).
    pub crate_name: String,
    /// Target classification.
    pub kind: FileKind,
    /// The scanned token stream and items.
    pub scan: FileScan,
}

/// Every scanned file of the workspace, in deterministic path order.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All scanned files.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Discovers and scans the workspace rooted at `root`.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut paths = Vec::new();
        collect_rs_files(root, root, &mut paths)?;
        paths.sort();
        let mut files = Vec::new();
        for rel in paths {
            let Some((crate_name, kind)) = classify(&rel) else {
                continue;
            };
            let full = root.join(&rel);
            let src = fs::read_to_string(&full)
                .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
            files.push(SourceFile {
                rel_path: rel.replace('\\', "/"),
                crate_name,
                kind,
                scan: FileScan::new(&src),
            });
        }
        if files.is_empty() {
            return Err(format!(
                "no workspace source files found under {}",
                root.display()
            ));
        }
        Ok(Workspace { files })
    }

    /// The library files only — the scope of analyses 1–3.
    pub fn lib_files(&self) -> impl Iterator<Item = &SourceFile> {
        self.files.iter().filter(|f| f.kind == FileKind::Lib)
    }

    /// Builds a synthetic workspace from in-memory `(path, source)`
    /// pairs — the fixture entry point for analysis tests. Paths must
    /// follow the cargo layout (`crates/<name>/src/…`, `src/…`,
    /// `tests/…`, …) that [`Workspace::load`] discovers on disk.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| {
                let (crate_name, kind) =
                    classify(rel).expect("invariant: fixture paths follow the cargo layout");
                SourceFile {
                    rel_path: (*rel).to_string(),
                    crate_name,
                    kind,
                    scan: FileScan::new(src),
                }
            })
            .collect();
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Workspace { files }
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    // read_dir order is platform-dependent; the report must not be.
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if path.is_dir() {
            // target/ holds build output, .git history, shims are
            // vendored third-party API surface.
            if name == "target" || name.starts_with('.') || is_shims_dir(root, &path) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

fn is_shims_dir(root: &Path, path: &Path) -> bool {
    path.strip_prefix(root)
        .map(|rel| rel == Path::new("crates/shims"))
        .unwrap_or(false)
}

/// Maps a workspace-relative path to `(crate name, kind)`; `None` for
/// files outside any crate layout (stray scripts, generated code).
fn classify(rel: &str) -> Option<(String, FileKind)> {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"crates") {
        let crate_name = (*parts.get(1)?).to_string();
        let kind = match parts.get(2).copied() {
            Some("src") if parts.get(3) == Some(&"bin") => FileKind::Bin,
            Some("src") => FileKind::Lib,
            Some("tests") => FileKind::Test,
            Some("benches") => FileKind::Bench,
            Some("examples") => FileKind::Example,
            _ => return None,
        };
        return Some((crate_name, kind));
    }
    let kind = match parts.first().copied() {
        Some("src") if parts.get(1) == Some(&"bin") => FileKind::Bin,
        Some("src") => FileKind::Lib,
        Some("tests") => FileKind::Test,
        Some("benches") => FileKind::Bench,
        Some("examples") => FileKind::Example,
        _ => return None,
    };
    Some(("probesim".to_string(), kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_cargo_layout() {
        let cases = [
            ("crates/core/src/probe.rs", Some(("core", FileKind::Lib))),
            (
                "crates/bench/src/bin/table2_toy.rs",
                Some(("bench", FileKind::Bin)),
            ),
            (
                "crates/bench/tests/scenario_engine.rs",
                Some(("bench", FileKind::Test)),
            ),
            (
                "crates/bench/benches/session_reuse.rs",
                Some(("bench", FileKind::Bench)),
            ),
            ("src/lib.rs", Some(("probesim", FileKind::Lib))),
            ("src/bin/probesim.rs", Some(("probesim", FileKind::Bin))),
            ("tests/churn.rs", Some(("probesim", FileKind::Test))),
            (
                "examples/quickstart.rs",
                Some(("probesim", FileKind::Example)),
            ),
            ("scripts/gen.rs", None),
        ];
        for (path, want) in cases {
            let got = classify(path);
            let want = want.map(|(c, k)| (c.to_string(), k));
            assert_eq!(got, want, "{path}");
        }
    }

    #[test]
    fn load_scans_the_live_workspace_without_shims() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ws = Workspace::load(&root).unwrap();
        assert!(ws.files.len() > 40, "found {}", ws.files.len());
        assert!(ws.files.iter().all(|f| !f.rel_path.contains("shims")));
        assert!(ws.files.iter().all(|f| !f.rel_path.contains("target/")));
        assert!(ws
            .lib_files()
            .any(|f| f.rel_path == "crates/service/src/service.rs"));
        // Deterministic order: sorted by relative path.
        let mut sorted: Vec<&str> = ws.files.iter().map(|f| f.rel_path.as_str()).collect();
        let original = sorted.clone();
        sorted.sort_unstable();
        assert_eq!(original, sorted);
    }
}
