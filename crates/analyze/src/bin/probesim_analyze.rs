//! Thin binary wrapper around [`probesim_analyze::cli::run`], mapping
//! the library's results onto process exit codes: 0 clean, 1
//! regression, 2 usage/I/O error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match probesim_analyze::cli::run(&args) {
        Ok(code) => ExitCode::from(u8::try_from(code).unwrap_or(1)),
        Err(msg) => {
            eprintln!("probesim-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
