//! The per-file item scanner: recovers `fn` items, attribute spans and
//! `#[cfg(test)]` regions from a token stream.
//!
//! This is deliberately not a parser. The analyses need three structural
//! facts that a linear token walk recovers reliably from code that
//! already compiles:
//!
//! 1. which token ranges are **test-only** (`#[cfg(test)]` items and
//!    `#[test]` functions) — excluded from every library-code rule,
//! 2. where each **function body** starts and ends — the unit of the
//!    intraprocedural lock simulation,
//! 3. where **attributes** sit — the hygiene rule's subject.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// One `#[…]` / `#![…]` attribute occurrence.
#[derive(Debug, Clone)]
pub struct Attr {
    /// Token index of the `#`.
    pub start: usize,
    /// Token index of the closing `]`.
    pub end: usize,
    /// 1-based source line of the `#`.
    pub line: u32,
    /// True for inner (`#![…]`) attributes.
    pub inner: bool,
    /// The attribute's tokens joined with spaces, e.g. `allow ( clippy
    /// : : too_many_arguments )`.
    pub text: String,
}

impl Attr {
    /// The attribute's first path segment (`allow`, `cfg`, `test`, …).
    pub fn head(&self) -> &str {
        self.text.split_whitespace().next().unwrap_or("")
    }
}

/// One `fn` item (free function, inherent/trait method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name (no path, no generics).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, `{` and `}` inclusive; `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
}

/// A scanned file: tokens, comments, per-token test-exclusion flags, and
/// the recovered items.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Code tokens (comments are in [`FileScan::comments`]).
    pub tokens: Vec<Tok>,
    /// Out-of-band comments.
    pub comments: Vec<Comment>,
    /// `excluded[i]` is true when token `i` belongs to a `#[cfg(test)]`
    /// item or a `#[test]` function — invisible to library-code rules.
    pub excluded: Vec<bool>,
    /// All `fn` items in source order.
    pub fns: Vec<FnItem>,
    /// All attributes in source order.
    pub attrs: Vec<Attr>,
}

impl FileScan {
    /// Scans `src` end to end.
    pub fn new(src: &str) -> FileScan {
        let lexed = lex(src);
        let mut scan = FileScan {
            excluded: vec![false; lexed.tokens.len()],
            tokens: lexed.tokens,
            comments: lexed.comments,
            fns: Vec::new(),
            attrs: Vec::new(),
        };
        scan.find_attrs();
        scan.mark_test_items();
        scan.find_fns();
        scan
    }

    /// Finds the matching closer for the opener at `open` (`{`/`}`,
    /// `(`/`)`, `[`/`]`). Returns the closer's index, or the last token
    /// on unbalanced input.
    pub fn matching(&self, open: usize, open_c: char, close_c: char) -> usize {
        let mut depth = 0usize;
        for i in open..self.tokens.len() {
            if self.tokens[i].is_punct(open_c) {
                depth += 1;
            } else if self.tokens[i].is_punct(close_c) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.tokens.len().saturating_sub(1)
    }

    fn find_attrs(&mut self) {
        let mut i = 0;
        while i < self.tokens.len() {
            if self.tokens[i].is_punct('#') {
                let mut j = i + 1;
                let inner = j < self.tokens.len() && self.tokens[j].is_punct('!');
                if inner {
                    j += 1;
                }
                if j < self.tokens.len() && self.tokens[j].is_punct('[') {
                    let end = self.matching(j, '[', ']');
                    let text = self.tokens[j + 1..end]
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect::<Vec<_>>()
                        .join(" ");
                    self.attrs.push(Attr {
                        start: i,
                        end,
                        line: self.tokens[i].line,
                        inner,
                        text,
                    });
                    i = end + 1;
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Marks the token span of every `#[cfg(test)]` item and `#[test]`
    /// function (attribute included) as excluded.
    fn mark_test_items(&mut self) {
        let test_attrs: Vec<(usize, usize)> = self
            .attrs
            .iter()
            .filter(|a| {
                !a.inner
                    && (a.text == "test"
                        || (a.head() == "cfg" && a.text.split_whitespace().any(|w| w == "test")))
            })
            .map(|a| (a.start, a.end))
            .collect();
        for (start, end) in test_attrs {
            // Skip any further attributes stacked on the same item.
            let mut j = end + 1;
            while j < self.tokens.len() && self.tokens[j].is_punct('#') {
                let mut k = j + 1;
                if k < self.tokens.len() && self.tokens[k].is_punct('!') {
                    k += 1;
                }
                if k < self.tokens.len() && self.tokens[k].is_punct('[') {
                    j = self.matching(k, '[', ']') + 1;
                } else {
                    break;
                }
            }
            // The item runs to its body's closing brace, or to the `;`
            // of a bodyless item (`#[cfg(test)] use …;`). Parens and
            // brackets are tracked so a `;` inside a signature's default
            // or an array type cannot end the item early.
            let mut depth = 0i32;
            let mut item_end = self.tokens.len().saturating_sub(1);
            let mut k = j;
            while k < self.tokens.len() {
                let t = &self.tokens[k];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('{') {
                    item_end = self.matching(k, '{', '}');
                    break;
                } else if depth == 0 && t.is_punct(';') {
                    item_end = k;
                    break;
                }
                k += 1;
            }
            let last = item_end.min(self.excluded.len().saturating_sub(1));
            for flag in &mut self.excluded[start..=last] {
                *flag = true;
            }
        }
    }

    fn find_fns(&mut self) {
        let mut found = Vec::new();
        for i in 0..self.tokens.len() {
            if !self.tokens[i].is_ident("fn") {
                continue;
            }
            // `fn` in a pointer type (`fn(u32) -> u32`) has no name.
            let Some(name_tok) = self.tokens.get(i + 1) else {
                continue;
            };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            let name = name_tok.text.clone();
            // Find the body `{` at paren/bracket depth 0, or a `;`
            // (trait method declaration without a default body).
            let mut depth = 0i32;
            let mut body = None;
            let mut k = i + 2;
            while k < self.tokens.len() {
                let t = &self.tokens[k];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('{') {
                    body = Some((k, self.matching(k, '{', '}')));
                    break;
                } else if depth == 0 && t.is_punct(';') {
                    break;
                }
                k += 1;
            }
            found.push(FnItem {
                name,
                line: self.tokens[i].line,
                body,
            });
        }
        self.fns = found;
    }

    /// The comment (if any) whose span ends on `line` or `line - 1` —
    /// the "adjacent justification" the hygiene rule looks for.
    pub fn adjacent_comment(&self, line: u32) -> Option<&Comment> {
        self.comments
            .iter()
            .find(|c| (c.end_line + 1 == line || c.end_line == line) && !c.is_doc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_fns_methods_and_bodyless_decls() {
        let scan = FileScan::new(
            "fn free(a: u32) -> u32 { a }\n\
             impl Foo { fn method(&self) { self.go() } }\n\
             trait T { fn decl(&self); fn with_default(&self) {} }\n\
             fn generic<F: Fn(u32) -> u32>(f: F) where F: Send { f(1); }\n",
        );
        let names: Vec<(&str, bool)> = scan
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.body.is_some()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", true),
                ("method", true),
                ("decl", false),
                ("with_default", true),
                ("generic", true),
            ]
        );
        // The body span really covers the braces.
        let (open, close) = scan.fns[0].body.unwrap();
        assert!(scan.tokens[open].is_punct('{'));
        assert!(scan.tokens[close].is_punct('}'));
    }

    #[test]
    fn attributes_and_inner_attributes() {
        let scan = FileScan::new(
            "#![allow(clippy::print_stdout)]\n\
             #[allow(clippy::too_many_arguments)]\n\
             #[derive(Debug, Clone)]\n\
             fn f() {}\n",
        );
        assert_eq!(scan.attrs.len(), 3);
        assert!(scan.attrs[0].inner);
        assert_eq!(scan.attrs[0].head(), "allow");
        assert!(!scan.attrs[1].inner);
        assert_eq!(scan.attrs[2].head(), "derive");
    }

    #[test]
    fn cfg_test_modules_are_fully_excluded() {
        let scan = FileScan::new(
            "fn lib_code() { x.unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { y.unwrap(); }\n\
             }\n\
             fn more_lib() { z }\n",
        );
        let visible: Vec<&str> = scan
            .tokens
            .iter()
            .enumerate()
            .filter(|&(i, _)| !scan.excluded[i])
            .map(|(_, t)| t.text.as_str())
            .collect();
        assert!(visible.contains(&"lib_code"));
        assert!(visible.contains(&"more_lib"));
        assert!(visible.contains(&"z"));
        assert!(!visible.contains(&"tests"));
        assert!(!visible.contains(&"y"));
        // Both unwraps exist as tokens, but only the lib one is visible.
        let visible_unwraps = scan
            .tokens
            .iter()
            .enumerate()
            .filter(|&(i, t)| !scan.excluded[i] && t.is_ident("unwrap"))
            .count();
        assert_eq!(visible_unwraps, 1);
    }

    #[test]
    fn test_attribute_on_a_single_fn_excludes_just_that_fn() {
        let scan = FileScan::new("#[test]\nfn unit() { a.unwrap() }\nfn lib() { b }\n");
        let visible: Vec<&str> = scan
            .tokens
            .iter()
            .enumerate()
            .filter(|&(i, _)| !scan.excluded[i])
            .map(|(_, t)| t.text.as_str())
            .collect();
        assert!(!visible.contains(&"unit"));
        assert!(visible.contains(&"lib"));
    }

    #[test]
    fn cfg_test_use_statement_ends_at_semicolon() {
        let scan = FileScan::new("#[cfg(test)]\nuse foo::bar;\nfn live() {}\n");
        assert!(scan.fns.iter().any(|f| f.name == "live"));
        let live_idx = scan.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!scan.excluded[live_idx]);
    }

    #[test]
    fn adjacent_comment_resolution() {
        let scan = FileScan::new(
            "// a justification\n#[allow(dead_code)]\nfn f() {}\n\n/// doc only\n#[allow(unused)]\nfn g() {}\n",
        );
        assert!(scan.adjacent_comment(scan.attrs[0].line).is_some());
        assert!(
            scan.adjacent_comment(scan.attrs[1].line).is_none(),
            "doc comments are not justifications"
        );
    }
}
