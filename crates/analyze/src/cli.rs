// A command-line driver: printing the report IS the interface, so the
// workspace-wide print_stdout lint is wrong for this module.
#![allow(clippy::print_stdout)]

//! The `probesim-analyze` command-line interface.
//!
//! Mirrors `probesim-bench`'s contract: [`run`] returns `Ok(0)` for a
//! clean pass, `Ok(1)` when `--compare` finds a regression against the
//! baseline, and `Err` for usage or I/O errors. The binary maps these
//! onto process exit codes.

use std::path::PathBuf;

use crate::report::{compare, parse_baseline, Report};
use crate::workspace::Workspace;

/// Usage text shown for `--help` and flag errors.
pub const USAGE: &str = "\
probesim-analyze: static analysis for the probesim workspace

USAGE:
    probesim-analyze [OPTIONS]

OPTIONS:
    --root <DIR>              workspace root to analyze [default: .]
    --out <FILE>              write the machine-readable JSON report
    --write-baseline <FILE>   record current (rule, file) counts as the baseline
    --compare <FILE>          ratchet against a baseline: exit 1 if any
                              (rule, file) count exceeds its allowance
    --quiet                   suppress per-finding diagnostics
    --help                    show this help

EXIT CODES:
    0  clean (or improvements only)
    1  regression against the baseline
    2  usage or I/O error (via the binary wrapper)
";

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Workspace root to analyze.
    pub root: PathBuf,
    /// Where to write the JSON report, if anywhere.
    pub out: Option<PathBuf>,
    /// Write the baseline here and exit clean.
    pub write_baseline: Option<PathBuf>,
    /// Compare against this baseline and gate.
    pub compare: Option<PathBuf>,
    /// Suppress per-finding output.
    pub quiet: bool,
    /// `--help` was requested.
    pub help: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            root: PathBuf::from("."),
            out: None,
            write_baseline: None,
            compare: None,
            quiet: false,
            help: false,
        }
    }
}

impl Options {
    /// Parses command-line arguments (without the program name).
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut path_arg = |name: &str| {
                it.next()
                    .map(PathBuf::from)
                    .ok_or_else(|| format!("{name} requires a value\n\n{USAGE}"))
            };
            match arg.as_str() {
                "--root" => opts.root = path_arg("--root")?,
                "--out" => opts.out = Some(path_arg("--out")?),
                "--write-baseline" => opts.write_baseline = Some(path_arg("--write-baseline")?),
                "--compare" => opts.compare = Some(path_arg("--compare")?),
                "--quiet" => opts.quiet = true,
                "--help" | "-h" => opts.help = true,
                other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
            }
        }
        if opts.write_baseline.is_some() && opts.compare.is_some() {
            return Err(format!(
                "--write-baseline and --compare are mutually exclusive\n\n{USAGE}"
            ));
        }
        Ok(opts)
    }
}

/// Runs the analyzer end to end. Returns the process exit code, or
/// `Err` for usage and I/O errors.
pub fn run(args: &[String]) -> Result<i32, String> {
    let opts = Options::parse(args)?;
    if opts.help {
        println!("{USAGE}");
        return Ok(0);
    }

    let ws = Workspace::load(&opts.root)?;
    let report = crate::run_analyses(&ws);

    if let Some(out) = &opts.out {
        std::fs::write(out, report.to_json())
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    }

    if !opts.quiet {
        print_diagnostics(&report);
    }

    if let Some(path) = &opts.write_baseline {
        std::fs::write(path, report.baseline_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!(
            "baseline: recorded {} finding(s) across {} (rule, file) pair(s) to {}",
            report.findings.len(),
            report.counts_by_rule_file().len(),
            path.display()
        );
        return Ok(0);
    }

    if let Some(path) = &opts.compare {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let baseline = parse_baseline(&text)
            .map_err(|e| format!("invalid baseline {}: {e}", path.display()))?;
        let verdicts = compare(&baseline, &report);
        for v in &verdicts {
            println!("{v}");
        }
        let regressions = verdicts.iter().filter(|v| v.is_regression()).count();
        if regressions > 0 {
            println!(
                "analyze: FAIL — {regressions} (rule, file) pair(s) regressed past the baseline"
            );
            return Ok(1);
        }
        println!(
            "analyze: OK — {} finding(s), no (rule, file) pair above baseline",
            report.findings.len()
        );
        return Ok(0);
    }

    println!(
        "analyze: {} finding(s) across {} file(s)",
        report.findings.len(),
        report.files_scanned
    );
    Ok(0)
}

fn print_diagnostics(report: &Report) {
    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if !report.lock_order.edges.is_empty() {
        println!(
            "lock order: intended {}",
            report.lock_order.intended.join(" -> ")
        );
        for e in &report.lock_order.edges {
            println!(
                "lock edge: {} -> {} at {}:{}{}",
                e.from,
                e.to,
                e.file,
                e.line,
                if e.via.is_empty() {
                    String::new()
                } else {
                    format!(" (via {})", e.via)
                }
            );
        }
    }
    for (rule, n) in report.counts_by_rule() {
        println!("count: {rule} = {n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags() {
        let o = Options::parse(&argv(&["--root", "/tmp/x", "--quiet", "--out", "r.json"])).unwrap();
        assert_eq!(o.root, PathBuf::from("/tmp/x"));
        assert!(o.quiet);
        assert_eq!(o.out, Some(PathBuf::from("r.json")));
        assert!(Options::parse(&argv(&["--frobnicate"])).is_err());
        assert!(Options::parse(&argv(&["--root"])).is_err(), "missing value");
        assert!(
            Options::parse(&argv(&["--write-baseline", "a", "--compare", "b"])).is_err(),
            "mutually exclusive"
        );
        assert!(Options::parse(&argv(&["--help"])).unwrap().help);
    }

    #[test]
    fn run_reports_usage_errors_as_err() {
        assert!(run(&argv(&["--no-such-flag"])).is_err());
        assert!(run(&argv(&["--root", "/no/such/dir/probesim"])).is_err());
        assert!(run(&argv(&["--compare"])).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(run(&argv(&["--help"])).unwrap(), 0);
    }
}
