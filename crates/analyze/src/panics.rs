//! Panic-surface audit: where can library code abort the process?
//!
//! Serving infrastructure should fail requests, not processes. Every
//! potential panic in library (non-test, non-binary) code is either
//! justified in place or counted against the committed baseline — the
//! ratchet in [`crate::report`] stops the surface growing.
//!
//! * `panic-unwrap` — `.unwrap()`. Never justified in library code;
//!   spell the invariant with `.expect("invariant: …")` or return an
//!   error.
//! * `panic-expect` — `.expect(…)` whose message neither starts with
//!   `invariant:` (a documented can't-happen) nor mentions `poisoned`
//!   (the workspace's documented policy is to propagate lock poisoning
//!   by panicking, since a poisoned lock means a worker already
//!   panicked mid-update).
//! * `panic-macro` — `panic!` / `todo!` / `unimplemented!`, and
//!   `unreachable!()` without a message. A messaged `unreachable!("…")`
//!   is a documented invariant and passes.
//! * `panic-index` — indexing with a *computed* subscript
//!   (`adj[off + k]`, `buf[idx(x)]`): an off-by-one away from an
//!   abort. Single-variable subscripts (`xs[i]`) are not flagged —
//!   they are pervasive and overwhelmingly bounds-checked by
//!   construction in this codebase.

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::workspace::{SourceFile, Workspace};

/// Runs the panic-surface audit over the workspace's library files.
pub fn analyze(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in ws.lib_files() {
        audit_file(file, &mut findings);
    }
    findings.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    findings
}

fn audit_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.scan.tokens;
    for i in 0..toks.len() {
        if file.scan.excluded.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];

        // `.unwrap()` — exactly `unwrap`, so `unwrap_or*` never matches.
        if t.is_ident("unwrap")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            findings.push(Finding::new(
                "panic-unwrap",
                &file.rel_path,
                t.line,
                "`.unwrap()` in library code — return an error or spell the invariant with `.expect(\"invariant: …\")`".to_string(),
            ));
        }

        // `.expect("…")` without a recognised justification.
        if t.is_ident("expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let msg = toks.get(i + 2).filter(|m| m.kind == TokKind::Str);
            let justified = msg.is_some_and(|m| {
                let text = m.text.trim_start_matches(['b', 'r', '#', '"']);
                text.starts_with("invariant:") || m.text.contains("poisoned")
            });
            if !justified {
                findings.push(Finding::new(
                    "panic-expect",
                    &file.rel_path,
                    t.line,
                    "`.expect(…)` message neither starts with \"invariant:\" nor documents lock poisoning — state why this cannot fail".to_string(),
                ));
            }
        }

        // Panic macros.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let flagged = match t.text.as_str() {
                "panic" | "todo" | "unimplemented" => true,
                // `unreachable!("why")` documents the invariant;
                // bare `unreachable!()` does not.
                "unreachable" => toks.get(i + 3).is_some_and(|n| n.is_punct(')')),
                _ => false,
            };
            if flagged {
                findings.push(Finding::new(
                    "panic-macro",
                    &file.rel_path,
                    t.line,
                    format!(
                        "`{}!` in library code — return a typed error (or message the invariant for unreachable!)",
                        t.text
                    ),
                ));
            }
        }

        // Computed-subscript indexing.
        if t.is_punct('[') && is_index_open(toks, i) {
            if let Some(close) = matching_bracket(toks, i) {
                if subscript_is_computed(toks, i, close) {
                    findings.push(Finding::new(
                        "panic-index",
                        &file.rel_path,
                        t.line,
                        "computed slice index in an expression — a wrong offset aborts the process; prefer `.get(…)` or a named, checked index".to_string(),
                    ));
                }
            }
        }
    }
}

/// Is the `[` at `i` an index operation (as opposed to an array
/// literal, slice pattern, attribute, or type)? Index positions follow
/// a value: an identifier, a closing `)`/`]`, or a string literal.
fn is_index_open(toks: &[crate::lexer::Tok], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let p = &toks[i - 1];
    p.kind == TokKind::Ident && !is_keyword_before_bracket(&p.text)
        || p.is_punct(')')
        || p.is_punct(']')
}

fn is_keyword_before_bracket(text: &str) -> bool {
    // `impl [T; N]`-style positions where an ident precedes a type or
    // pattern bracket rather than a value.
    matches!(
        text,
        "mut" | "ref" | "in" | "return" | "as" | "dyn" | "impl" | "box"
    )
}

fn matching_bracket(toks: &[crate::lexer::Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// A subscript is *computed* when, at bracket depth 0, it contains
/// arithmetic (`+ - * / %`) or a call. Plain variables (`xs[i]`),
/// fields (`xs[self.k]`) and ranges without arithmetic (`xs[a..b]`)
/// are not computed.
fn subscript_is_computed(toks: &[crate::lexer::Tok], open: usize, close: usize) -> bool {
    let mut depth = 0i32;
    let mut j = open + 1;
    while j < close {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct('+') || t.is_punct('*') || t.is_punct('/') || t.is_punct('%') {
                return true;
            }
            // `-` is arithmetic only in binary position (after a value).
            if t.is_punct('-') && j > open + 1 {
                let p = &toks[j - 1];
                if p.kind == TokKind::Ident
                    || p.kind == TokKind::Num
                    || p.is_punct(')')
                    || p.is_punct(']')
                {
                    return true;
                }
            }
            // A call inside the subscript: ident directly before `(`.
            if t.kind == TokKind::Ident && toks.get(j + 1).is_some_and(|n| n.is_punct('(')) {
                return true;
            }
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn audit(src: &str) -> Vec<Finding> {
        analyze(&Workspace::from_sources(&[("crates/core/src/x.rs", src)]))
    }

    fn rules(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_is_flagged_but_unwrap_or_is_not() {
        let f = audit(
            "fn a(x: Option<u32>) -> u32 { x.unwrap() }\n\
             fn b(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
             fn c(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n\
             fn d(x: Option<u32>) -> u32 { x.unwrap_or_default() }\n",
        );
        assert_eq!(rules(&f), vec!["panic-unwrap"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn expect_justification_conventions() {
        let f = audit(
            "fn a(x: Option<u32>) -> u32 { x.expect(\"invariant: seeded above\") }\n\
             fn b(x: Option<u32>) -> u32 { x.expect(\"state lock poisoned: a worker panicked\") }\n\
             fn c(x: Option<u32>) -> u32 { x.expect(\"should work\") }\n",
        );
        assert_eq!(rules(&f), vec!["panic-expect"]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn panic_macros_and_messaged_unreachable() {
        let f = audit(
            "fn a() { panic!(\"boom\") }\n\
             fn b() { todo!() }\n\
             fn c() { unimplemented!() }\n\
             fn d(x: u32) -> u32 { match x { 0 => 1, _ => unreachable!(\"x is 0 by contract\") } }\n\
             fn e(x: u32) -> u32 { match x { 0 => 1, _ => unreachable!() } }\n",
        );
        assert_eq!(rules(&f), vec!["panic-macro"; 4]);
        let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(
            lines,
            vec![1, 2, 3, 5],
            "messaged unreachable on line 4 passes"
        );
    }

    #[test]
    fn computed_indexes_only() {
        let f = audit(
            "fn a(xs: &[u32], i: usize) -> u32 { xs[i] }\n\
             fn b(xs: &[u32], i: usize) -> u32 { xs[i + 1] }\n\
             fn c(xs: &[u32], s: &S) -> u32 { xs[s.k] }\n\
             fn d(xs: &[u32], i: usize) -> u32 { xs[idx(i)] }\n\
             fn e(xs: &[u32], a: usize, b: usize) -> &[u32] { &xs[a..b] }\n\
             fn g(xs: &[u32], i: usize) -> u32 { xs[i - 1] }\n\
             fn h() -> [u32; 3] { [1, 2, 3] }\n",
        );
        let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(rules(&f), vec!["panic-index"; 3], "{f:?}");
        assert_eq!(lines, vec![2, 4, 6]);
    }

    #[test]
    fn nested_single_token_subscripts_are_fine() {
        let f = audit("fn a(m: &[Vec<u32>], i: usize, j: usize) -> u32 { m[i][j] }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = audit(
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); panic!(\"x\"); }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
