//! Project-specific static analysis for the probesim workspace.
//!
//! `probesim-analyze` is a dependency-free pass over the workspace's
//! own sources. It lexes every non-shim `.rs` file (comment-, string-
//! and char-literal-aware), recovers items per file, and runs four
//! analyses:
//!
//! 1. **Lock discipline** ([`locks`]) — an intraprocedural
//!    lock-acquisition model plus a conservative call graph. Reports
//!    lock-order cycles, inversions of the documented intended order,
//!    guards held across blocking calls, and direct re-acquisition.
//! 2. **Determinism** ([`determinism`]) — wall-clock reads off the
//!    explicit allowlist and hash-order iteration leaking into
//!    results.
//! 3. **Panic surface** ([`panics`]) — `unwrap`/panic macros/
//!    unjustified `expect`s/computed slice indexes in library code,
//!    ratcheted against the committed `analyze/baseline.json`.
//! 4. **Hygiene** ([`hygiene`]) — every `#[allow(…)]` and `unsafe`
//!    must carry an adjacent justification comment.
//!
//! The pass emits a stable machine-readable JSON report plus human
//! diagnostics with `file:line` anchors, and its `--write-baseline` /
//! `--compare` flags mirror `probesim-bench`'s exit-code contract: 0
//! for clean, 1 for a regression against the baseline, `Err` for usage
//! or I/O problems.
//!
//! The analyses are heuristic token-level models, not a compiler: they
//! are tuned to be quiet on this codebase and loud on the specific
//! regressions its concurrency and reproducibility story cannot
//! afford. The ratchet absorbs the residual noise — pre-existing
//! findings are baselined per `(rule, file)` and may only shrink.

pub mod cli;
pub mod determinism;
pub mod hygiene;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod report;
pub mod scan;
pub mod workspace;

use report::Report;
use workspace::Workspace;

/// Runs all four analyses over a loaded workspace and assembles the
/// report, findings sorted by `(rule, file, line)`.
pub fn run_analyses(ws: &Workspace) -> Report {
    let mut report = Report {
        files_scanned: ws.files.len(),
        ..Report::default()
    };
    locks::run_into(ws, &mut report);
    report.findings.extend(determinism::analyze(ws));
    report.findings.extend(panics::analyze(ws));
    report.findings.extend(hygiene::analyze(ws));
    report.findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.message).cmp(&(b.rule, &b.file, b.line, &b.message))
    });
    report
}
