//! Determinism lints: wall-clock reads and hash-order iteration.
//!
//! The workspace's reproducibility story (seeded RNG shims, byte-stable
//! reports, the bench harness's regression gate) only holds if library
//! code neither consults the wall clock nor lets `HashMap` iteration
//! order leak into results.
//!
//! * `det-clock` — `Instant::now` / `SystemTime::now` / `thread::sleep`
//!   in library code outside the explicit allowlist
//!   ([`CLOCK_ALLOWLIST`]): the few modules whose *job* is timing
//!   (budget enforcement, bench timing, the eval runner, service
//!   latency accounting).
//! * `det-hash-iter` — iterating a value declared as a hash container
//!   (`HashMap`/`HashSet`/`FxHashMap`/`FxHashSet`) without an
//!   order-insensitive sink (`sort*`, `min*`, `max*`, `count`, `len`,
//!   `is_empty`, `all`, `any`) nearby. Hash iteration order is
//!   arbitrary; anything it feeds ordered output through becomes
//!   run-dependent.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::workspace::{SourceFile, Workspace};

/// Library files allowed to read the clock, as workspace-relative path
/// suffixes. Each entry names a module whose purpose is timing.
pub const CLOCK_ALLOWLIST: [&str; 8] = [
    "crates/core/src/budget.rs", // wall-clock probe budgets are the feature
    "crates/bench/src/lib.rs",   // bench timing harness
    "crates/bench/src/scenario.rs", // scenario engine measures latencies
    "crates/eval/src/runner.rs", // evaluation runner times algorithms
    "crates/service/src/service.rs", // serving deadlines + latency accounting
    "crates/fleet/src/replica.rs", // fault-injection stalls/delays sleep by design
    "crates/fleet/src/router.rs", // routing charges catch-up waits against deadlines
    "crates/fleet/src/supervisor.rs", // supervision ticks + progress watchdog elapsed times
];

/// How many tokens past an iteration site to look for an
/// order-insensitive sink before flagging. Sixty-four tokens is a few
/// statements — enough to see `stale.sort_unstable()` after a collect
/// loop, short enough not to credit unrelated code.
const ESCAPE_WINDOW: usize = 64;

const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Runs both determinism lints over the workspace's library files.
pub fn analyze(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in ws.lib_files() {
        let clock_allowed = CLOCK_ALLOWLIST
            .iter()
            .any(|suffix| file.rel_path.ends_with(suffix));
        if !clock_allowed {
            clock_lint(file, &mut findings);
        }
        hash_iter_lint(file, &mut findings);
    }
    findings.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    findings
}

fn clock_lint(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.scan.tokens;
    for i in 0..toks.len() {
        if file.scan.excluded.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        // `Instant::now()` / `SystemTime::now()`.
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident("now"))
        {
            findings.push(Finding::new(
                "det-clock",
                &file.rel_path,
                t.line,
                format!(
                    "{}::now() in library code off the clock allowlist — results become wall-clock dependent",
                    t.text
                ),
            ));
        }
        // `thread::sleep(…)` (any path spelling).
        if t.is_ident("sleep")
            && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
        {
            findings.push(Finding::new(
                "det-clock",
                &file.rel_path,
                t.line,
                "thread::sleep in library code off the clock allowlist — timing-dependent behaviour".to_string(),
            ));
        }
    }
}

/// Names declared with a hash-container type anywhere in the file
/// (field declarations, typed lets, `= HashMap::new()` initialisers).
fn hash_names(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.scan.tokens;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name: …HashMap<…>` — type annotation on a field, param or let.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            for j in (i + 2)..(i + 14).min(toks.len()) {
                let t = &toks[j];
                if t.is_punct(',') || t.is_punct(';') || t.is_punct('=') || t.is_punct('{') {
                    break;
                }
                if HASH_TYPES.contains(&t.text.as_str())
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('<'))
                {
                    names.insert(toks[i].text.clone());
                    break;
                }
            }
        }
        // `name = HashMap::new(…)` / `with_capacity` / `default`.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('='))
            && toks
                .get(i + 2)
                .is_some_and(|t| HASH_TYPES.contains(&t.text.as_str()))
        {
            names.insert(toks[i].text.clone());
        }
    }
    names
}

fn hash_iter_lint(file: &SourceFile, findings: &mut Vec<Finding>) {
    let names = hash_names(file);
    if names.is_empty() {
        return;
    }
    let toks = &file.scan.tokens;
    for i in 0..toks.len() {
        if file.scan.excluded.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        let mut site: Option<(u32, String)> = None;
        // `h.iter()` / `h.keys()` / … where `h` is hash-declared.
        if t.kind == TokKind::Ident
            && names.contains(&t.text)
            && toks.get(i + 1).is_some_and(|a| a.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|a| ITER_METHODS.contains(&a.text.as_str()))
            && toks.get(i + 3).is_some_and(|a| a.is_punct('('))
        {
            site = Some((t.line, format!("{}.{}()", t.text, toks[i + 2].text)));
        }
        // `for … in [&][mut] path.to.h {` — the loop-over form.
        if t.is_ident("in") {
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|a| a.is_punct('&') || a.is_ident("mut"))
            {
                j += 1;
            }
            // Walk the receiver path to its last segment.
            let mut last: Option<usize> = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Ident => last = Some(j),
                    _ if toks[j].is_punct('.') => {}
                    _ => break,
                }
                j += 1;
            }
            if let Some(l) = last {
                if names.contains(&toks[l].text) && toks.get(j).is_some_and(|a| a.is_punct('{')) {
                    site = Some((toks[l].line, format!("for … in {}", toks[l].text)));
                }
            }
        }
        let Some((line, what)) = site else { continue };
        // Order-insensitive sink nearby?
        let escaped = toks[i..(i + ESCAPE_WINDOW).min(toks.len())]
            .iter()
            .any(|t| {
                t.kind == TokKind::Ident
                    && (t.text.starts_with("sort")
                        || t.text.starts_with("min")
                        || t.text.starts_with("max")
                        || matches!(
                            t.text.as_str(),
                            "count" | "len" | "is_empty" | "all" | "any" | "sum" | "fold"
                        ))
            });
        if !escaped {
            findings.push(Finding::new(
                "det-hash-iter",
                &file.rel_path,
                line,
                format!(
                    "{what} iterates a hash container in arbitrary order with no order-insensitive sink nearby — results may vary across runs"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn lib(src: &str) -> Workspace {
        Workspace::from_sources(&[("crates/core/src/other.rs", src)])
    }

    #[test]
    fn clock_reads_off_allowlist_are_flagged() {
        let ws = lib("use std::time::Instant;\n\
             fn timed() { let t = Instant::now(); let _ = t; }\n\
             fn sys() { let t = std::time::SystemTime::now(); let _ = t; }\n\
             fn nap() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n");
        let f = analyze(&ws);
        assert_eq!(
            f.iter().filter(|x| x.rule == "det-clock").count(),
            3,
            "{f:?}"
        );
    }

    #[test]
    fn the_allowlist_exempts_timing_modules() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/budget.rs",
            "use std::time::Instant;\nfn timed() { let t = Instant::now(); let _ = t; }\n",
        )]);
        assert!(analyze(&ws).is_empty());
    }

    #[test]
    fn clock_reads_in_tests_are_fine() {
        let ws = lib(
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { let _ = std::time::Instant::now(); }\n}\n",
        );
        assert!(analyze(&ws).is_empty());
    }

    #[test]
    fn hash_iteration_without_a_sink_is_flagged() {
        let ws = lib("use std::collections::HashMap;\n\
             struct S { map: HashMap<u32, u32> }\n\
             impl S {\n\
               fn leak(&self) -> Vec<u32> {\n\
                 let mut out = Vec::new();\n\
                 for (k, _) in &self.map { out.push(*k); }\n\
                 out\n\
               }\n\
             }\n");
        let f = analyze(&ws);
        assert!(
            f.iter()
                .any(|x| x.rule == "det-hash-iter" && x.message.contains("map")),
            "{f:?}"
        );
    }

    #[test]
    fn sorted_or_reduced_hash_iteration_escapes() {
        let ws = lib("use std::collections::HashMap;\n\
             struct S { map: HashMap<u32, u32> }\n\
             impl S {\n\
               fn sorted(&self) -> Vec<u32> {\n\
                 let mut out = Vec::new();\n\
                 for (k, _) in &self.map { out.push(*k); }\n\
                 out.sort_unstable();\n\
                 out\n\
               }\n\
               fn reduced(&self) -> Option<u32> { self.map.keys().copied().min() }\n\
               fn counted(&self) -> usize { self.map.iter().count() }\n\
             }\n");
        let f = analyze(&ws);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn btree_containers_are_not_flagged() {
        let ws = lib("use std::collections::BTreeMap;\n\
             struct S { map: BTreeMap<u32, u32> }\n\
             impl S {\n\
               fn fine(&self) -> Vec<u32> {\n\
                 let mut out = Vec::new();\n\
                 for (k, _) in &self.map { out.push(*k); }\n\
                 out\n\
               }\n\
             }\n");
        assert!(analyze(&ws).is_empty());
    }
}
